package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// This file implements the parallel, batch-oriented execution engine.
//
// A located plan is split at Ship boundaries into per-site fragments
// (see plan.SplitFragments): every Ship operator becomes an exchange —
// a bounded channel of batches — and the subtree below it runs as a
// producer on its own goroutine. Within a fragment, streaming operators
// (scan, filter, project, limit, union) are vectorized over batches;
// blocking operators (joins, aggregates, sorts) reuse the row-at-a-time
// implementations through thin adapters, so their semantics stay
// single-sourced with the sequential engine.
//
// Determinism: every exchange has exactly one producer and preserves its
// order, and consumers drain inputs in the same order as the sequential
// engine, so the parallel engine emits the same rows in the same order
// — and charges the ledger the same ShippedRows/ShippedBytes/ShipCost —
// as Run. Only wall-clock time differs: independent fragments overlap.

// exchangeDepth bounds the batches buffered per exchange; producers run
// at most exchangeDepth×BatchSize rows ahead of their consumer.
const exchangeDepth = 4

// RunParallel executes a located physical plan with the parallel engine
// and materializes its result. It is a drop-in replacement for Run:
// same rows (in the same order) and identical shipping statistics.
func RunParallel(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelContext(context.Background(), p, c)
}

// RunParallelContext is RunParallel under a caller context: cancelling
// it (or hitting its deadline) tears down every fragment goroutine —
// producers observe the cancellation at their next channel send, retry
// backoff, or batch boundary — and the call returns only after all of
// them have exited, so no goroutine or ledger entry is left dangling.
func RunParallelContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelObserved(ctx, p, c, nil)
}

// RunParallelObserved is RunParallelContext reporting into an observer
// (nil behaves like RunParallelContext): an execution span and latency
// histogram around the run, a fragment span plus compliance audit
// record per exchange producer, and per-operator actuals when the
// observer carries a PlanProfile.
func RunParallelObserved(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer) ([]expr.Row, *RunStats, error) {
	return RunParallelOpts(ctx, p, c, o, defaultExecOptions())
}

// RunParallelOpts is RunParallelObserved under explicit execution
// options (kernel gate, wire encoding).
func RunParallelOpts(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer, opt ExecOptions) ([]expr.Row, *RunStats, error) {
	sp := o.StartSpan("execute.parallel")
	m := o.Reg()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	eng := &parallelEngine{c: c, scope: c.NewRun(), ctx: ctx, obsv: o, opt: opt}
	root, err := buildParallel(p, eng)
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	eng.start()
	rows, err := CollectBatches(root)
	// Closing the root drained every exchange, so producers have either
	// finished or (on error) are observing the cancelled context.
	cancel()
	eng.wg.Wait()
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	if err := parent.Err(); err != nil {
		// The caller cancelled (or timed out) while producers were
		// winding down: their closed exchanges look like clean ends of
		// stream, so guard against returning a partial result as
		// success.
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	stats := scopeStats(eng.scope, int64(len(rows)))
	finishExec(sp, m, "parallel", t0, stats.RowsOut, nil)
	return rows, stats, nil
}

// CollectBatches drains a batch operator into a row slice.
func CollectBatches(op BatchOperator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		b, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Rows...)
		b.Release()
	}
}

// parallelEngine carries the per-execution state shared by fragments.
type parallelEngine struct {
	c         *cluster.Cluster
	scope     *cluster.RunScope
	ctx       context.Context
	wg        sync.WaitGroup
	producers []*exchangeProducer
	obsv      *obs.Observer
	opt       ExecOptions
}

// start launches every fragment producer. Producers begin executing
// immediately — like the sequential engine, which materializes each
// Ship's input fully at Open, every fragment runs exactly once and to
// completion, so eager start changes overlap, not semantics.
func (e *parallelEngine) start() {
	for _, p := range e.producers {
		e.wg.Add(1)
		go func(p *exchangeProducer) {
			defer e.wg.Done()
			p.run()
		}(p)
	}
}

// buildParallel compiles a plan node into a batch operator tree,
// registering one exchange producer per Ship boundary. Expression
// binding happens here, on the building goroutine, before any producer
// starts — bound expressions are only read during execution. When the
// engine's observer carries a PlanProfile, every node's operator is
// wrapped to collect per-node actuals.
func buildParallel(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	op, err := buildParallelNode(n, eng)
	if err != nil {
		return nil, err
	}
	if prof := eng.obsv.Prof(); prof != nil {
		op = &batchProfOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

func buildParallelNode(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	switch n.Kind {
	case plan.Ship:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		ch := make(chan exchangeMsg, exchangeDepth)
		eng.producers = append(eng.producers, &exchangeProducer{
			node: n, src: src, ch: ch, c: eng.c, scope: eng.scope, ctx: eng.ctx, obsv: eng.obsv,
			enc: network.WireEncoder{Opt: eng.opt.Wire},
		})
		return &exchangeOp{ch: ch}, nil
	case plan.TableScan, plan.Scan:
		op, err := newScan(n, eng.c)
		if err != nil {
			return nil, err
		}
		return &batchScanOp{scan: op.(*scanOp)}, nil
	case plan.FilterExec, plan.Filter:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		pred, err := expr.Bind(n.Pred, resolver(n.Children[0]))
		if err != nil {
			return nil, fmt.Errorf("executor: filter bind: %w", err)
		}
		types := colTypes(n.Children[0])
		f := &batchFilterOp{src: src, pred: pred, kern: compilePred(pred, types, eng.opt.kernels())}
		if f.kern != nil {
			f.vsrc = newBatchSource(types)
		}
		return f, nil
	case plan.ProjectExec, plan.Project:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		res := resolver(n.Children[0])
		exprs := make([]expr.Expr, len(n.Projs))
		for i, p := range n.Projs {
			bound, err := expr.Bind(p.E, res)
			if err != nil {
				return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
			}
			exprs[i] = bound
		}
		types := colTypes(n.Children[0])
		// Fuse with a vectorized filter child: the filter's surviving
		// selection vector drives the projection kernels over a shared
		// columnar view. Profiling wraps operators, so the assertion
		// fails and fusion is skipped under EXPLAIN ANALYZE.
		if f, ok := src.(*batchFilterOp); ok && f.kern != nil && eng.opt.kernels() {
			return &batchFilterProjectOp{
				src: f.src, pred: f.pred, kern: f.kern, vsrc: f.vsrc,
				exprs: exprs, proj: compileProj(exprs, types, true),
			}, nil
		}
		p := &batchProjectOp{src: src, exprs: exprs, proj: compileProj(exprs, types, eng.opt.kernels())}
		if p.proj != nil {
			p.vsrc = newBatchSource(types)
		}
		return p, nil
	case plan.LimitExec, plan.Limit:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		return &batchLimitOp{src: src, n: n.LimitN}, nil
	case plan.UnionAll, plan.Union:
		children := make([]BatchOperator, len(n.Children))
		for i, ch := range n.Children {
			op, err := buildParallel(ch, eng)
			if err != nil {
				return nil, err
			}
			children[i] = op
		}
		return &batchUnionOp{children: children}, nil
	}
	// Blocking operators (joins, aggregates, sorts) materialize their
	// inputs anyway; they reuse the row implementations via adapters.
	children := make([]Operator, len(n.Children))
	for i, ch := range n.Children {
		src, err := buildParallel(ch, eng)
		if err != nil {
			return nil, err
		}
		children[i] = &batchesToRows{src: src}
	}
	var op Operator
	var err error
	switch n.Kind {
	case plan.HashJoin:
		op, err = newHashJoin(n, children[0], children[1], eng.opt.kernels())
	case plan.MergeJoin:
		op, err = newMergeJoin(n, children[0], children[1])
	case plan.NLJoin, plan.Join:
		op, err = newNLJoin(n, children[0], children[1])
	case plan.HashAgg, plan.Aggregate:
		op, err = newHashAgg(n, children[0], eng.opt.kernels())
	case plan.SortExec, plan.Sort:
		op, err = newSort(n, children[0])
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &rowsToBatches{op: op}, nil
}

// --- exchange ------------------------------------------------------------

// exchangeMsg is one hop over an exchange: a serialized wire frame or a
// terminal error.
type exchangeMsg struct {
	frame []byte
	err   error
}

// exchangeProducer runs one plan fragment on its own goroutine, feeding
// its Ship boundary: it drives the fragment's operator tree batch by
// batch, repacks the stream into BatchSize-row wire frames — the same
// framing the sequential shipOp applies to its materialized stream, so
// both engines encode byte-identical frames — charges the cluster
// ledger the encoded size of each frame, applies the simulated wire
// delay, and sends the frames downstream in order. The consuming
// exchangeOp decodes them back into batches.
type exchangeProducer struct {
	node  *plan.Node
	src   BatchOperator
	ch    chan exchangeMsg
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
	enc   network.WireEncoder
	// sent* accumulate what the producer actually delivered; only the
	// producer goroutine touches them. On a clean end of stream they
	// become the fragment's compliance audit record — a producer that
	// errors out mid-stream records nothing, keeping the audit log
	// deterministic (partial, interleaving-dependent deliveries never
	// appear in it).
	sentRows, sentBytes, sentBatches int64
}

func (p *exchangeProducer) run() {
	defer close(p.ch)
	sp := p.obsv.StartSpan("exec.fragment").
		Tag("from", p.node.FromLoc).Tag("to", p.node.ToLoc)
	err := p.produce()
	if sp.Enabled() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		sp.TagInt("rows", p.sentRows).TagInt("batches", p.sentBatches).
			Tag("outcome", outcome).End()
	}
	if err == nil {
		if a := p.obsv.AuditSink(); a != nil {
			rec := auditRecFor(p.node)
			rec.Rows, rec.Bytes, rec.Batches = p.sentRows, p.sentBytes, p.sentBatches
			a.Record(rec)
		}
		return
	}
	select {
	case p.ch <- exchangeMsg{err: err}:
	case <-p.ctx.Done():
	}
}

func (p *exchangeProducer) produce() error {
	if err := p.src.Open(); err != nil {
		return err
	}
	defer p.src.Close()
	ship := p.scope.OpenShipment(p.node.FromLoc, p.node.ToLoc)
	// The start-up cost α (one round trip) is paid when the connection
	// opens; per-frame sends below pay the bandwidth part.
	p.c.SleepWire(p.c.Net.Alpha(p.node.FromLoc, p.node.ToLoc))
	cal := p.c.Calibrator()
	pending := make([]expr.Row, 0, BatchSize)
	frameIdx := 0
	flush := func(rows []expr.Row) error {
		frame := p.enc.Encode(rows)
		// The encoder reuses its buffer; the frame crossing the channel
		// must own its bytes.
		buf := append([]byte(nil), frame...)
		if cal != nil {
			cal.ObserveEncoding(widthSum(rows), int64(len(buf)))
		}
		// The resilient shipping path injects faults, retries with
		// backoff, and charges the shipment only when the frame lands,
		// so retried runs keep ledger parity with a fault-free one.
		if err := p.scope.ShipBatch(p.ctx, ship, p.node.FromLoc, p.node.ToLoc, frameIdx, int64(len(rows)), int64(len(buf))); err != nil {
			return err
		}
		frameIdx++
		p.sentRows += int64(len(rows))
		p.sentBytes += int64(len(buf))
		p.sentBatches++
		select {
		case p.ch <- exchangeMsg{frame: buf}:
			return nil
		case <-p.ctx.Done():
			return p.ctx.Err()
		}
	}
	for {
		b, err := p.src.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			if len(pending) > 0 {
				if err := flush(pending); err != nil {
					return err
				}
			}
			if cal != nil {
				// One affine sample per completed shipment: total
				// encoded bytes against the modeled edge cost.
				cal.ObserveShip(p.node.FromLoc, p.node.ToLoc, p.sentBytes,
					p.c.Net.ShipCost(p.node.FromLoc, p.node.ToLoc, float64(p.sentBytes)))
			}
			return nil
		}
		rows := b.Rows
		for len(rows) > 0 {
			take := BatchSize - len(pending)
			if take > len(rows) {
				take = len(rows)
			}
			pending = append(pending, rows[:take]...)
			rows = rows[take:]
			if len(pending) == BatchSize {
				if err := flush(pending); err != nil {
					b.Release()
					return err
				}
				pending = pending[:0]
			}
		}
		b.Release()
	}
}

// exchangeOp is the consuming side of an exchange: a batch operator
// decoding the producer's wire frames back into batches, in order, at
// the destination site.
type exchangeOp struct {
	ch   <-chan exchangeMsg
	done bool
}

func (e *exchangeOp) Open() error { return nil }

func (e *exchangeOp) NextBatch() (*Batch, error) {
	if e.done {
		return nil, nil
	}
	msg, ok := <-e.ch
	if !ok {
		e.done = true
		return nil, nil
	}
	if msg.err != nil {
		e.done = true
		return nil, msg.err
	}
	rows, err := network.DecodeBatch(msg.frame)
	if err != nil {
		e.done = true
		return nil, fmt.Errorf("executor: exchange frame decode: %w", err)
	}
	b := NewBatch()
	b.Rows = append(b.Rows, rows...)
	return b, nil
}

// Close drains the remaining stream so an abandoned producer (e.g.
// under a LIMIT) still runs to completion and its shipment accounting
// matches the sequential engine, which always materializes Ship inputs
// fully.
func (e *exchangeOp) Close() error {
	for range e.ch {
	}
	e.done = true
	return nil
}

// --- adapters ------------------------------------------------------------

// rowsToBatches lifts a row operator into the batch engine by gathering
// its output into BatchSize vectors.
type rowsToBatches struct {
	op Operator
}

func (r *rowsToBatches) Open() error { return r.op.Open() }

func (r *rowsToBatches) NextBatch() (*Batch, error) {
	b := NewBatch()
	for len(b.Rows) < cap(b.Rows) {
		row, ok, err := r.op.Next()
		if err != nil {
			b.Release()
			return nil, err
		}
		if !ok {
			break
		}
		b.Rows = append(b.Rows, row)
	}
	if len(b.Rows) == 0 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

func (r *rowsToBatches) Close() error { return r.op.Close() }

// batchesToRows lowers a batch operator to the row interface for the
// blocking operators that consume rows one at a time.
type batchesToRows struct {
	src BatchOperator
	cur *Batch
	pos int
}

func (b *batchesToRows) Open() error { return b.src.Open() }

func (b *batchesToRows) Next() (expr.Row, bool, error) {
	for {
		if b.cur != nil && b.pos < len(b.cur.Rows) {
			row := b.cur.Rows[b.pos]
			b.pos++
			return row, true, nil
		}
		b.cur.Release()
		b.cur = nil
		next, err := b.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if next == nil {
			return nil, false, nil
		}
		b.cur = next
		b.pos = 0
	}
}

func (b *batchesToRows) Close() error {
	b.cur.Release()
	b.cur = nil
	return b.src.Close()
}

// --- vectorized streaming operators --------------------------------------

// batchScanOp emits a table fragment's rows as batches.
type batchScanOp struct {
	scan *scanOp
	pos  int
}

func (s *batchScanOp) Open() error {
	s.pos = 0
	return s.scan.Open()
}

func (s *batchScanOp) NextBatch() (*Batch, error) {
	rows := s.scan.rows
	if s.pos >= len(rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(rows) {
		end = len(rows)
	}
	b := NewBatch()
	b.Rows = append(b.Rows, rows[s.pos:end]...)
	s.pos = end
	return b, nil
}

func (s *batchScanOp) Close() error { return s.scan.Close() }

// batchFilterOp compacts each batch in place, keeping qualifying rows.
// With a compiled predicate the batch is filtered through its columnar
// view; a batch the kernel cannot handle is re-run row by row.
type batchFilterOp struct {
	src  BatchOperator
	pred expr.Expr
	kern *vecPred
	vsrc *batchSource
}

func (f *batchFilterOp) Open() error { return f.src.Open() }

func (f *batchFilterOp) NextBatch() (*Batch, error) {
	for {
		b, err := f.src.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if f.kern != nil {
			f.vsrc.Reset(b.Rows)
			if sel, ok := f.kern.selectRows(f.vsrc); ok {
				kept := b.Rows[:0]
				for _, si := range sel {
					kept = append(kept, b.Rows[si])
				}
				clear(b.Rows[len(kept):])
				b.Rows = kept
				if len(b.Rows) > 0 {
					return b, nil
				}
				b.Release()
				continue
			}
		}
		kept := b.Rows[:0]
		for _, row := range b.Rows {
			keep, err := expr.EvalBool(f.pred, row)
			if err != nil {
				b.Release()
				return nil, err
			}
			if keep {
				kept = append(kept, row)
			}
		}
		// Clear the tail so released batches don't pin dropped rows.
		clear(b.Rows[len(kept):])
		b.Rows = kept
		if len(b.Rows) > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (f *batchFilterOp) Close() error { return f.src.Close() }

// batchProjectOp evaluates the projection over each input batch,
// through compiled kernels when available.
type batchProjectOp struct {
	src   BatchOperator
	exprs []expr.Expr
	proj  *vecProj
	vsrc  *batchSource
}

func (p *batchProjectOp) Open() error { return p.src.Open() }

func (p *batchProjectOp) NextBatch() (*Batch, error) {
	in, err := p.src.NextBatch()
	if err != nil || in == nil {
		return nil, err
	}
	out := NewBatch()
	if p.proj != nil {
		p.vsrc.Reset(in.Rows)
		if rows, ok := p.proj.apply(p.vsrc, nil, out.Rows); ok {
			out.Rows = rows
			in.Release()
			return out, nil
		}
	}
	for _, row := range in.Rows {
		proj, err := projectRow(p.exprs, row)
		if err != nil {
			in.Release()
			out.Release()
			return nil, err
		}
		out.Rows = append(out.Rows, proj)
	}
	in.Release()
	return out, nil
}

func (p *batchProjectOp) Close() error { return p.src.Close() }

// batchFilterProjectOp is the fused filter+projection of the parallel
// engine: one columnar view per batch, the predicate's surviving
// selection vector driving the projection kernels directly. Batches
// either kernel cannot handle re-run row by row — filter then project,
// in row order — matching the interpreter.
type batchFilterProjectOp struct {
	src   BatchOperator
	pred  expr.Expr
	kern  *vecPred
	vsrc  *batchSource
	exprs []expr.Expr
	proj  *vecProj // nil: passthrough/interpreted outputs only
}

func (p *batchFilterProjectOp) Open() error { return p.src.Open() }

func (p *batchFilterProjectOp) NextBatch() (*Batch, error) {
	for {
		in, err := p.src.NextBatch()
		if err != nil || in == nil {
			return nil, err
		}
		out := NewBatch()
		p.vsrc.Reset(in.Rows)
		if sel, ok := p.kern.selectRows(p.vsrc); ok {
			applied := true
			if p.proj != nil {
				var rows []expr.Row
				if rows, applied = p.proj.apply(p.vsrc, sel, out.Rows); applied {
					out.Rows = rows
				}
			} else {
				for _, si := range sel {
					proj, err := projectRow(p.exprs, in.Rows[si])
					if err != nil {
						applied = false
						break
					}
					out.Rows = append(out.Rows, proj)
				}
				if !applied {
					clear(out.Rows)
					out.Rows = out.Rows[:0]
				}
			}
			if applied {
				in.Release()
				if len(out.Rows) > 0 {
					return out, nil
				}
				out.Release()
				continue
			}
		}
		// Full interpreter re-run of the batch, in row order.
		for _, row := range in.Rows {
			keep, err := expr.EvalBool(p.pred, row)
			if err != nil {
				in.Release()
				out.Release()
				return nil, err
			}
			if !keep {
				continue
			}
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				in.Release()
				out.Release()
				return nil, err
			}
			out.Rows = append(out.Rows, proj)
		}
		in.Release()
		if len(out.Rows) > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (p *batchFilterProjectOp) Close() error { return p.src.Close() }

// batchLimitOp truncates the stream after n rows.
type batchLimitOp struct {
	src  BatchOperator
	n    int64
	seen int64
}

func (l *batchLimitOp) Open() error {
	l.seen = 0
	return l.src.Open()
}

func (l *batchLimitOp) NextBatch() (*Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.src.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if remain := l.n - l.seen; int64(len(b.Rows)) > remain {
		clear(b.Rows[remain:])
		b.Rows = b.Rows[:remain]
	}
	l.seen += int64(len(b.Rows))
	return b, nil
}

func (l *batchLimitOp) Close() error { return l.src.Close() }

// batchUnionOp concatenates its children's streams in order. All
// children are opened up front — matching the sequential engine — so
// exchange inputs of later branches fill their buffers while earlier
// branches drain.
type batchUnionOp struct {
	children []BatchOperator
	idx      int
}

func (u *batchUnionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *batchUnionOp) NextBatch() (*Batch, error) {
	for u.idx < len(u.children) {
		b, err := u.children[u.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

func (u *batchUnionOp) Close() error {
	var firstErr error
	for _, c := range u.children {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
