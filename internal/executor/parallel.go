package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
	"cgdqp/internal/store"
)

// This file implements the parallel, batch-oriented execution engine.
//
// A located plan is split at Ship boundaries into per-site fragments
// (see plan.SplitFragments): every Ship operator becomes an exchange —
// a bounded channel of batches — and the subtree below it runs as a
// producer on its own goroutine. Within a fragment, streaming operators
// (scan, filter, project, limit, union) are vectorized over batches;
// blocking operators (joins, aggregates, sorts) reuse the row-at-a-time
// implementations through thin adapters, so their semantics stay
// single-sourced with the sequential engine.
//
// Determinism: every exchange has exactly one producer and preserves its
// order, and consumers drain inputs in the same order as the sequential
// engine, so the parallel engine emits the same rows in the same order
// — and charges the ledger the same ShippedRows/ShippedBytes/ShipCost —
// as Run. Only wall-clock time differs: independent fragments overlap.

// exchangeDepth bounds the batches buffered per exchange; producers run
// at most exchangeDepth×BatchSize rows ahead of their consumer.
const exchangeDepth = 4

// RunParallel executes a located physical plan with the parallel engine
// and materializes its result. It is a drop-in replacement for Run:
// same rows (in the same order) and identical shipping statistics.
func RunParallel(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelContext(context.Background(), p, c)
}

// RunParallelContext is RunParallel under a caller context: cancelling
// it (or hitting its deadline) tears down every fragment goroutine —
// producers observe the cancellation at their next channel send, retry
// backoff, or batch boundary — and the call returns only after all of
// them have exited, so no goroutine or ledger entry is left dangling.
func RunParallelContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelObserved(ctx, p, c, nil)
}

// RunParallelObserved is RunParallelContext reporting into an observer
// (nil behaves like RunParallelContext): an execution span and latency
// histogram around the run, a fragment span plus compliance audit
// record per exchange producer, and per-operator actuals when the
// observer carries a PlanProfile.
func RunParallelObserved(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer) ([]expr.Row, *RunStats, error) {
	return RunParallelOpts(ctx, p, c, o, defaultExecOptions())
}

// RunParallelOpts is RunParallelObserved under explicit execution
// options (kernel gate, wire encoding).
func RunParallelOpts(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer, opt ExecOptions) ([]expr.Row, *RunStats, error) {
	sp := o.StartSpan("execute.parallel")
	m := o.Reg()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	eng := &parallelEngine{c: c, scope: c.NewRun(), ctx: ctx, obsv: o, opt: opt}
	root, err := buildParallel(p, eng)
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	eng.start()
	rows, err := CollectBatches(root)
	// Closing the root drained every exchange, so producers have either
	// finished or (on error) are observing the cancelled context.
	cancel()
	eng.wg.Wait()
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	if err := parent.Err(); err != nil {
		// The caller cancelled (or timed out) while producers were
		// winding down: their closed exchanges look like clean ends of
		// stream, so guard against returning a partial result as
		// success.
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	stats := scopeStats(eng.scope, int64(len(rows)))
	finishExec(sp, m, "parallel", t0, stats.RowsOut, nil)
	return rows, stats, nil
}

// CollectBatches drains a batch operator into a row slice.
func CollectBatches(op BatchOperator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		b, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Rows()...)
		b.Release()
	}
}

// parallelEngine carries the per-execution state shared by fragments.
type parallelEngine struct {
	c         *cluster.Cluster
	scope     *cluster.RunScope
	ctx       context.Context
	wg        sync.WaitGroup
	producers []*exchangeProducer
	obsv      *obs.Observer
	opt       ExecOptions
}

// start launches every fragment producer. Producers begin executing
// immediately — like the sequential engine, which materializes each
// Ship's input fully at Open, every fragment runs exactly once and to
// completion, so eager start changes overlap, not semantics.
func (e *parallelEngine) start() {
	for _, p := range e.producers {
		e.wg.Add(1)
		go func(p *exchangeProducer) {
			defer e.wg.Done()
			p.run()
		}(p)
	}
}

// buildParallel compiles a plan node into a batch operator tree,
// registering one exchange producer per Ship boundary. Expression
// binding happens here, on the building goroutine, before any producer
// starts — bound expressions are only read during execution. When the
// engine's observer carries a PlanProfile, every node's operator is
// wrapped to collect per-node actuals.
func buildParallel(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	op, err := buildParallelNode(n, eng)
	if err != nil {
		return nil, err
	}
	if prof := eng.obsv.Prof(); prof != nil {
		op = &batchProfOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

func buildParallelNode(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	switch n.Kind {
	case plan.Ship:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		ch := make(chan exchangeMsg, exchangeDepth)
		eng.producers = append(eng.producers, &exchangeProducer{
			node: n, src: src, ch: ch, c: eng.c, scope: eng.scope, ctx: eng.ctx, obsv: eng.obsv,
			enc: network.WireEncoder{Opt: eng.opt.Wire},
		})
		return &exchangeOp{ch: ch}, nil
	case plan.TableScan, plan.Scan:
		op, err := newScan(n, eng.c)
		if err != nil {
			return nil, err
		}
		return &batchScanOp{scan: op.(*scanOp)}, nil
	case plan.IndexScan:
		op, err := newIndexScan(n, eng.c)
		if err != nil {
			return nil, err
		}
		return &rowsToBatches{op: op}, nil
	case plan.FilterExec, plan.Filter:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		pred, err := expr.Bind(n.Pred, resolver(n.Children[0]))
		if err != nil {
			return nil, fmt.Errorf("executor: filter bind: %w", err)
		}
		types := colTypes(n.Children[0])
		return &batchFilterOp{src: src, pred: pred, kern: compilePred(pred, types, eng.opt.kernels()), types: types}, nil
	case plan.ProjectExec, plan.Project:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		res := resolver(n.Children[0])
		exprs := make([]expr.Expr, len(n.Projs))
		for i, p := range n.Projs {
			bound, err := expr.Bind(p.E, res)
			if err != nil {
				return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
			}
			exprs[i] = bound
		}
		types := colTypes(n.Children[0])
		// Fuse with a vectorized filter child: the filter's surviving
		// selection vector drives the projection kernels over a shared
		// columnar view. Profiling wraps operators, so the assertion
		// fails and fusion is skipped under EXPLAIN ANALYZE.
		if f, ok := src.(*batchFilterOp); ok && f.kern != nil && eng.opt.kernels() {
			return &batchFilterProjectOp{
				src: f.src, pred: f.pred, kern: f.kern, types: f.types,
				exprs: exprs, proj: compileProj(exprs, types, true),
			}, nil
		}
		return &batchProjectOp{src: src, exprs: exprs, proj: compileProj(exprs, types, eng.opt.kernels()), types: types}, nil
	case plan.LimitExec, plan.Limit:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		return &batchLimitOp{src: src, n: n.LimitN}, nil
	case plan.UnionAll, plan.Union:
		children := make([]BatchOperator, len(n.Children))
		for i, ch := range n.Children {
			op, err := buildParallel(ch, eng)
			if err != nil {
				return nil, err
			}
			children[i] = op
		}
		return &batchUnionOp{children: children}, nil
	}
	// Blocking operators materialize their inputs anyway. Hash join and
	// hash aggregate consume the columnar batches natively through chunk
	// feeds — no row adapter on their inputs; merge/NL join and sort
	// reuse the row implementations via adapters.
	var op Operator
	var err error
	switch n.Kind {
	case plan.HashJoin:
		left, lerr := buildParallel(n.Children[0], eng)
		if lerr != nil {
			return nil, lerr
		}
		right, rerr := buildParallel(n.Children[1], eng)
		if rerr != nil {
			return nil, rerr
		}
		op, err = newHashJoinBatch(n, left, right, eng.opt.kernels())
	case plan.HashAgg, plan.Aggregate:
		src, serr := buildParallel(n.Children[0], eng)
		if serr != nil {
			return nil, serr
		}
		op, err = newHashAggBatch(n, src, eng.opt.kernels())
	case plan.IndexLookupJoin:
		// Only the outer child executes; the inner scan is reached through
		// the index probes.
		outer, oerr := buildParallel(n.Children[0], eng)
		if oerr != nil {
			return nil, oerr
		}
		op, err = newIndexLookupJoin(n, &batchesToRows{src: outer}, eng.c)
	case plan.MergeJoin, plan.NLJoin, plan.Join, plan.SortExec, plan.Sort:
		children := make([]Operator, len(n.Children))
		for i, ch := range n.Children {
			src, cerr := buildParallel(ch, eng)
			if cerr != nil {
				return nil, cerr
			}
			children[i] = &batchesToRows{src: src}
		}
		switch n.Kind {
		case plan.MergeJoin:
			op, err = newMergeJoin(n, children[0], children[1])
		case plan.NLJoin, plan.Join:
			op, err = newNLJoin(n, children[0], children[1])
		default:
			op, err = newSort(n, children[0])
		}
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &rowsToBatches{op: op}, nil
}

// --- exchange ------------------------------------------------------------

// exchangeMsg is one hop over an exchange: a serialized wire frame or a
// terminal error.
type exchangeMsg struct {
	frame []byte
	err   error
}

// exchangeProducer runs one plan fragment on its own goroutine, feeding
// its Ship boundary: it drives the fragment's operator tree batch by
// batch, repacks the stream into BatchSize-row wire frames — the same
// framing the sequential shipOp applies to its materialized stream, so
// both engines encode byte-identical frames — charges the cluster
// ledger the encoded size of each frame, applies the simulated wire
// delay, and sends the frames downstream in order. The consuming
// exchangeOp decodes them back into batches.
type exchangeProducer struct {
	node  *plan.Node
	src   BatchOperator
	ch    chan exchangeMsg
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
	enc   network.WireEncoder
	// sent* accumulate what the producer actually delivered; only the
	// producer goroutine touches them. On a clean end of stream they
	// become the fragment's compliance audit record — a producer that
	// errors out mid-stream records nothing, keeping the audit log
	// deterministic (partial, interleaving-dependent deliveries never
	// appear in it).
	sentRows, sentBytes, sentBatches int64
}

func (p *exchangeProducer) run() {
	defer close(p.ch)
	sp := p.obsv.StartSpan("exec.fragment").
		Tag("from", p.node.FromLoc).Tag("to", p.node.ToLoc)
	err := p.produce()
	if sp.Enabled() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		sp.TagInt("rows", p.sentRows).TagInt("batches", p.sentBatches).
			Tag("outcome", outcome).End()
	}
	if err == nil {
		if a := p.obsv.AuditSink(); a != nil {
			rec := auditRecFor(p.node)
			rec.Rows, rec.Bytes, rec.Batches = p.sentRows, p.sentBytes, p.sentBatches
			a.Record(rec)
		}
		return
	}
	select {
	case p.ch <- exchangeMsg{err: err}:
	case <-p.ctx.Done():
	}
}

func (p *exchangeProducer) produce() error {
	if err := p.src.Open(); err != nil {
		return err
	}
	defer p.src.Close()
	ship := p.scope.OpenShipment(p.node.FromLoc, p.node.ToLoc)
	// The start-up cost α (one round trip) is paid when the connection
	// opens; per-frame sends below pay the bandwidth part.
	p.c.SleepWire(p.c.Net.Alpha(p.node.FromLoc, p.node.ToLoc))
	cal := p.c.Calibrator()
	pending := make([]expr.Row, 0, BatchSize)
	frameIdx := 0
	flush := func(rows []expr.Row) error {
		frame := p.enc.Encode(rows)
		// The encoder reuses its buffer; the frame crossing the channel
		// must own its bytes.
		buf := append([]byte(nil), frame...)
		if cal != nil {
			cal.ObserveEncoding(widthSum(rows), int64(len(buf)))
		}
		// The resilient shipping path injects faults, retries with
		// backoff, and charges the shipment only when the frame lands,
		// so retried runs keep ledger parity with a fault-free one.
		if err := p.scope.ShipBatch(p.ctx, ship, p.node.FromLoc, p.node.ToLoc, frameIdx, int64(len(rows)), int64(len(buf))); err != nil {
			return err
		}
		frameIdx++
		p.sentRows += int64(len(rows))
		p.sentBytes += int64(len(buf))
		p.sentBatches++
		select {
		case p.ch <- exchangeMsg{frame: buf}:
			return nil
		case <-p.ctx.Done():
			return p.ctx.Err()
		}
	}
	for {
		b, err := p.src.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			if len(pending) > 0 {
				if err := flush(pending); err != nil {
					return err
				}
			}
			if cal != nil {
				// One affine sample per completed shipment: total
				// encoded bytes against the modeled edge cost.
				cal.ObserveShip(p.node.FromLoc, p.node.ToLoc, p.sentBytes,
					p.c.Net.ShipCost(p.node.FromLoc, p.node.ToLoc, float64(p.sentBytes)))
			}
			return nil
		}
		rows := b.Rows()
		for len(rows) > 0 {
			take := BatchSize - len(pending)
			if take > len(rows) {
				take = len(rows)
			}
			pending = append(pending, rows[:take]...)
			rows = rows[take:]
			if len(pending) == BatchSize {
				if err := flush(pending); err != nil {
					b.Release()
					return err
				}
				pending = pending[:0]
			}
		}
		b.Release()
	}
}

// exchangeOp is the consuming side of an exchange: a batch operator
// decoding the producer's wire frames back into batches, in order, at
// the destination site.
type exchangeOp struct {
	ch   <-chan exchangeMsg
	done bool
}

func (e *exchangeOp) Open() error { return nil }

func (e *exchangeOp) NextBatch() (*Batch, error) {
	if e.done {
		return nil, nil
	}
	msg, ok := <-e.ch
	if !ok {
		e.done = true
		return nil, nil
	}
	if msg.err != nil {
		e.done = true
		return nil, msg.err
	}
	// Frames decode straight into column vectors: downstream kernels run
	// on the decoded lanes with no row materialization, and the row view
	// (when an operator does need it) reproduces DecodeBatch exactly.
	b := NewBatch()
	if err := network.DecodeBatchCols(msg.frame, b.Data()); err != nil {
		b.Release()
		e.done = true
		return nil, fmt.Errorf("executor: exchange frame decode: %w", err)
	}
	return b, nil
}

// Close drains the remaining stream so an abandoned producer (e.g.
// under a LIMIT) still runs to completion and its shipment accounting
// matches the sequential engine, which always materializes Ship inputs
// fully.
func (e *exchangeOp) Close() error {
	for range e.ch {
	}
	e.done = true
	return nil
}

// --- adapters ------------------------------------------------------------

// rowsToBatches lifts a row operator into the batch engine by gathering
// its output into BatchSize vectors.
type rowsToBatches struct {
	op Operator
}

func (r *rowsToBatches) Open() error { return r.op.Open() }

func (r *rowsToBatches) NextBatch() (*Batch, error) {
	b := NewBatch()
	buf := b.rowBuf[:0]
	for len(buf) < BatchSize {
		row, ok, err := r.op.Next()
		if err != nil {
			b.rowBuf = buf
			b.Release()
			return nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, row)
	}
	b.rowBuf = buf
	if len(buf) == 0 {
		b.Release()
		return nil, nil
	}
	b.SetRows(buf)
	return b, nil
}

func (r *rowsToBatches) Close() error { return r.op.Close() }

// batchesToRows lowers a batch operator to the row interface for the
// blocking operators that consume rows one at a time.
type batchesToRows struct {
	src  BatchOperator
	cur  *Batch
	rows []expr.Row
	pos  int
}

func (b *batchesToRows) Open() error { return b.src.Open() }

func (b *batchesToRows) Next() (expr.Row, bool, error) {
	for {
		if b.pos < len(b.rows) {
			row := b.rows[b.pos]
			b.pos++
			return row, true, nil
		}
		b.cur.Release()
		b.cur, b.rows = nil, nil
		next, err := b.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if next == nil {
			return nil, false, nil
		}
		b.cur = next
		b.rows = next.Rows()
		b.pos = 0
	}
}

func (b *batchesToRows) Close() error {
	b.cur.Release()
	b.cur, b.rows = nil, nil
	return b.src.Close()
}

// --- vectorized streaming operators --------------------------------------

// batchScanOp emits a table fragment's rows as batches. Persistent
// fragments stream page by page through a store.Iterator, each page
// decoding straight into the batch's column vectors — no row
// materialization between disk and the kernels; the in-memory backend
// keeps the zero-copy row-aliasing path.
type batchScanOp struct {
	scan *scanOp
	it   *store.Iterator
	pos  int
}

func (s *batchScanOp) Open() error {
	s.pos, s.it = 0, nil
	n := s.scan.node
	if n.FragIdx >= 0 || !n.Table.Fragmented() {
		it, ok, err := s.scan.c.FragmentBatches(n.Table, n.FragIdx)
		if err != nil {
			return err
		}
		if ok {
			s.it = it
			return nil
		}
	}
	return s.scan.Open()
}

func (s *batchScanOp) NextBatch() (*Batch, error) {
	if s.it != nil {
		b := NewBatch()
		ok, err := s.it.NextBatch(b.Data())
		if err != nil || !ok {
			b.Release()
			return nil, err
		}
		return b, nil
	}
	rows := s.scan.rows
	if s.pos >= len(rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(rows) {
		end = len(rows)
	}
	// The batch aliases the fragment's rows — no copy; columns are built
	// lazily (and at most once) by the first kernel consumer.
	b := NewBatch()
	b.SetRows(rows[s.pos:end])
	s.pos = end
	return b, nil
}

func (s *batchScanOp) Close() error {
	s.it = nil
	return s.scan.Close()
}

// runSelect narrows a batch's selection through a compiled predicate,
// in place: the surviving selection lives in batch-owned storage either
// way. ok is false when the kernel could not evaluate the batch — the
// selection is left exactly as before then (a partially compacted
// selection is restored from scratch), so the interpreter fallback sees
// the original rows.
func runSelect(kern *expr.PredKernel, b *Batch, d *expr.Batch, scratch *[]int32) ([]int32, bool) {
	if cur := b.Sel(); cur != nil {
		// Select compacts a non-nil selection in place as it goes; keep a
		// copy so an error can undo the partial compaction.
		*scratch = append((*scratch)[:0], cur...)
		sel, err := kern.Select(d, cur, nil)
		if err != nil {
			copy(cur, *scratch)
			b.compactSel(cur)
			return nil, false
		}
		b.compactSel(sel)
		return sel, true
	}
	sel, err := kern.Select(d, nil, b.SelBuf())
	if err != nil {
		return nil, false
	}
	b.setSel(sel)
	return sel, true
}

// batchFilterOp narrows each batch to its qualifying rows. With a
// compiled predicate only the selection vector changes — no rows move
// and no columns rebuild; a batch the kernel cannot handle is re-run
// row by row into batch-owned row storage (never compacted in place:
// row-backed batches may alias upstream rows).
type batchFilterOp struct {
	src     BatchOperator
	pred    expr.Expr
	kern    *vecPred
	types   []expr.Type
	selCopy []int32
}

func (f *batchFilterOp) Open() error { return f.src.Open() }

func (f *batchFilterOp) NextBatch() (*Batch, error) {
	for {
		b, err := f.src.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if f.kern != nil {
			d := b.Data()
			d.Bind(f.types)
			if sel, ok := runSelect(f.kern.kern, b, d, &f.selCopy); ok {
				if len(sel) > 0 {
					return b, nil
				}
				b.Release()
				continue
			}
		}
		// Interpreter re-run over the (selected) row view; survivors are
		// gathered into the batch's own row storage.
		rows := b.Rows()
		kept := b.rowBuf[:0]
		for _, row := range rows {
			keep, err := expr.EvalBool(f.pred, row)
			if err != nil {
				b.Release()
				return nil, err
			}
			if keep {
				kept = append(kept, row)
			}
		}
		b.rowBuf = kept
		b.SetRows(kept)
		if b.Len() > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (f *batchFilterOp) Close() error { return f.src.Close() }

// batchProjectOp evaluates the projection over each input batch. The
// fast path is fully columnar: kernel outputs, gathered passthroughs
// and broadcast constants land in the output batch's own vectors, and
// no row materializes. Batches that path cannot handle exactly fall
// back to kernel-assisted row assembly, then to the interpreter.
type batchProjectOp struct {
	src   BatchOperator
	exprs []expr.Expr
	proj  *vecProj
	types []expr.Type
}

func (p *batchProjectOp) Open() error { return p.src.Open() }

func (p *batchProjectOp) NextBatch() (*Batch, error) {
	in, err := p.src.NextBatch()
	if err != nil || in == nil {
		return nil, err
	}
	out := NewBatch()
	if p.proj != nil {
		d := in.Data()
		d.Bind(p.types)
		if p.proj.applyCols(d, in.Sel(), out.Data()) {
			in.Release()
			return out, nil
		}
		if rows, ok := p.proj.apply(d, in.Sel(), out.rowBuf[:0]); ok {
			out.rowBuf = rows
			out.SetRows(rows)
			in.Release()
			return out, nil
		}
	}
	buf := out.rowBuf[:0]
	for _, row := range in.Rows() {
		proj, err := projectRow(p.exprs, row)
		if err != nil {
			in.Release()
			out.rowBuf = buf
			out.Release()
			return nil, err
		}
		buf = append(buf, proj)
	}
	out.rowBuf = buf
	out.SetRows(buf)
	in.Release()
	return out, nil
}

func (p *batchProjectOp) Close() error { return p.src.Close() }

// batchFilterProjectOp is the fused filter+projection of the parallel
// engine: the predicate narrows the batch's selection vector, which
// drives the projection kernels directly over the same columnar view —
// surviving rows are never materialized between the two. Batches either
// kernel cannot handle re-run row by row — filter then project, in row
// order — matching the interpreter.
type batchFilterProjectOp struct {
	src     BatchOperator
	pred    expr.Expr
	kern    *vecPred
	types   []expr.Type
	exprs   []expr.Expr
	proj    *vecProj // nil: passthrough/interpreted outputs only
	selCopy []int32
}

func (p *batchFilterProjectOp) Open() error { return p.src.Open() }

func (p *batchFilterProjectOp) NextBatch() (*Batch, error) {
	for {
		in, err := p.src.NextBatch()
		if err != nil || in == nil {
			return nil, err
		}
		out, done, err := p.processBatch(in)
		if err != nil {
			return nil, err
		}
		if done {
			if out != nil {
				return out, nil
			}
			continue
		}
		// Full interpreter re-run of the batch, in row order.
		out = NewBatch()
		buf := out.rowBuf[:0]
		for _, row := range in.Rows() {
			keep, err := expr.EvalBool(p.pred, row)
			if err != nil {
				in.Release()
				out.rowBuf = buf
				out.Release()
				return nil, err
			}
			if !keep {
				continue
			}
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				in.Release()
				out.rowBuf = buf
				out.Release()
				return nil, err
			}
			buf = append(buf, proj)
		}
		out.rowBuf = buf
		out.SetRows(buf)
		in.Release()
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

// processBatch runs the kernel path over one batch: predicate selection
// plus the columnar (or kernel-assisted row) projection. done is false
// when the batch must be re-run through the interpreter; in is NOT
// released then and its selection is unchanged.
func (p *batchFilterProjectOp) processBatch(in *Batch) (*Batch, bool, error) {
	d := in.Data()
	d.Bind(p.types)
	sel, ok := runSelect(p.kern.kern, in, d, &p.selCopy)
	if !ok {
		return nil, false, nil
	}
	if len(sel) == 0 {
		in.Release()
		return nil, true, nil
	}
	out := NewBatch()
	if p.proj != nil {
		if p.proj.applyCols(d, sel, out.Data()) {
			in.Release()
			return out, true, nil
		}
		if rows, applied := p.proj.apply(d, sel, out.rowBuf[:0]); applied {
			out.rowBuf = rows
			out.SetRows(rows)
			in.Release()
			return out, true, nil
		}
		out.Release()
		return nil, false, nil
	}
	buf := out.rowBuf[:0]
	for _, si := range sel {
		proj, err := projectRow(p.exprs, d.Row(int(si)))
		if err != nil {
			out.rowBuf = buf
			out.Release()
			return nil, false, nil
		}
		buf = append(buf, proj)
	}
	out.rowBuf = buf
	out.SetRows(buf)
	in.Release()
	return out, true, nil
}

func (p *batchFilterProjectOp) Close() error { return p.src.Close() }

// batchLimitOp truncates the stream after n rows.
type batchLimitOp struct {
	src  BatchOperator
	n    int64
	seen int64
}

func (l *batchLimitOp) Open() error {
	l.seen = 0
	return l.src.Open()
}

func (l *batchLimitOp) NextBatch() (*Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.src.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if remain := l.n - l.seen; int64(b.Len()) > remain {
		b.Truncate(int(remain))
	}
	l.seen += int64(b.Len())
	return b, nil
}

func (l *batchLimitOp) Close() error { return l.src.Close() }

// batchUnionOp concatenates its children's streams in order. All
// children are opened up front — matching the sequential engine — so
// exchange inputs of later branches fill their buffers while earlier
// branches drain.
type batchUnionOp struct {
	children []BatchOperator
	idx      int
}

func (u *batchUnionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *batchUnionOp) NextBatch() (*Batch, error) {
	for u.idx < len(u.children) {
		b, err := u.children[u.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

func (u *batchUnionOp) Close() error {
	var firstErr error
	for _, c := range u.children {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
