package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// This file implements the parallel, batch-oriented execution engine.
//
// A located plan is split at Ship boundaries into per-site fragments
// (see plan.SplitFragments): every Ship operator becomes an exchange —
// a bounded channel of batches — and the subtree below it runs as a
// producer on its own goroutine. Within a fragment, streaming operators
// (scan, filter, project, limit, union) are vectorized over batches;
// blocking operators (joins, aggregates, sorts) reuse the row-at-a-time
// implementations through thin adapters, so their semantics stay
// single-sourced with the sequential engine.
//
// Determinism: every exchange has exactly one producer and preserves its
// order, and consumers drain inputs in the same order as the sequential
// engine, so the parallel engine emits the same rows in the same order
// — and charges the ledger the same ShippedRows/ShippedBytes/ShipCost —
// as Run. Only wall-clock time differs: independent fragments overlap.

// exchangeDepth bounds the batches buffered per exchange; producers run
// at most exchangeDepth×BatchSize rows ahead of their consumer.
const exchangeDepth = 4

// RunParallel executes a located physical plan with the parallel engine
// and materializes its result. It is a drop-in replacement for Run:
// same rows (in the same order) and identical shipping statistics.
func RunParallel(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelContext(context.Background(), p, c)
}

// RunParallelContext is RunParallel under a caller context: cancelling
// it (or hitting its deadline) tears down every fragment goroutine —
// producers observe the cancellation at their next channel send, retry
// backoff, or batch boundary — and the call returns only after all of
// them have exited, so no goroutine or ledger entry is left dangling.
func RunParallelContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunParallelObserved(ctx, p, c, nil)
}

// RunParallelObserved is RunParallelContext reporting into an observer
// (nil behaves like RunParallelContext): an execution span and latency
// histogram around the run, a fragment span plus compliance audit
// record per exchange producer, and per-operator actuals when the
// observer carries a PlanProfile.
func RunParallelObserved(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer) ([]expr.Row, *RunStats, error) {
	sp := o.StartSpan("execute.parallel")
	m := o.Reg()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	eng := &parallelEngine{c: c, scope: c.NewRun(), ctx: ctx, obsv: o}
	root, err := buildParallel(p, eng)
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	eng.start()
	rows, err := CollectBatches(root)
	// Closing the root drained every exchange, so producers have either
	// finished or (on error) are observing the cancelled context.
	cancel()
	eng.wg.Wait()
	if err != nil {
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	if err := parent.Err(); err != nil {
		// The caller cancelled (or timed out) while producers were
		// winding down: their closed exchanges look like clean ends of
		// stream, so guard against returning a partial result as
		// success.
		finishExec(sp, m, "parallel", t0, 0, err)
		return nil, nil, err
	}
	stats := scopeStats(eng.scope, int64(len(rows)))
	finishExec(sp, m, "parallel", t0, stats.RowsOut, nil)
	return rows, stats, nil
}

// CollectBatches drains a batch operator into a row slice.
func CollectBatches(op BatchOperator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		b, err := op.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Rows...)
		b.Release()
	}
}

// parallelEngine carries the per-execution state shared by fragments.
type parallelEngine struct {
	c         *cluster.Cluster
	scope     *cluster.RunScope
	ctx       context.Context
	wg        sync.WaitGroup
	producers []*exchangeProducer
	obsv      *obs.Observer
}

// start launches every fragment producer. Producers begin executing
// immediately — like the sequential engine, which materializes each
// Ship's input fully at Open, every fragment runs exactly once and to
// completion, so eager start changes overlap, not semantics.
func (e *parallelEngine) start() {
	for _, p := range e.producers {
		e.wg.Add(1)
		go func(p *exchangeProducer) {
			defer e.wg.Done()
			p.run()
		}(p)
	}
}

// buildParallel compiles a plan node into a batch operator tree,
// registering one exchange producer per Ship boundary. Expression
// binding happens here, on the building goroutine, before any producer
// starts — bound expressions are only read during execution. When the
// engine's observer carries a PlanProfile, every node's operator is
// wrapped to collect per-node actuals.
func buildParallel(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	op, err := buildParallelNode(n, eng)
	if err != nil {
		return nil, err
	}
	if prof := eng.obsv.Prof(); prof != nil {
		op = &batchProfOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

func buildParallelNode(n *plan.Node, eng *parallelEngine) (BatchOperator, error) {
	switch n.Kind {
	case plan.Ship:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		ch := make(chan exchangeMsg, exchangeDepth)
		eng.producers = append(eng.producers, &exchangeProducer{
			node: n, src: src, ch: ch, c: eng.c, scope: eng.scope, ctx: eng.ctx, obsv: eng.obsv,
		})
		return &exchangeOp{ch: ch}, nil
	case plan.TableScan, plan.Scan:
		op, err := newScan(n, eng.c)
		if err != nil {
			return nil, err
		}
		return &batchScanOp{scan: op.(*scanOp)}, nil
	case plan.FilterExec, plan.Filter:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		pred, err := expr.Bind(n.Pred, resolver(n.Children[0]))
		if err != nil {
			return nil, fmt.Errorf("executor: filter bind: %w", err)
		}
		return &batchFilterOp{src: src, pred: pred}, nil
	case plan.ProjectExec, plan.Project:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		res := resolver(n.Children[0])
		exprs := make([]expr.Expr, len(n.Projs))
		for i, p := range n.Projs {
			bound, err := expr.Bind(p.E, res)
			if err != nil {
				return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
			}
			exprs[i] = bound
		}
		return &batchProjectOp{src: src, exprs: exprs}, nil
	case plan.LimitExec, plan.Limit:
		src, err := buildParallel(n.Children[0], eng)
		if err != nil {
			return nil, err
		}
		return &batchLimitOp{src: src, n: n.LimitN}, nil
	case plan.UnionAll, plan.Union:
		children := make([]BatchOperator, len(n.Children))
		for i, ch := range n.Children {
			op, err := buildParallel(ch, eng)
			if err != nil {
				return nil, err
			}
			children[i] = op
		}
		return &batchUnionOp{children: children}, nil
	}
	// Blocking operators (joins, aggregates, sorts) materialize their
	// inputs anyway; they reuse the row implementations via adapters.
	children := make([]Operator, len(n.Children))
	for i, ch := range n.Children {
		src, err := buildParallel(ch, eng)
		if err != nil {
			return nil, err
		}
		children[i] = &batchesToRows{src: src}
	}
	var op Operator
	var err error
	switch n.Kind {
	case plan.HashJoin:
		op, err = newHashJoin(n, children[0], children[1])
	case plan.MergeJoin:
		op, err = newMergeJoin(n, children[0], children[1])
	case plan.NLJoin, plan.Join:
		op, err = newNLJoin(n, children[0], children[1])
	case plan.HashAgg, plan.Aggregate:
		op, err = newHashAgg(n, children[0])
	case plan.SortExec, plan.Sort:
		op, err = newSort(n, children[0])
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &rowsToBatches{op: op}, nil
}

// --- exchange ------------------------------------------------------------

// exchangeMsg is one hop over an exchange: a batch or a terminal error.
type exchangeMsg struct {
	batch *Batch
	err   error
}

// exchangeProducer runs one plan fragment on its own goroutine, feeding
// its Ship boundary: it drives the fragment's operator tree batch by
// batch, charges the cluster ledger once per batch (totals identical to
// the sequential engine's one-shot accounting), applies the simulated
// wire delay, and sends batches downstream in order.
type exchangeProducer struct {
	node  *plan.Node
	src   BatchOperator
	ch    chan exchangeMsg
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
	// sent* accumulate what the producer actually delivered; only the
	// producer goroutine touches them. On a clean end of stream they
	// become the fragment's compliance audit record — a producer that
	// errors out mid-stream records nothing, keeping the audit log
	// deterministic (partial, interleaving-dependent deliveries never
	// appear in it).
	sentRows, sentBytes, sentBatches int64
}

func (p *exchangeProducer) run() {
	defer close(p.ch)
	sp := p.obsv.StartSpan("exec.fragment").
		Tag("from", p.node.FromLoc).Tag("to", p.node.ToLoc)
	err := p.produce()
	if sp.Enabled() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		sp.TagInt("rows", p.sentRows).TagInt("batches", p.sentBatches).
			Tag("outcome", outcome).End()
	}
	if err == nil {
		if a := p.obsv.AuditSink(); a != nil {
			rec := auditRecFor(p.node)
			rec.Rows, rec.Bytes, rec.Batches = p.sentRows, p.sentBytes, p.sentBatches
			a.Record(rec)
		}
		return
	}
	select {
	case p.ch <- exchangeMsg{err: err}:
	case <-p.ctx.Done():
	}
}

func (p *exchangeProducer) produce() error {
	if err := p.src.Open(); err != nil {
		return err
	}
	defer p.src.Close()
	ship := p.scope.OpenShipment(p.node.FromLoc, p.node.ToLoc)
	// The start-up cost α (one round trip) is paid when the connection
	// opens; per-batch sends below pay the bandwidth part.
	p.c.SleepWire(p.c.Net.Alpha(p.node.FromLoc, p.node.ToLoc))
	for batch := 0; ; batch++ {
		b, err := p.src.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		// The resilient shipping path injects faults, retries with
		// backoff, and charges the shipment only when the batch lands,
		// so retried runs keep ledger parity with a fault-free one.
		if err := p.scope.ShipBatch(p.ctx, ship, p.node.FromLoc, p.node.ToLoc, batch, int64(len(b.Rows)), b.Bytes()); err != nil {
			b.Release()
			return err
		}
		p.sentRows += int64(len(b.Rows))
		p.sentBytes += b.Bytes()
		p.sentBatches++
		select {
		case p.ch <- exchangeMsg{batch: b}:
		case <-p.ctx.Done():
			b.Release()
			return p.ctx.Err()
		}
	}
}

// exchangeOp is the consuming side of an exchange: a batch operator
// replaying the producer's stream in order at the destination site.
type exchangeOp struct {
	ch   <-chan exchangeMsg
	done bool
}

func (e *exchangeOp) Open() error { return nil }

func (e *exchangeOp) NextBatch() (*Batch, error) {
	if e.done {
		return nil, nil
	}
	msg, ok := <-e.ch
	if !ok {
		e.done = true
		return nil, nil
	}
	if msg.err != nil {
		e.done = true
		return nil, msg.err
	}
	return msg.batch, nil
}

// Close drains the remaining stream so an abandoned producer (e.g.
// under a LIMIT) still runs to completion and its shipment accounting
// matches the sequential engine, which always materializes Ship inputs
// fully.
func (e *exchangeOp) Close() error {
	for msg := range e.ch {
		msg.batch.Release()
	}
	e.done = true
	return nil
}

// --- adapters ------------------------------------------------------------

// rowsToBatches lifts a row operator into the batch engine by gathering
// its output into BatchSize vectors.
type rowsToBatches struct {
	op Operator
}

func (r *rowsToBatches) Open() error { return r.op.Open() }

func (r *rowsToBatches) NextBatch() (*Batch, error) {
	b := NewBatch()
	for len(b.Rows) < cap(b.Rows) {
		row, ok, err := r.op.Next()
		if err != nil {
			b.Release()
			return nil, err
		}
		if !ok {
			break
		}
		b.Rows = append(b.Rows, row)
	}
	if len(b.Rows) == 0 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

func (r *rowsToBatches) Close() error { return r.op.Close() }

// batchesToRows lowers a batch operator to the row interface for the
// blocking operators that consume rows one at a time.
type batchesToRows struct {
	src BatchOperator
	cur *Batch
	pos int
}

func (b *batchesToRows) Open() error { return b.src.Open() }

func (b *batchesToRows) Next() (expr.Row, bool, error) {
	for {
		if b.cur != nil && b.pos < len(b.cur.Rows) {
			row := b.cur.Rows[b.pos]
			b.pos++
			return row, true, nil
		}
		b.cur.Release()
		b.cur = nil
		next, err := b.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if next == nil {
			return nil, false, nil
		}
		b.cur = next
		b.pos = 0
	}
}

func (b *batchesToRows) Close() error {
	b.cur.Release()
	b.cur = nil
	return b.src.Close()
}

// --- vectorized streaming operators --------------------------------------

// batchScanOp emits a table fragment's rows as batches.
type batchScanOp struct {
	scan *scanOp
	pos  int
}

func (s *batchScanOp) Open() error {
	s.pos = 0
	return s.scan.Open()
}

func (s *batchScanOp) NextBatch() (*Batch, error) {
	rows := s.scan.rows
	if s.pos >= len(rows) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(rows) {
		end = len(rows)
	}
	b := NewBatch()
	b.Rows = append(b.Rows, rows[s.pos:end]...)
	s.pos = end
	return b, nil
}

func (s *batchScanOp) Close() error { return s.scan.Close() }

// batchFilterOp compacts each batch in place, keeping qualifying rows.
type batchFilterOp struct {
	src  BatchOperator
	pred expr.Expr
}

func (f *batchFilterOp) Open() error { return f.src.Open() }

func (f *batchFilterOp) NextBatch() (*Batch, error) {
	for {
		b, err := f.src.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		kept := b.Rows[:0]
		for _, row := range b.Rows {
			keep, err := expr.EvalBool(f.pred, row)
			if err != nil {
				b.Release()
				return nil, err
			}
			if keep {
				kept = append(kept, row)
			}
		}
		// Clear the tail so released batches don't pin dropped rows.
		clear(b.Rows[len(kept):])
		b.Rows = kept
		if len(b.Rows) > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (f *batchFilterOp) Close() error { return f.src.Close() }

// batchProjectOp evaluates the projection over each input batch.
type batchProjectOp struct {
	src   BatchOperator
	exprs []expr.Expr
}

func (p *batchProjectOp) Open() error { return p.src.Open() }

func (p *batchProjectOp) NextBatch() (*Batch, error) {
	in, err := p.src.NextBatch()
	if err != nil || in == nil {
		return nil, err
	}
	out := NewBatch()
	for _, row := range in.Rows {
		proj := make(expr.Row, len(p.exprs))
		for i, e := range p.exprs {
			v, err := expr.Eval(e, row)
			if err != nil {
				in.Release()
				out.Release()
				return nil, err
			}
			proj[i] = v
		}
		out.Rows = append(out.Rows, proj)
	}
	in.Release()
	return out, nil
}

func (p *batchProjectOp) Close() error { return p.src.Close() }

// batchLimitOp truncates the stream after n rows.
type batchLimitOp struct {
	src  BatchOperator
	n    int64
	seen int64
}

func (l *batchLimitOp) Open() error {
	l.seen = 0
	return l.src.Open()
}

func (l *batchLimitOp) NextBatch() (*Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.src.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if remain := l.n - l.seen; int64(len(b.Rows)) > remain {
		clear(b.Rows[remain:])
		b.Rows = b.Rows[:remain]
	}
	l.seen += int64(len(b.Rows))
	return b, nil
}

func (l *batchLimitOp) Close() error { return l.src.Close() }

// batchUnionOp concatenates its children's streams in order. All
// children are opened up front — matching the sequential engine — so
// exchange inputs of later branches fill their buffers while earlier
// branches drain.
type batchUnionOp struct {
	children []BatchOperator
	idx      int
}

func (u *batchUnionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *batchUnionOp) NextBatch() (*Batch, error) {
	for u.idx < len(u.children) {
		b, err := u.children[u.idx].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

func (u *batchUnionOp) Close() error {
	var firstErr error
	for _, c := range u.children {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
