package executor

import "cgdqp/internal/network"

// ExecOptions tune one execution. The zero value follows the build
// default: kernels on (off under -tags cgdqp_interp), plain wire
// encoding.
type ExecOptions struct {
	// NoKernels forces the row interpreter even where compiled columnar
	// kernels are available. Results, shipped bytes and audit logs are
	// identical either way; only speed differs.
	NoKernels bool
	// Wire configures the serialized batch encoding used at Ship
	// boundaries (e.g. compression). Both engines frame the shipped
	// stream into BatchSize-row frames and account the encoded size, so
	// the option changes shipped bytes identically in both.
	Wire network.WireOptions
}

// defaultExecOptions returns the options the non-Opts entry points run
// under.
func defaultExecOptions() ExecOptions {
	return ExecOptions{NoKernels: !kernelsDefault}
}

// kernels reports whether compiled kernels should be used.
func (o ExecOptions) kernels() bool { return !o.NoKernels }
