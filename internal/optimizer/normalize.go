// Package optimizer implements the compliance-based two-phase optimizer
// of Section 6: a normalization pre-pass (filter pushdown, column
// pruning, fragment expansion), the plan annotator (phase 1, Section 6.2)
// built on the memo, the dynamic-programming site selector (phase 2,
// Section 6.3, Algorithm 2), and a compliance checker that validates any
// located plan against Definition 1.
package optimizer

import (
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Normalize canonicalizes a bound logical plan before memo insertion:
//
//  1. scans of fragmented tables expand into unions of per-fragment scans
//     (the GAV rewrite t = t1 ∪ ... ∪ tn of Section 7.5);
//  2. filter predicates push down to the deepest operator that covers
//     their columns, turning cross products into joins;
//  3. column pruning inserts projections above each leaf so that only
//     attributes the query actually uses travel upward — this is the
//     masking-via-projection the compliant plans of Figure 1(b) rely on.
func Normalize(root *plan.Node) *plan.Node {
	root = expandFragments(root)
	root = pushFilters(root, nil)
	root = pruneColumns(root)
	return root
}

// expandFragments rewrites whole-table scans of fragmented tables into
// unions of per-fragment scans.
func expandFragments(n *plan.Node) *plan.Node {
	for i, c := range n.Children {
		n.Children[i] = expandFragments(c)
	}
	if n.Kind == plan.Scan && n.FragIdx < 0 && n.Table.Fragmented() {
		scans := make([]*plan.Node, len(n.Table.Fragments))
		for i := range n.Table.Fragments {
			scans[i] = plan.NewScan(n.Table, n.Alias, i)
		}
		return plan.NewUnion(scans...)
	}
	return n
}

// pushFilters distributes the given conjuncts (plus any Filter operators
// encountered) down the tree.
func pushFilters(n *plan.Node, conjuncts []expr.Expr) *plan.Node {
	switch n.Kind {
	case plan.Filter:
		return pushFilters(n.Children[0], append(append([]expr.Expr{}, conjuncts...), expr.Conjuncts(n.Pred)...))

	case plan.Join:
		pool := append(append([]expr.Expr{}, conjuncts...), expr.Conjuncts(n.Pred)...)
		var left, right, here []expr.Expr
		l, r := n.Children[0], n.Children[1]
		for _, c := range pool {
			switch {
			case coveredBy(c, l):
				left = append(left, c)
			case coveredBy(c, r):
				right = append(right, c)
			default:
				here = append(here, c)
			}
		}
		n.Children[0] = pushFilters(l, left)
		n.Children[1] = pushFilters(r, right)
		n.Pred = expr.AndAll(here...)
		return n

	case plan.Union:
		for i, c := range n.Children {
			n.Children[i] = pushFilters(c, cloneConjuncts(conjuncts))
		}
		return n

	case plan.Project:
		// Push through when every conjunct column is a pass-through
		// column of the projection; otherwise filter above.
		var passable, blocked []expr.Expr
		for _, c := range conjuncts {
			if rewritten, ok := throughProject(c, n); ok {
				passable = append(passable, rewritten)
			} else {
				blocked = append(blocked, c)
			}
		}
		n.Children[0] = pushFilters(n.Children[0], passable)
		return wrapFilter(n, blocked)

	case plan.Sort, plan.Limit:
		// LIMIT changes semantics under filters: keep conjuncts above.
		if n.Kind == plan.Limit {
			n.Children[0] = pushFilters(n.Children[0], nil)
			return wrapFilter(n, conjuncts)
		}
		n.Children[0] = pushFilters(n.Children[0], conjuncts)
		return n

	case plan.Aggregate:
		// Conjuncts over grouping columns could push below; conjuncts
		// over aggregates cannot. Keep all above for simplicity (the
		// binder does not produce HAVING yet, so this arises only from
		// derived tables).
		n.Children[0] = pushFilters(n.Children[0], nil)
		return wrapFilter(n, conjuncts)

	default: // Scan and anything else: wrap.
		for i, c := range n.Children {
			n.Children[i] = pushFilters(c, nil)
		}
		return wrapFilter(n, conjuncts)
	}
}

func wrapFilter(n *plan.Node, conjuncts []expr.Expr) *plan.Node {
	if pred := expr.AndAll(conjuncts...); pred != nil {
		return plan.NewFilter(n, pred)
	}
	return n
}

func cloneConjuncts(cs []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(cs))
	for i, c := range cs {
		out[i] = expr.Clone(c)
	}
	return out
}

// coveredBy reports whether every column of e resolves in n's schema.
func coveredBy(e expr.Expr, n *plan.Node) bool {
	ok := true
	expr.Walk(e, func(x expr.Expr) bool {
		if c, isCol := x.(*expr.Col); isCol {
			if n.ColIndex(c) < 0 {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// throughProject rewrites a conjunct in terms of the projection's input,
// when every referenced column is a pass-through column.
func throughProject(e expr.Expr, proj *plan.Node) (expr.Expr, bool) {
	ok := true
	out := expr.Transform(e, func(x expr.Expr) expr.Expr {
		c, isCol := x.(*expr.Col)
		if !isCol || !ok {
			return x
		}
		for i, cr := range proj.Cols {
			if strings.EqualFold(cr.Name, c.Name) && (c.Table == "" || strings.EqualFold(cr.Table, c.Table)) {
				if src, isSrc := proj.Projs[i].E.(*expr.Col); isSrc {
					return &expr.Col{Table: src.Table, Name: src.Name, Index: -1}
				}
				ok = false
				return x
			}
		}
		ok = false
		return x
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// pruneColumns inserts pruning projections above each leaf's filter stack
// so that only columns referenced anywhere else in the plan survive.
func pruneColumns(root *plan.Node) *plan.Node {
	// Collect used columns per alias from every expression in the tree,
	// except predicates of scan-local filters (they evaluate below the
	// inserted projection).
	used := map[string]map[string]bool{} // alias -> column -> true
	addCol := func(c *expr.Col) {
		if c.Table == "" {
			return
		}
		key := strings.ToLower(c.Table)
		if used[key] == nil {
			used[key] = map[string]bool{}
		}
		used[key][strings.ToLower(c.Name)] = true
	}
	addExpr := func(e expr.Expr) {
		for _, c := range expr.Columns(e) {
			addCol(c)
		}
	}
	root.Walk(func(n *plan.Node) bool {
		switch n.Kind {
		case plan.Filter:
			if !isScanLocalFilter(n) {
				addExpr(n.Pred)
			}
		case plan.Join:
			addExpr(n.Pred)
		case plan.Project:
			for _, p := range n.Projs {
				addExpr(p.E)
			}
		case plan.Aggregate:
			for _, g := range n.GroupBy {
				addCol(g)
			}
			for _, a := range n.Aggs {
				if a.Arg != nil {
					addExpr(a.Arg)
				}
			}
		case plan.Sort:
			for _, k := range n.SortKeys {
				addExpr(k.E)
			}
		}
		return true
	})
	return insertPrunes(root, used)
}

// isScanLocalFilter reports whether the filter sits directly above a scan
// (possibly through other scan-local filters) and references only that
// scan's alias.
func isScanLocalFilter(n *plan.Node) bool {
	c := n.Children[0]
	for c.Kind == plan.Filter {
		c = c.Children[0]
	}
	if c.Kind != plan.Scan {
		return false
	}
	return coveredBy(n.Pred, c)
}

// insertPrunes wraps each leaf stack (scan plus local filters) with a
// projection keeping only used columns.
func insertPrunes(n *plan.Node, used map[string]map[string]bool) *plan.Node {
	if n.Kind == plan.Scan || n.Kind == plan.Filter && isScanLocalFilter(n) {
		scan := n
		for scan.Kind == plan.Filter {
			scan = scan.Children[0]
		}
		keep := used[strings.ToLower(scan.Alias)]
		var projs []plan.NamedExpr
		for _, cr := range scan.Cols {
			if keep[strings.ToLower(cr.Name)] {
				projs = append(projs, plan.NamedExpr{E: cr.Col(), Name: cr.Name, Type: cr.Type})
			}
		}
		if len(projs) == 0 {
			// Keep one column so rows retain identity.
			cr := scan.Cols[0]
			projs = []plan.NamedExpr{{E: cr.Col(), Name: cr.Name, Type: cr.Type}}
		}
		if len(projs) == len(scan.Cols) {
			return n // nothing to prune
		}
		return plan.NewProject(n, projs)
	}
	for i, c := range n.Children {
		n.Children[i] = insertPrunes(c, used)
	}
	return n
}
