package optimizer

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

func checkerFixture() (*schema.Table, *schema.Table, *policy.Evaluator) {
	cust := schema.NewTable("cust", "db-a", "A", 10,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "secret", Type: expr.TString})
	ord := schema.NewTable("ord", "db-b", "B", 10,
		schema.Column{Name: "k", Type: expr.TInt})
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship k from cust to B", "p1", "db-a"),
		policy.MustParse("ship * from ord to *", "p2", "db-b"),
	)
	return cust, ord, policy.NewEvaluator(pc, []string{"A", "B", "C"})
}

func locate(n *plan.Node, loc string) *plan.Node {
	n.Loc = loc
	return n
}

func TestCheckerAcceptsMaskedShip(t *testing.T) {
	cust, ord, ev := checkerFixture()
	// Π_k(cust)@A --ship--> join@B with ord@B.
	scan := locate(plan.NewScan(cust, "c", -1), "A")
	scan.Kind = plan.TableScan
	proj := locate(plan.NewProject(scan, []plan.NamedExpr{{E: expr.NewCol("c", "k")}}), "A")
	proj.Kind = plan.ProjectExec
	ship := plan.NewShip(proj, "A", "B")
	oscan := locate(plan.NewScan(ord, "o", -1), "B")
	oscan.Kind = plan.TableScan
	join := locate(plan.NewJoin(ship, oscan, expr.NewCmp(expr.EQ, expr.NewCol("c", "k"), expr.NewCol("o", "k"))), "B")
	join.Kind = plan.HashJoin

	if v := CheckCompliance(join, ev); len(v) != 0 {
		t.Errorf("masked ship should comply: %v", v)
	}
}

func TestCheckerFlagsRawShip(t *testing.T) {
	cust, ord, ev := checkerFixture()
	// Shipping the raw cust table (with `secret`) to B violates p1.
	scan := locate(plan.NewScan(cust, "c", -1), "A")
	scan.Kind = plan.TableScan
	ship := plan.NewShip(scan, "A", "B")
	oscan := locate(plan.NewScan(ord, "o", -1), "B")
	oscan.Kind = plan.TableScan
	join := locate(plan.NewJoin(ship, oscan, expr.NewCmp(expr.EQ, expr.NewCol("c", "k"), expr.NewCol("o", "k"))), "B")
	join.Kind = plan.HashJoin

	v := CheckCompliance(join, ev)
	if len(v) == 0 {
		t.Fatal("raw ship must violate")
	}
	if v[0].Source != "A" || v[0].Dest != "B" {
		t.Errorf("violation: %+v", v[0])
	}
	if !strings.Contains(v[0].String(), "allow only") {
		t.Errorf("violation text: %s", v[0])
	}
}

func TestCheckerTransitiveFlow(t *testing.T) {
	cust, ord, ev := checkerFixture()
	// cust-k ships to B (legal), joins, and the join result ships on to C
	// — C is not in 𝒜(Π_k(cust)), so the transitive flow violates.
	scan := locate(plan.NewScan(cust, "c", -1), "A")
	scan.Kind = plan.TableScan
	proj := locate(plan.NewProject(scan, []plan.NamedExpr{{E: expr.NewCol("c", "k")}}), "A")
	proj.Kind = plan.ProjectExec
	ship := plan.NewShip(proj, "A", "B")
	oscan := locate(plan.NewScan(ord, "o", -1), "B")
	oscan.Kind = plan.TableScan
	join := locate(plan.NewJoin(ship, oscan, expr.NewCmp(expr.EQ, expr.NewCol("c", "k"), expr.NewCol("o", "k"))), "B")
	join.Kind = plan.HashJoin
	ship2 := plan.NewShip(join, "B", "C")
	top := locate(plan.NewFilter(ship2, nil), "C")
	top.Kind = plan.FilterExec

	v := CheckCompliance(top, ev)
	if len(v) == 0 {
		t.Fatal("transitive flow to C must violate")
	}
	found := false
	for _, violation := range v {
		if violation.Dest == "C" && violation.Source == "A" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected cust-subtree violation at C: %v", v)
	}
}

func TestCheckerSingleSitePlan(t *testing.T) {
	cust, _, ev := checkerFixture()
	scan := locate(plan.NewScan(cust, "c", -1), "A")
	scan.Kind = plan.TableScan
	f := locate(plan.NewFilter(scan, expr.NewCmp(expr.GT, expr.NewCol("c", "k"), expr.NewConst(expr.NewInt(1)))), "A")
	f.Kind = plan.FilterExec
	if v := CheckCompliance(f, ev); len(v) != 0 {
		t.Errorf("single-site plan: %v", v)
	}
}

func TestCheckerDescendsNonDescribable(t *testing.T) {
	cust, ord, ev := checkerFixture()
	_ = ord
	// A HAVING-style filter over an aggregate is not describable; the
	// checker descends to the aggregate below (which is describable) and
	// accepts shipping it home-side but flags an illegal destination.
	scan := locate(plan.NewScan(cust, "c", -1), "A")
	scan.Kind = plan.TableScan
	agg := locate(plan.NewAggregate(scan, []*expr.Col{expr.NewCol("c", "k")},
		[]plan.NamedAgg{{Fn: expr.AggCount, Arg: nil, Name: "n"}}), "A")
	agg.Kind = plan.HashAgg
	having := locate(plan.NewFilter(agg, expr.NewCmp(expr.GT, expr.NewCol("", "n"), expr.NewConst(expr.NewInt(1)))), "A")
	having.Kind = plan.FilterExec
	ship := plan.NewShip(having, "A", "C")
	top := locate(plan.NewLimit(ship, 10), "C")
	top.Kind = plan.LimitExec

	v := CheckCompliance(top, ev)
	// k may ship to B only; COUNT contributes nothing; destination C is
	// illegal for the aggregate's k column.
	if len(v) == 0 {
		t.Fatal("expected violation for C")
	}
	if v[0].Subtree.Kind != plan.HashAgg {
		t.Errorf("checker should have descended to the aggregate, got %v", v[0].Subtree.Kind)
	}
}
