package optimizer

import (
	"errors"
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// The CarCo running example of Section 2: Customer in North America,
// Orders in Europe, Supply in Asia, with dataflow policies P_N, P_E, P_A.

func carcoSchema() *schema.Catalog {
	cat := schema.NewCatalog()
	c := schema.NewTable("Customer", "db-n", "N", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktseg", Type: expr.TString},
		schema.Column{Name: "region", Type: expr.TString},
	)
	c.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	o := schema.NewTable("Orders", "db-e", "E", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
	o.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	o.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	s := schema.NewTable("Supply", "db-a", "A", 40000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extprice", Type: expr.TFloat},
	)
	s.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	cat.MustAddTable(c)
	cat.MustAddTable(o)
	cat.MustAddTable(s)
	return cat
}

func carcoPolicies() *policy.Catalog {
	pc := policy.NewCatalog()
	pc.AddAll(
		// P_N: Customer data leaves only after suppressing acctbal.
		policy.MustParse("ship custkey, name, mktseg, region from Customer to *", "pn", "db-n"),
		// P_E: only aggregated Orders data may go to Asia; order prices
		// never to North America; keys may move freely.
		policy.MustParse("ship custkey, ordkey from Orders to *", "pe1", "db-e"),
		policy.MustParse("ship totprice as aggregates sum from Orders to A group by custkey, ordkey", "pe2", "db-e"),
		// P_A: only per-order aggregated quantity/extprice leave Asia for
		// Europe.
		policy.MustParse("ship quantity, extprice as aggregates sum from Supply to E group by ordkey", "pa", "db-a"),
	)
	return pc
}

const carcoQuery = `
	SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
	FROM Customer C, Orders O, Supply S
	WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
	GROUP BY C.name`

func carcoOptimizer(t *testing.T, compliant bool) *Optimizer {
	t.Helper()
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	return New(sc, carcoPolicies(), net, Options{Compliant: compliant})
}

func TestCarCoCompliantPlan(t *testing.T) {
	opt := carcoOptimizer(t, true)
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatalf("compliant optimization failed: %v", err)
	}
	// The plan must pass the Definition 1 checker.
	if v := opt.Check(res.Plan); len(v) != 0 {
		t.Fatalf("compliant plan has violations: %v\n%s", v, res.Plan.Format(true))
	}
	// Structure checks mirroring Figure 1(b): Supply is aggregated before
	// leaving Asia, and Customer's acctbal never ships.
	txt := res.Plan.Format(true)
	if !strings.Contains(txt, "Ship[A -> E]") {
		t.Errorf("expected Supply aggregate shipped from Asia to Europe:\n%s", txt)
	}
	var shipsFromA *plan.Node
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship && n.FromLoc == "A" {
			shipsFromA = n.Children[0]
		}
		return true
	})
	if shipsFromA == nil {
		t.Fatalf("no shipment out of Asia:\n%s", txt)
	}
	aggFound := false
	shipsFromA.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.HashAgg {
			aggFound = true
		}
		return true
	})
	if !aggFound {
		t.Errorf("data leaving Asia must be aggregated:\n%s", txt)
	}
	// acctbal must not appear above any ship out of N.
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship && n.FromLoc == "N" {
			for _, c := range n.Cols {
				if strings.EqualFold(c.Name, "acctbal") {
					t.Errorf("acctbal shipped out of North America:\n%s", txt)
				}
			}
		}
		return true
	})
	// Final aggregation happens in Europe.
	if res.Plan.Loc != "E" {
		t.Errorf("result should be produced in Europe, got %s", res.Plan.Loc)
	}
	if res.ShipCost <= 0 {
		t.Error("geo-distributed plan must have positive shipping cost")
	}
}

func TestCarCoTraditionalPlanIsNonCompliant(t *testing.T) {
	opt := carcoOptimizer(t, false)
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatalf("traditional optimization failed: %v", err)
	}
	// Check with a compliant evaluator.
	copt := carcoOptimizer(t, true)
	violations := copt.Check(res.Plan)
	if len(violations) == 0 {
		t.Errorf("traditional plan should violate P_E or P_A:\n%s", res.Plan.Format(true))
	}
}

func TestCarCoRejectsIllegalQuery(t *testing.T) {
	opt := carcoOptimizer(t, true)
	// Raw acctbal joined with Orders cannot be shipped anywhere out of N,
	// and Orders cannot reach N raw (totprice is blocked for N), so no
	// compliant plan exists.
	_, err := opt.OptimizeSQL(`
		SELECT C.name, C.acctbal, O.totprice
		FROM Customer C, Orders O
		WHERE C.custkey = O.custkey`)
	if !errors.Is(err, ErrNoCompliantPlan) {
		t.Fatalf("expected ErrNoCompliantPlan, got %v", err)
	}
}

func TestCarCoAggPushdownAblation(t *testing.T) {
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	opt := New(sc, carcoPolicies(), net, Options{Compliant: true, DisableAggPushdown: true})
	// Without the aggregation-pushdown rule the optimizer cannot mask
	// Supply, so it must (incompletely but safely) reject the query —
	// exactly the incompleteness discussed in Section 6.4.
	_, err := opt.OptimizeSQL(carcoQuery)
	if !errors.Is(err, ErrNoCompliantPlan) {
		t.Fatalf("expected rejection without agg pushdown, got %v", err)
	}
}

func TestCarCoResultLocationPinning(t *testing.T) {
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	opt := New(sc, carcoPolicies(), net, Options{Compliant: true, ResultLocation: "E"})
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.Plan.Loc != "E" {
		t.Errorf("pinned result location: got %s", res.Plan.Loc)
	}
	// Delivering in Asia is legal too (orders aggregates may reach Asia
	// and Supply lives there): the optimizer finds a different compliant
	// plan rather than rejecting.
	opt2 := New(sc, carcoPolicies(), net, Options{Compliant: true, ResultLocation: "A"})
	res2, err := opt2.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatalf("result in Asia should be reachable: %v", err)
	}
	if res2.Plan.Loc != "A" {
		t.Errorf("pinned result location: got %s", res2.Plan.Loc)
	}
	if v := opt2.Check(res2.Plan); len(v) != 0 {
		t.Errorf("Asia-delivered plan violates policies: %v\n%s", v, res2.Plan.Format(true))
	}
	// North America, however, is impossible: Supply data (even
	// aggregated) may never reach it.
	opt3 := New(sc, carcoPolicies(), net, Options{Compliant: true, ResultLocation: "N"})
	if _, err := opt3.OptimizeSQL(carcoQuery); !errors.Is(err, ErrNoCompliantPlan) {
		t.Errorf("result in North America should be impossible, got %v", err)
	}
}

func TestCarCoQueryOverSingleSite(t *testing.T) {
	opt := carcoOptimizer(t, true)
	res, err := opt.OptimizeSQL("SELECT O.ordkey, O.totprice FROM Orders O WHERE O.totprice > 100")
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ships := 0
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship {
			ships++
		}
		return true
	})
	if ships != 0 {
		t.Errorf("single-site query needs no SHIP operators:\n%s", res.Plan)
	}
	if res.Plan.Loc != "E" {
		t.Errorf("plan should stay in Europe, got %s", res.Plan.Loc)
	}
	if res.ShipCost != 0 {
		t.Errorf("ship cost should be zero, got %v", res.ShipCost)
	}
}

func TestCarCoStatsPopulated(t *testing.T) {
	opt := carcoOptimizer(t, true)
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Groups == 0 || st.Exprs == 0 {
		t.Errorf("memo stats empty: %+v", st)
	}
	if st.Eta == 0 || st.ACalls == 0 {
		t.Errorf("policy stats empty: %+v", st)
	}
	if st.TotalTime <= 0 {
		t.Error("total time")
	}
	if res.PlanCost <= 0 {
		t.Error("plan cost")
	}
	// The annotated plan carries traits.
	if res.Annotated.ShipT.Empty() {
		t.Error("annotated root must have a shipping trait")
	}
}
