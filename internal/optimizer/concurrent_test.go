package optimizer

import (
	"sync"
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// TestConcurrentOptimizeSQL drives one shared optimizer from eight
// goroutines over all golden TPC-H queries (run under `make race`). The
// shared surface under test: the interned SiteSet universe, the sharded
// policy-evaluator cache with its per-Optimize EvalStats handles, and
// the whole-plan LRU cache. Every goroutine must observe the identical
// rendered plan for every query, with or without a plan-cache hit.
func TestConcurrentOptimizeSQL(t *testing.T) {
	cat := tpch.NewCatalog(0.01)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	opt := New(cat, pc, net, Options{Compliant: true, PlanCacheSize: 32})

	names := tpch.QueryNames()

	// Reference plans from a sequential pass on a private optimizer.
	ref := make(map[string]string, len(names))
	refOpt := New(cat, pc, net, Options{Compliant: true})
	for _, qn := range names {
		res, err := refOpt.OptimizeSQL(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("%s: %v", qn, err)
		}
		ref[qn] = res.Plan.Format(true)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Two rounds so later rounds exercise warm policy- and
			// plan-cache paths; staggered start index so goroutines
			// collide on different queries.
			for round := 0; round < 2; round++ {
				for i := range names {
					qn := names[(i+w)%len(names)]
					res, err := opt.OptimizeSQL(tpch.Queries[qn])
					if err != nil {
						t.Errorf("worker %d %s: %v", w, qn, err)
						return
					}
					if got := res.Plan.Format(true); got != ref[qn] {
						t.Errorf("worker %d %s: plan differs from sequential reference:\n%s", w, qn, got)
						return
					}
					// η may be 0 on a fully-warm policy cache (it counts
					// expressions considered on cache misses), but every
					// compliant optimization invokes 𝒜 at least once.
					if res.Stats.ACalls == 0 {
						t.Errorf("worker %d %s: per-optimize stats lost (η=%d, 𝒜=%d)",
							w, qn, res.Stats.Eta, res.Stats.ACalls)
						return
					}
				}
				// One worker invalidates mid-flight: epoch-keyed caches
				// must serve only same-epoch entries, never torn state.
				if w == 0 && round == 0 {
					opt.Evaluator.ResetCache()
				}
			}
		}(w)
	}
	wg.Wait()

	pcs := opt.PlanCacheStats()
	if pcs.Hits == 0 {
		t.Error("expected some plan-cache hits across 8 workers × 2 rounds")
	}
}
