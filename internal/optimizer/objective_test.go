package optimizer

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// TestResponseTimeObjectiveDiverges builds a placement where the two
// objectives disagree: a union of sources at L1 and L2 may execute at P
// or Q with transfer costs
//
//	at P: ship A = 90, ship B = 90   → total 180, response 90
//	at Q: ship A = 10, ship B = 150  → total 160, response 150
//
// Total-cost picks Q; response-time picks P.
func TestResponseTimeObjectiveDiverges(t *testing.T) {
	ta := schema.NewTable("A", "da", "L1", 1, schema.Column{Name: "x", Type: expr.TInt})
	tb := schema.NewTable("B", "db", "L2", 1, schema.Column{Name: "x", Type: expr.TInt})
	a := plan.NewScan(ta, "a", -1)
	a.Kind = plan.TableScan
	a.Card = 1
	a.Exec = plan.NewSiteSet("L1")
	b := plan.NewScan(tb, "b", -1)
	b.Kind = plan.TableScan
	b.Card = 1
	b.Exec = plan.NewSiteSet("L2")
	u := plan.NewUnion(a, b)
	u.Kind = plan.UnionAll
	u.Card = 2
	u.Exec = plan.NewSiteSet("P", "Q")
	u.ShipT = u.Exec

	net := network.NewCostModel(1e9, 0) // unknown edges prohibitive
	net.SetEdge("L1", "P", 90, 0)
	net.SetEdge("L2", "P", 90, 0)
	net.SetEdge("L1", "Q", 10, 0)
	net.SetEdge("L2", "Q", 150, 0)

	total, totalCost, err := SelectSites(u.Clone(), net, "")
	if err != nil {
		t.Fatal(err)
	}
	if total.Loc != "Q" || totalCost != 160 {
		t.Errorf("total-cost objective: loc=%s cost=%v (want Q, 160)", total.Loc, totalCost)
	}
	resp, respCost, err := SelectSitesObjective(u.Clone(), net, "", ObjectiveResponseTime)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Loc != "P" || respCost != 90 {
		t.Errorf("response-time objective: loc=%s cost=%v (want P, 90)", resp.Loc, respCost)
	}
}

// TestResponseTimeThroughOptimizer exercises the option end to end: the
// CarCo query optimizes under both objectives and both plans pass the
// compliance checker.
func TestResponseTimeThroughOptimizer(t *testing.T) {
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	for _, rt := range []bool{false, true} {
		opt := New(sc, carcoPolicies(), net, Options{Compliant: true, ResponseTimeObjective: rt})
		res, err := opt.OptimizeSQL(carcoQuery)
		if err != nil {
			t.Fatalf("rt=%v: %v", rt, err)
		}
		if v := opt.Check(res.Plan); len(v) != 0 {
			t.Errorf("rt=%v violations: %v", rt, v)
		}
		if res.ShipCost <= 0 {
			t.Errorf("rt=%v ship cost: %v", rt, res.ShipCost)
		}
	}
}
