package optimizer

import (
	"fmt"
	"math"

	"cgdqp/internal/network"
	"cgdqp/internal/plan"
)

// SelectSites is the site selector of phase 2 (Section 6.3, Algorithm 2):
// given an annotated plan whose nodes carry execution traits, it assigns
// each operator a location by memoized top-down dynamic programming over
// (node, location) pairs, pricing inter-site movement with the message
// cost model, and materializes SHIP operators on every crossing edge.
//
// resultLoc pins the location of the root operator (where the user wants
// the result); when empty, the cheapest legal root location wins. The
// input tree is mutated (callers clone extracted plans first).
func SelectSites(root *plan.Node, net *network.CostModel, resultLoc string) (*plan.Node, float64, error) {
	return SelectSitesObjective(root, net, resultLoc, ObjectiveTotalCost)
}

// Objective selects what the site selector minimizes.
type Objective int

const (
	// ObjectiveTotalCost minimizes the summed communication cost of all
	// transfers (the paper's default total-cost model).
	ObjectiveTotalCost Objective = iota
	// ObjectiveResponseTime minimizes the critical path: transfers into
	// an operator proceed in parallel, so an operator's communication
	// latency is the maximum over its inputs (the "query response time"
	// cost model of the Section 3.3 discussion).
	ObjectiveResponseTime
)

// SelectSitesObjective is SelectSites with an explicit objective.
func SelectSitesObjective(root *plan.Node, net *network.CostModel, resultLoc string, obj Objective) (*plan.Node, float64, error) {
	ss := &siteSelector{net: net, obj: obj, cost: map[ssKey]float64{}, pick: map[ssKey][]string{}}

	candidates := root.Exec.Slice()
	finalShip := false
	if resultLoc != "" {
		switch {
		case root.Exec.Contains(resultLoc):
			candidates = []string{resultLoc}
		case root.ShipT.Contains(resultLoc):
			// The root cannot execute at the result location, but its
			// output may legally be shipped there: place the root at the
			// cheapest legal site and append a final SHIP.
			finalShip = true
		default:
			return nil, 0, fmt.Errorf("optimizer: no compliant plan can deliver the result at %s (legal sites: %s)", resultLoc, root.ShipT)
		}
	}
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("optimizer: annotated plan has an empty execution trait at the root")
	}
	bestCost := math.Inf(1)
	bestLoc := ""
	for _, l := range candidates {
		c := ss.costOf(root, l)
		if finalShip {
			c += ss.shipCost(root, l, resultLoc)
		}
		if c < bestCost {
			bestCost = c
			bestLoc = l
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, 0, fmt.Errorf("optimizer: site selection found no feasible placement")
	}
	out := ss.assign(root, bestLoc)
	if finalShip && bestLoc != resultLoc {
		ship := plan.NewShip(out, bestLoc, resultLoc)
		ship.Exec = plan.NewSiteSet(resultLoc)
		ship.ShipT = out.ShipT
		out = ship
	}
	return out, bestCost, nil
}

type ssKey struct {
	n   *plan.Node
	loc string
}

type siteSelector struct {
	net  *network.CostModel
	obj  Objective
	cost map[ssKey]float64
	pick map[ssKey][]string // chosen child locations for (node, loc)
}

// costOf implements CostOf(n, l) of Algorithm 2.
func (ss *siteSelector) costOf(n *plan.Node, l string) float64 {
	key := ssKey{n, l}
	if c, ok := ss.cost[key]; ok {
		return c
	}
	var total float64
	picks := make([]string, len(n.Children))
	if len(n.Children) == 0 {
		// Base case: a leaf is free at its source location, impossible
		// elsewhere.
		if n.Exec.Contains(l) {
			total = 0
		} else {
			total = math.Inf(1)
		}
	} else {
		for i, child := range n.Children {
			bestChild := math.Inf(1)
			bestLoc := ""
			for _, cl := range child.Exec.Slice() {
				c := ss.shipCost(child, cl, l) + ss.costOf(child, cl)
				if c < bestChild {
					bestChild = c
					bestLoc = cl
				}
			}
			if ss.obj == ObjectiveResponseTime {
				// Inputs transfer in parallel: the operator waits for the
				// slowest one.
				total = math.Max(total, bestChild)
			} else {
				total += bestChild
			}
			picks[i] = bestLoc
		}
		if !n.Exec.Contains(l) {
			total = math.Inf(1)
		}
	}
	ss.cost[key] = total
	ss.pick[key] = picks
	return total
}

// shipCost prices moving a node's output between sites using the message
// cost model α + β·bytes with bytes = |rows| × row width, scaled by the
// calibrated estimate-to-wire-bytes ratio when one is installed.
func (ss *siteSelector) shipCost(n *plan.Node, from, to string) float64 {
	if from == to {
		return 0
	}
	return ss.net.EstShipCost(from, to, n.Card*n.RowWidth())
}

// assign walks the DP choices, sets Loc on every operator and inserts
// SHIP operators on crossing edges.
func (ss *siteSelector) assign(n *plan.Node, l string) *plan.Node {
	n.Loc = l
	picks := ss.pick[ssKey{n, l}]
	for i, child := range n.Children {
		cl := picks[i]
		sub := ss.assign(child, cl)
		if cl != l {
			ship := plan.NewShip(sub, cl, l)
			ship.Exec = plan.NewSiteSet(l)
			ship.ShipT = sub.ShipT
			n.Children[i] = ship
		} else {
			n.Children[i] = sub
		}
	}
	return n
}

// ShippingCost re-prices the SHIP operators of a located plan with a cost
// model (using estimated cardinalities); used to compare plan quality.
func ShippingCost(root *plan.Node, net *network.CostModel) float64 {
	total := 0.0
	root.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship {
			child := n.Children[0]
			total += net.EstShipCost(n.FromLoc, n.ToLoc, child.Card*child.RowWidth())
		}
		return true
	})
	return total
}
