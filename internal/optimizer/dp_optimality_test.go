package optimizer

import (
	"math"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// TestSiteSelectorOptimality brute-forces every feasible placement of a
// small annotated plan under a randomized (but deterministic) asymmetric
// network and checks Algorithm 2's DP finds the global minimum.
func TestSiteSelectorOptimality(t *testing.T) {
	locs := []string{"L1", "L2", "L3"}
	// Three-leaf plan: Agg(Join(Join(a, b), c)) with permissive traits.
	mk := func() *plan.Node {
		ta := schema.NewTable("A", "da", "L1", 100, schema.Column{Name: "k", Type: expr.TInt})
		tb := schema.NewTable("B", "db", "L2", 300, schema.Column{Name: "k", Type: expr.TInt})
		tc := schema.NewTable("C", "dc", "L3", 500, schema.Column{Name: "k", Type: expr.TInt})
		a := plan.NewScan(ta, "a", -1)
		a.Kind = plan.TableScan
		a.Card = 100
		a.Exec = plan.NewSiteSet("L1")
		b := plan.NewScan(tb, "b", -1)
		b.Kind = plan.TableScan
		b.Card = 300
		b.Exec = plan.NewSiteSet("L2")
		c := plan.NewScan(tc, "c", -1)
		c.Kind = plan.TableScan
		c.Card = 500
		c.Exec = plan.NewSiteSet("L3")
		j1 := plan.NewJoin(a, b, expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k")))
		j1.Kind = plan.HashJoin
		j1.Card = 200
		j1.Exec = plan.NewSiteSet(locs...)
		j2 := plan.NewJoin(j1, c, expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("c", "k")))
		j2.Kind = plan.HashJoin
		j2.Card = 150
		j2.Exec = plan.NewSiteSet(locs...)
		agg := plan.NewAggregate(j2, []*expr.Col{expr.NewCol("a", "k")}, nil)
		agg.Kind = plan.HashAgg
		agg.Card = 50
		agg.Exec = plan.NewSiteSet(locs...)
		agg.ShipT = agg.Exec
		return agg
	}

	// A deterministic pseudo-random asymmetric network.
	seed := uint64(12345)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 31)
	}
	for trial := 0; trial < 10; trial++ {
		net := network.NewCostModel(1e9, 1)
		for _, f := range locs {
			for _, to := range locs {
				if f != to {
					net.SetEdge(f, to, float64(1+next()%500), float64(next()%100)/1e3)
				}
			}
		}
		tree := mk()
		located, dpCost, err := SelectSites(tree, net, "")
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: the three inner operators (j1, j2, agg) each pick
		// any of the three locations; leaves are pinned. The plan cost is
		// the sum of edge transfers where child loc != parent loc, with
		// bytes = card × row width.
		ship := func(card float64, width float64, from, to string) float64 {
			if from == to {
				return 0
			}
			return net.ShipCost(from, to, card*width)
		}
		best := math.Inf(1)
		for _, lj1 := range locs {
			for _, lj2 := range locs {
				for _, lagg := range locs {
					cost := ship(100, 8, "L1", lj1) + ship(300, 8, "L2", lj1) +
						ship(200, 16, lj1, lj2) + ship(500, 8, "L3", lj2) +
						ship(150, 24, lj2, lagg)
					if cost < best {
						best = cost
					}
				}
			}
		}
		if diff := dpCost - best; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: DP cost %v != brute force %v\n%s", trial, dpCost, best, located.Format(true))
		}
	}
}
