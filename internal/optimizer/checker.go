package optimizer

import (
	"fmt"

	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
)

// Violation records one breach of Definition 1: an operator executing at
// Dest consumes (directly or transitively) the output of a local subquery
// whose policies do not allow shipping there.
type Violation struct {
	// Subtree is the root of the crossing local subquery.
	Subtree *plan.Node
	// Source is the location the subquery executes at.
	Source string
	// Dest is the offending operator location.
	Dest string
	// Allowed is 𝒜 for the subquery (empty when not describable).
	Allowed plan.SiteSet
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("operator at %s consumes data from %s whose policies allow only %s",
		v.Dest, v.Source, v.Allowed)
}

// CheckCompliance validates a located plan (with SHIP operators and Loc
// set on every node) against Definition 1. It returns the violations
// found; an empty slice means the plan is compliant.
//
// The check follows the U_o construction: every maximal location-uniform
// single-database subtree whose output crosses to a different location
// must allow (via 𝒜) the location of every operator above it. When such
// a subtree is not describable as a local query (e.g. it filters on
// aggregated values), the checker descends into its children — their
// outputs are what effectively crosses.
func CheckCompliance(root *plan.Node, ev *policy.Evaluator) []Violation {
	c := &checker{ev: ev}
	c.walk(root, nil)
	return c.violations
}

type checker struct {
	ev         *policy.Evaluator
	violations []Violation
	seen       map[violationKey]bool
}

// walk visits every node, carrying the locations of all ancestors. A
// SHIP operator's Loc is its destination, so a crossing edge is simply a
// parent/child location mismatch.
func (c *checker) walk(n *plan.Node, ancestorLocs []string) {
	locs := append(append([]string{}, ancestorLocs...), n.Loc)
	for _, child := range n.Children {
		if child.Loc != n.Loc {
			// The child subtree's output crosses into n; every ancestor
			// of n (transitively) consumes it.
			c.checkUnits(child, locs)
		}
		c.walk(child, locs)
	}
}

// checkUnits verifies the crossing subtree rooted at r against the given
// downstream locations, descending when the subtree is not uniform or
// not describable.
func (c *checker) checkUnits(r *plan.Node, downstream []string) {
	if r.Kind == plan.Ship {
		// Internal crossing: its own walk handles it; descend past.
		c.checkUnits(r.Children[0], downstream)
		return
	}
	if uniformLoc(r) == "" {
		// Not location-uniform: internal crossings are checked by walk;
		// the uniform units below cover the data reaching downstream.
		for _, child := range r.Children {
			c.checkUnits(child, downstream)
		}
		return
	}
	allowed, ok := c.ev.EvaluateSubtree(r)
	if !ok {
		if len(r.Children) == 0 {
			// A bare leaf that cannot be described: conservatively only
			// its own location is legal.
			allowed = plan.NewSiteSet(r.Loc)
		} else {
			for _, child := range r.Children {
				c.checkUnits(child, downstream)
			}
			return
		}
	}
	for _, dest := range dedupStrings(downstream) {
		if dest != r.Loc && !allowed.Contains(dest) {
			key := violationKey{r, dest}
			if c.seen == nil {
				c.seen = map[violationKey]bool{}
			}
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			c.violations = append(c.violations, Violation{
				Subtree: r,
				Source:  r.Loc,
				Dest:    dest,
				Allowed: allowed,
			})
		}
	}
}

type violationKey struct {
	n    *plan.Node
	dest string
}

// uniformLoc returns the location shared by every operator in the
// subtree, or "" when mixed (or when a SHIP is inside).
func uniformLoc(n *plan.Node) string {
	loc := n.Loc
	ok := true
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Ship || x.Loc != loc {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return ""
	}
	return loc
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
