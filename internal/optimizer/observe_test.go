package optimizer

import (
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/obs"
)

// TestOptimizerSpansAndGauges: one optimization emits the phase spans
// and populates the cache/policy-evaluator gauges.
func TestOptimizerSpansAndGauges(t *testing.T) {
	sc := carcoSchema()
	opt := New(sc, carcoPolicies(), network.FiveRegionWAN(sc.Locations()),
		Options{Compliant: true, PlanCacheSize: 8})
	o := &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	opt.SetObserver(o)

	if _, err := opt.OptimizeSQL(carcoQuery); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	var optSpan obs.SpanRec
	for _, s := range o.Tracer.Spans() {
		names[s.Name]++
		if s.Name == "optimize" {
			optSpan = s
		}
	}
	for _, want := range []string{"sql.parse_bind", "optimize.sql_fast_path", "optimize",
		"optimize.normalize", "optimize.explore", "optimize.implement", "optimize.site_select"} {
		if names[want] != 1 {
			t.Fatalf("want one %q span, got %d (all: %v)", want, names[want], names)
		}
	}
	if optSpan.Attr("cache") != "miss" || optSpan.Attr("outcome") != "ok" {
		t.Fatalf("optimize span tags wrong: %+v", optSpan.Attrs)
	}
	if o.Metrics.CounterValue("cgdqp_optimizations_total", "cache", "miss", "status", "ok") != 1 {
		t.Fatal("miss counter not bumped")
	}
	if o.Metrics.Histogram("cgdqp_optimize_seconds").Count() != 1 {
		t.Fatal("optimize latency not observed")
	}
	if o.Metrics.Gauge("cgdqp_plan_cache_len").Value() != 1 {
		t.Fatalf("plan cache len gauge = %v, want 1", o.Metrics.Gauge("cgdqp_plan_cache_len").Value())
	}
	if o.Metrics.Gauge("cgdqp_policy_eval_calls").Value() == 0 {
		t.Fatal("policy evaluator call gauge not populated")
	}

	// A repeat of the same SQL hits the fast path and reports a hit.
	o.Tracer.Reset()
	if _, err := opt.OptimizeSQL(carcoQuery); err != nil {
		t.Fatal(err)
	}
	hitTagged := false
	for _, s := range o.Tracer.Spans() {
		if s.Name == "optimize.sql_fast_path" && s.Attr("cache") == "hit" {
			hitTagged = true
		}
		if s.Name == "optimize.explore" {
			t.Fatal("cache hit should not re-explore")
		}
	}
	if !hitTagged {
		t.Fatalf("fast-path hit span missing: %+v", o.Tracer.Spans())
	}
	if o.Metrics.CounterValue("cgdqp_optimizations_total", "cache", "hit", "status", "ok") != 1 {
		t.Fatal("hit counter not bumped")
	}
	if o.Metrics.Gauge("cgdqp_plan_cache_hits").Value() != 1 {
		t.Fatal("plan cache hit gauge not updated")
	}
}

// TestOptimizerObserverOffIsFree: with no observer attached,
// optimization emits nothing and costs no extra allocations for hooks
// (smoke check — the hard <2% bound lives in the benchmark report).
func TestOptimizerObserverOffIsFree(t *testing.T) {
	opt := carcoOptimizer(t, true)
	if _, err := opt.OptimizeSQL(carcoQuery); err != nil {
		t.Fatal(err)
	}
	// No panic, no observer: nothing to assert beyond success; the
	// nil-receiver contract is covered in internal/obs.
}
