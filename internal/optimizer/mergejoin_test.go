package optimizer

import (
	"testing"

	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"

	"cgdqp/internal/cluster"
)

// mergeFixture: two same-site tables joined and ordered by the join key.
// When sorted is true the tables declare a physical k-order (dbgen-style
// PK order): sort-merge join then needs no sorting and beats hash join.
func mergeFixture(sorted bool) (*schema.Catalog, *policy.Catalog) {
	cat := schema.NewCatalog()
	l := schema.NewTable("big1", "db-1", "L1", 200000,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "v", Type: expr.TFloat})
	l.SetColStats("k", schema.ColStats{Distinct: 200000})
	r := schema.NewTable("big2", "db-1", "L1", 200000,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "w", Type: expr.TFloat})
	r.SetColStats("k", schema.ColStats{Distinct: 200000})
	if sorted {
		l.SortedBy = []string{"k"}
		r.SortedBy = []string{"k"}
	}
	cat.MustAddTable(l)
	cat.MustAddTable(r)
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship * from big1 to *", "p1", "db-1"),
		policy.MustParse("ship * from big2 to *", "p2", "db-1"),
	)
	return cat, pc
}

const orderedJoinQuery = `
	SELECT a.k, a.v, b.w FROM big1 a, big2 b
	WHERE a.k = b.k
	ORDER BY a.k`

func TestMergeJoinWithSortElision(t *testing.T) {
	cat, pc := mergeFixture(true)
	net := network.FiveRegionWAN(cat.Locations())
	opt := New(cat, pc, net, Options{Compliant: true})
	res, err := opt.OptimizeSQL(orderedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	var merges, sorts int
	res.Plan.Walk(func(n *plan.Node) bool {
		switch n.Kind {
		case plan.MergeJoin:
			merges++
		case plan.SortExec:
			sorts++
		}
		return true
	})
	if merges != 1 {
		t.Errorf("expected a merge join:\n%s", res.Plan.Format(true))
	}
	if sorts != 0 {
		t.Errorf("the ORDER BY should be elided (merge join provides it):\n%s", res.Plan.Format(true))
	}
	if v := opt.Check(res.Plan); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestMergeJoinNotChosenWithoutOrderBy(t *testing.T) {
	// Over unsorted tables, hash join is cheaper (merge would pay two
	// sorts).
	cat, pc := mergeFixture(false)
	net := network.FiveRegionWAN(cat.Locations())
	opt := New(cat, pc, net, Options{Compliant: true})
	res, err := opt.OptimizeSQL(orderedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	hash := false
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.HashJoin {
			hash = true
		}
		return true
	})
	if !hash {
		t.Errorf("hash join expected without ORDER BY:\n%s", res.Plan.Format(true))
	}
}

// TestMergeJoinExecutesCorrectly cross-checks merge-join results and
// output ordering against hash join.
func TestMergeJoinExecutesCorrectly(t *testing.T) {
	cat := schema.NewCatalog()
	l := schema.NewTable("t1", "db-1", "L1", 50,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "v", Type: expr.TInt})
	r := schema.NewTable("t2", "db-1", "L1", 60,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "w", Type: expr.TInt})
	cat.MustAddTable(l)
	cat.MustAddTable(r)
	cl := cluster.New(cat, network.UniformWAN(1, 1e-6))
	var lRows, rRows []expr.Row
	for i := 0; i < 50; i++ {
		lRows = append(lRows, expr.Row{expr.NewInt(int64(49 - i%25)), expr.NewInt(int64(i))}) // duplicates, unsorted
	}
	for i := 0; i < 60; i++ {
		rRows = append(rRows, expr.Row{expr.NewInt(int64(i % 30)), expr.NewInt(int64((i * 7) % 60))})
	}
	if err := cl.LoadFragment(l, 0, lRows); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(r, 0, rRows); err != nil {
		t.Fatal(err)
	}
	cond := expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k"))
	mk := func(kind plan.Kind) *plan.Node {
		j := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1), cond)
		j.Kind = kind
		return j
	}
	mRows, _, err := executor.Run(mk(plan.MergeJoin), cl)
	if err != nil {
		t.Fatal(err)
	}
	hRows, _, err := executor.Run(mk(plan.HashJoin), cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(mRows) != len(hRows) {
		t.Fatalf("cardinality: merge %d vs hash %d", len(mRows), len(hRows))
	}
	// Merge output is ordered by the left key.
	for i := 1; i < len(mRows); i++ {
		if mRows[i][0].Int() < mRows[i-1][0].Int() {
			t.Fatalf("merge output not ordered at %d", i)
		}
	}
	// Multisets agree (sum of a hashable projection).
	sum := func(rows []expr.Row) int64 {
		var s int64
		for _, r := range rows {
			s += r[0].Int()*1000003 + r[1].Int()*31 + r[3].Int()
		}
		return s
	}
	if sum(mRows) != sum(hRows) {
		t.Error("merge and hash join results differ")
	}
	// Residual predicates filter after the merge.
	withResidual := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1),
		expr.NewAnd(cond, expr.NewCmp(expr.GT, expr.NewCol("b", "w"), expr.NewCol("a", "v"))))
	withResidual.Kind = plan.MergeJoin
	resRows, _, err := executor.Run(withResidual, cl)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range resRows {
		if row[3].Int() <= row[1].Int() {
			t.Fatalf("residual not applied: %v", row)
		}
	}
	if len(resRows) == 0 || len(resRows) >= len(mRows) {
		t.Errorf("residual should filter some rows: %d of %d", len(resRows), len(mRows))
	}
}
