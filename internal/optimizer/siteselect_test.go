package optimizer

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// annotatedJoin builds a tiny annotated plan: Join(scanA@LA, scanB@LB)
// where the join may execute at the given locations.
func annotatedJoin(joinExec ...string) (*plan.Node, *plan.Node, *plan.Node) {
	ta := schema.NewTable("A", "da", "LA", 100, schema.Column{Name: "k", Type: expr.TInt})
	tb := schema.NewTable("B", "db", "LB", 1000, schema.Column{Name: "k", Type: expr.TInt})
	a := plan.NewScan(ta, "a", -1)
	a.Kind = plan.TableScan
	a.Card = 100
	a.Exec = plan.NewSiteSet("LA")
	b := plan.NewScan(tb, "b", -1)
	b.Kind = plan.TableScan
	b.Card = 1000
	b.Exec = plan.NewSiteSet("LB")
	j := plan.NewJoin(a, b, expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k")))
	j.Kind = plan.HashJoin
	j.Card = 1000
	j.Exec = plan.NewSiteSet(joinExec...)
	j.ShipT = j.Exec
	return j, a, b
}

func TestSelectSitesPrefersBigSide(t *testing.T) {
	// Symmetric network: the join should run where the big table lives.
	j, a, b := annotatedJoin("LA", "LB")
	net := network.UniformWAN(10, 0.001)
	located, cost, err := SelectSites(j, net, "")
	if err != nil {
		t.Fatal(err)
	}
	if located.Loc != "LB" {
		t.Errorf("join placed at %s, want LB (big side)", located.Loc)
	}
	_ = a
	_ = b
	// Exactly one SHIP (A -> LB).
	ships := 0
	located.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship {
			ships++
			if n.FromLoc != "LA" || n.ToLoc != "LB" {
				t.Errorf("ship %s->%s", n.FromLoc, n.ToLoc)
			}
		}
		return true
	})
	if ships != 1 {
		t.Errorf("ships: %d", ships)
	}
	// Cost equals α + β × bytes of the A side.
	wantBytes := 100.0 * 8 // one int column
	want := 10 + 0.001*wantBytes
	if diff := cost - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cost = %v, want %v", cost, want)
	}
}

func TestSelectSitesRestrictedExec(t *testing.T) {
	// The join may only run at LA: both placements ship B.
	j, _, _ := annotatedJoin("LA")
	net := network.UniformWAN(10, 0.001)
	located, _, err := SelectSites(j, net, "")
	if err != nil {
		t.Fatal(err)
	}
	if located.Loc != "LA" {
		t.Errorf("placed at %s", located.Loc)
	}
}

func TestSelectSitesResultLocation(t *testing.T) {
	j, _, _ := annotatedJoin("LA", "LB")
	net := network.UniformWAN(10, 0.001)
	located, _, err := SelectSites(j, net, "LA")
	if err != nil {
		t.Fatal(err)
	}
	if located.Loc != "LA" {
		t.Errorf("pinned placement: %s", located.Loc)
	}
	// A location in the shipping trait but not the execution trait gets a
	// final SHIP.
	j2, _, _ := annotatedJoin("LB")
	j2.ShipT = plan.NewSiteSet("LB", "LC")
	located, _, err = SelectSites(j2, net, "LC")
	if err != nil {
		t.Fatal(err)
	}
	if located.Kind != plan.Ship || located.ToLoc != "LC" {
		t.Errorf("expected final ship to LC:\n%s", located.Format(true))
	}
	// A completely unreachable location fails.
	j3, _, _ := annotatedJoin("LB")
	j3.ShipT = plan.NewSiteSet("LB")
	if _, _, err := SelectSites(j3, net, "LC"); err == nil {
		t.Error("unreachable result location must fail")
	}
}

func TestSelectSitesAsymmetricNetwork(t *testing.T) {
	// Make shipping B extremely cheap and shipping A extremely expensive:
	// the DP must move B despite its size.
	j, _, _ := annotatedJoin("LA", "LB")
	net := network.NewCostModel(10, 0.001)
	net.SetEdge("LA", "LB", 1e6, 1)  // A -> LB prohibitive
	net.SetEdge("LB", "LA", 1, 1e-9) // B -> LA nearly free
	located, _, err := SelectSites(j, net, "")
	if err != nil {
		t.Fatal(err)
	}
	if located.Loc != "LA" {
		t.Errorf("asymmetric placement: %s", located.Loc)
	}
}

func TestShippingCostAccounting(t *testing.T) {
	j, _, _ := annotatedJoin("LA", "LB")
	net := network.UniformWAN(10, 0.001)
	located, cost, err := SelectSites(j, net, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := ShippingCost(located, net); got != cost {
		t.Errorf("ShippingCost %v != DP cost %v", got, cost)
	}
}
