package optimizer

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cgdqp/internal/plan"
)

// planCacheKey identifies one optimization outcome: the normalized
// logical plan (its digest covers operators, predicates, projections and
// fragment bindings), the policy-catalog epoch (a policy change bumps the
// evaluator epoch, so stale plans can never be replayed), the feedback
// epoch (movement means observed actuals or a recalibrated byte scale
// could price a different plan), and the optimizer options that shape
// the output.
type planCacheKey struct {
	planDigest string
	epoch      uint64
	fbEpoch    uint64
	optsFP     string
}

// planCacheEntry records everything Optimize would recompute. Trees are
// stored privately and deep-cloned on every hit; phase timings are not
// recorded (a hit costs none of them).
type planCacheEntry struct {
	located   *plan.Node
	annotated *plan.Node
	planCost  float64
	shipCost  float64
	groups    int
	exprs     int
	eta       int64
	aCalls    int64
}

// PlanCacheStats is a snapshot of plan-cache effectiveness counters.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
}

// planCache is a mutex-guarded LRU over optimization results. One cache
// belongs to one Optimizer, which is in turn bound to fixed schema and
// policy catalogs; policy changes are versioned by the evaluator epoch
// inside the key, and schema changes must drop the optimizer (as
// cgdqp.System does).
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[planCacheKey]*list.Element
	lru     *list.List // front = most recent; values are *planCacheItem

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type planCacheItem struct {
	key   planCacheKey
	entry *planCacheEntry
}

func newPlanCache(max int) *planCache {
	return &planCache{
		max:     max,
		entries: map[planCacheKey]*list.Element{},
		lru:     list.New(),
	}
}

// get returns a deep-cloned copy of the cached entry's trees so callers
// may freely mutate (the executor rewrites locations in place).
func (c *planCache) get(key planCacheKey) (*planCacheEntry, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*planCacheItem).entry
	out := *e
	c.mu.Unlock()
	c.hits.Add(1)
	out.located = e.located.Clone()
	out.annotated = e.annotated.Clone()
	return &out, true
}

// put stores private clones of the trees under the key.
func (c *planCache) put(key planCacheKey, e *planCacheEntry) {
	stored := *e
	stored.located = e.located.Clone()
	stored.annotated = e.annotated.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planCacheItem).entry = &stored
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planCacheItem{key: key, entry: &stored})
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*planCacheItem).key)
		c.evictions.Add(1)
	}
}

// sqlDigestCache memoizes sql text → normalized-plan digest so repeated
// OptimizeSQL calls can consult the plan cache without re-parsing,
// re-binding and re-normalizing. Valid because an Optimizer is bound to
// a fixed schema catalog: the same SQL always binds to the same logical
// plan. Policy changes are handled downstream (the digest is only a key
// component; the epoch still gates the plan-cache entry). The map is
// cleared wholesale when full — repeated workloads refill it in one
// pass, and ad-hoc floods cannot grow it without bound.
type sqlDigestCache struct {
	mu  sync.RWMutex
	max int
	m   map[string]string
}

func newSQLDigestCache(max int) *sqlDigestCache {
	return &sqlDigestCache{max: max, m: map[string]string{}}
}

func (c *sqlDigestCache) get(sql string) (string, bool) {
	c.mu.RLock()
	d, ok := c.m[sql]
	c.mu.RUnlock()
	return d, ok
}

func (c *sqlDigestCache) put(sql, digest string) {
	c.mu.Lock()
	if len(c.m) >= c.max {
		c.m = map[string]string{}
	}
	c.m[sql] = digest
	c.mu.Unlock()
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       n,
	}
}
