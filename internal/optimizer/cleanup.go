package optimizer

import (
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
)

// mergeProjections collapses adjacent ProjectExec pairs by composing the
// upper projection's expressions over the lower's (classic projection
// merging). Stacked projections accumulate from binding, column pruning
// and schema canonicalization; composing them shrinks plans and saves
// one row materialization per level.
//
// Compliance stays sound: the merged operator reads the lower
// projection's input directly, so its execution trait is the lower one
// (AR2 over the same inputs), and its shipping trait is recomputed via
// AR3 ∪ AR4 on the merged subtree.
func (o *Optimizer) mergeProjections(n *plan.Node, st *policy.EvalStats) *plan.Node {
	for i, c := range n.Children {
		n.Children[i] = o.mergeProjections(c, st)
	}
	if n.Kind != plan.ProjectExec || len(n.Children) != 1 {
		return n
	}
	lower := n.Children[0]
	if lower.Kind != plan.ProjectExec {
		return n
	}
	composed := make([]plan.NamedExpr, len(n.Projs))
	ok := true
	for idx, p := range n.Projs {
		e := expr.Transform(p.E, func(x expr.Expr) expr.Expr {
			col, isCol := x.(*expr.Col)
			if !isCol || !ok {
				return x
			}
			j := lower.ColIndex(col)
			if j < 0 || j >= len(lower.Projs) {
				ok = false
				return x
			}
			return expr.Clone(lower.Projs[j].E)
		})
		composed[idx] = plan.NamedExpr{E: e, Name: p.Name, Type: p.Type}
	}
	if !ok {
		return n
	}
	merged := *n
	merged.Children = []*plan.Node{lower.Children[0]}
	merged.Projs = composed
	merged.Exec = lower.Exec
	if o.Opts.Compliant {
		ship := lower.Exec
		if s, found := o.Evaluator.EvaluateSubtreeWith(&merged, st); found {
			ship = ship.Union(s)
		}
		merged.ShipT = ship
	}
	// The merge may expose another adjacent pair.
	return o.mergeProjections(&merged, st)
}
