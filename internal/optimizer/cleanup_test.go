package optimizer

import (
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/plan"
)

// TestProjectionMerging: compliant plans must not contain adjacent
// projections, and merged plans stay valid and compliant.
func TestProjectionMerging(t *testing.T) {
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	opt := New(sc, carcoPolicies(), net, Options{Compliant: true})
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatal(err)
	}
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.ProjectExec && len(n.Children) == 1 && n.Children[0].Kind == plan.ProjectExec {
			t.Errorf("adjacent projections survive:\n%s", res.Plan.Format(true))
		}
		return true
	})
	if err := ValidatePlan(res.Plan); err != nil {
		t.Fatal(err)
	}
	if v := opt.Check(res.Plan); len(v) != 0 {
		t.Errorf("violations after merging: %v", v)
	}
}
