package optimizer

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// TestProjectionMerging: compliant plans must not contain adjacent
// projections, and merged plans stay valid and compliant.
func TestProjectionMerging(t *testing.T) {
	sc := carcoSchema()
	net := network.FiveRegionWAN(sc.Locations())
	opt := New(sc, carcoPolicies(), net, Options{Compliant: true})
	res, err := opt.OptimizeSQL(carcoQuery)
	if err != nil {
		t.Fatal(err)
	}
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.ProjectExec && len(n.Children) == 1 && n.Children[0].Kind == plan.ProjectExec {
			t.Errorf("adjacent projections survive:\n%s", res.Plan.Format(true))
		}
		return true
	})
	if err := ValidatePlan(res.Plan); err != nil {
		t.Fatal(err)
	}
	if v := opt.Check(res.Plan); len(v) != 0 {
		t.Errorf("violations after merging: %v", v)
	}
}

// --- mergeProjections unit tests -----------------------------------------

func projScanFixture() *plan.Node {
	t := schema.NewTable("t", "db-1", "L1", 100,
		schema.Column{Name: "a", Type: expr.TInt},
		schema.Column{Name: "b", Type: expr.TInt},
		schema.Column{Name: "c", Type: expr.TInt})
	scan := plan.NewScan(t, "t", -1)
	scan.Kind = plan.TableScan
	scan.Exec = plan.NewSiteSet("L1")
	return scan
}

func projExec(child *plan.Node, projs []plan.NamedExpr) *plan.Node {
	n := plan.NewProject(child, projs)
	n.Kind = plan.ProjectExec
	n.Exec = child.Exec
	return n
}

// TestMergeProjectionsComposes checks the classic case: an upper
// projection over a lower projection composes into one ProjectExec whose
// expressions are the upper ones rewritten over the lower's.
func TestMergeProjectionsComposes(t *testing.T) {
	scan := projScanFixture()
	lower := projExec(scan, []plan.NamedExpr{
		{E: expr.NewArith(expr.Add, expr.NewCol("t", "a"), expr.NewCol("t", "b")), Name: "s"},
		{E: expr.NewCol("t", "a"), Name: "a"},
	})
	upper := projExec(lower, []plan.NamedExpr{
		{E: expr.NewArith(expr.Mul, expr.NewCol("", "s"), expr.NewConst(expr.NewInt(2))), Name: "d"},
	})

	o := &Optimizer{Opts: Options{Compliant: false}}
	var st policy.EvalStats
	got := o.mergeProjections(upper, &st)

	if got.Kind != plan.ProjectExec {
		t.Fatalf("merged kind = %v, want ProjectExec", got.Kind)
	}
	if len(got.Children) != 1 || got.Children[0] != scan {
		t.Fatalf("merged projection must read the scan directly, got child %v", got.Children[0].Kind)
	}
	if len(got.Projs) != 1 || got.Projs[0].Name != "d" {
		t.Fatalf("merged projs = %v", got.Projs)
	}
	want := expr.NewArith(expr.Mul,
		expr.NewArith(expr.Add, expr.NewCol("t", "a"), expr.NewCol("t", "b")),
		expr.NewConst(expr.NewInt(2))).String()
	if s := got.Projs[0].E.String(); s != want {
		t.Fatalf("composed expression = %s, want %s", s, want)
	}
}

// TestMergeProjectionsStack checks that a triple stack collapses to a
// single projection (the merge re-examines its own output).
func TestMergeProjectionsStack(t *testing.T) {
	scan := projScanFixture()
	p1 := projExec(scan, []plan.NamedExpr{{E: expr.NewCol("t", "a"), Name: "x"}})
	p2 := projExec(p1, []plan.NamedExpr{{E: expr.NewCol("", "x"), Name: "y"}})
	p3 := projExec(p2, []plan.NamedExpr{{E: expr.NewCol("", "y"), Name: "z"}})

	o := &Optimizer{Opts: Options{Compliant: false}}
	var st policy.EvalStats
	got := o.mergeProjections(p3, &st)
	if got.Children[0] != scan {
		t.Fatalf("triple stack did not collapse: child is %v", got.Children[0].Kind)
	}
	if got.Projs[0].E.String() != "t.a" || got.Projs[0].Name != "z" {
		t.Fatalf("collapsed projection = %s AS %s", got.Projs[0].E, got.Projs[0].Name)
	}
}

// TestMergeProjectionsBlockedByFilter checks that non-adjacent
// projections (an intervening operator) are left alone.
func TestMergeProjectionsBlockedByFilter(t *testing.T) {
	scan := projScanFixture()
	lower := projExec(scan, []plan.NamedExpr{{E: expr.NewCol("t", "a"), Name: "x"}})
	fil := plan.NewFilter(lower, expr.NewCmp(expr.GT, expr.NewCol("", "x"), expr.NewConst(expr.NewInt(1))))
	fil.Kind = plan.FilterExec
	fil.Exec = lower.Exec
	upper := projExec(fil, []plan.NamedExpr{{E: expr.NewCol("", "x"), Name: "y"}})

	o := &Optimizer{Opts: Options{Compliant: false}}
	var st policy.EvalStats
	got := o.mergeProjections(upper, &st)
	if got.Children[0].Kind != plan.FilterExec {
		t.Fatalf("merge must not cross a filter; child = %v", got.Children[0].Kind)
	}
	if got.Children[0].Children[0].Children[0] != scan {
		t.Fatal("subtree below the filter was restructured")
	}
}

// TestMergeProjectionsUnresolvedColumn checks the bail-out: when an upper
// expression references a column the lower projection does not produce,
// the pair is left unmerged rather than mis-rewritten.
func TestMergeProjectionsUnresolvedColumn(t *testing.T) {
	scan := projScanFixture()
	lower := projExec(scan, []plan.NamedExpr{{E: expr.NewCol("t", "a"), Name: "x"}})
	upper := projExec(lower, []plan.NamedExpr{{E: expr.NewCol("", "zz"), Name: "y"}})

	o := &Optimizer{Opts: Options{Compliant: false}}
	var st policy.EvalStats
	got := o.mergeProjections(upper, &st)
	if got.Children[0] != lower {
		t.Fatalf("merge with unresolved column must be a no-op; child = %v", got.Children[0].Kind)
	}
}

// TestMergeProjectionsCompliantTraits checks AR2/AR3∪AR4 on the merged
// operator: the execution trait is inherited from the lower projection
// and the shipping trait is re-derived from the policy evaluator over
// the merged subtree.
func TestMergeProjectionsCompliantTraits(t *testing.T) {
	scan := projScanFixture()
	lower := projExec(scan, []plan.NamedExpr{
		{E: expr.NewCol("t", "a"), Name: "a"},
		{E: expr.NewCol("t", "b"), Name: "b"},
	})
	upper := projExec(lower, []plan.NamedExpr{{E: expr.NewCol("", "a"), Name: "a"}})

	pc := policy.NewCatalog()
	pc.AddAll(policy.MustParse("ship a from t to L1, L2", "p1", "db-1"))
	ev := policy.NewEvaluator(pc, []string{"L1", "L2", "L3"})
	o := &Optimizer{Opts: Options{Compliant: true}, Evaluator: ev}
	var st policy.EvalStats
	got := o.mergeProjections(upper, &st)

	if got.Children[0] != scan {
		t.Fatalf("projections did not merge; child = %v", got.Children[0].Kind)
	}
	if !got.Exec.Equal(lower.Exec) {
		t.Fatalf("merged Exec = %s, want lower's %s", got.Exec, lower.Exec)
	}
	for _, loc := range []string{"L1", "L2"} {
		if !got.ShipT.Contains(loc) {
			t.Errorf("merged ShipT %s must contain %s (granted by p1 ∪ AR3)", got.ShipT, loc)
		}
	}
	if got.ShipT.Contains("L3") {
		t.Errorf("merged ShipT %s must not contain ungranted L3", got.ShipT)
	}
	if st.Calls == 0 {
		t.Error("trait re-derivation must be attributed to the EvalStats handle")
	}
}
