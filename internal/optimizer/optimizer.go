package optimizer

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/memo"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/rules"
	"cgdqp/internal/schema"
	"cgdqp/internal/sqlparse"
)

// ErrNoCompliantPlan is returned when the optimizer cannot find any
// compliant execution plan for a query: the query is rejected, as in
// Figure 2's "legal?" gate.
var ErrNoCompliantPlan = errors.New("optimizer: query has no compliant execution plan under the current dataflow policies")

// DefaultPlanCacheSize is the plan-cache capacity production embedders
// (cgdqp.System, the CLI shell) use unless configured otherwise.
const DefaultPlanCacheSize = 256

// Options configure an optimizer instance.
type Options struct {
	// Compliant selects the compliance-based optimizer; false gives the
	// traditional cost-based baseline (Section 7.1's comparison subject):
	// Calcite-style phase 1 without traits, then the same site selector
	// with every location considered legal.
	Compliant bool
	// ImplicationMode selects the precision of the P_q ⇒ P_e test.
	ImplicationMode expr.ImplicationMode
	// MaxAlts caps per-group Pareto alternatives (default 12).
	MaxAlts int
	// MaxExprs caps memo exploration (default 200000).
	MaxExprs int
	// DisableAggPushdown removes the aggregation-pushdown rule (the
	// ablation of Section 6.4's completeness discussion).
	DisableAggPushdown bool
	// DisableJoinReorder removes join commutativity/associativity.
	DisableJoinReorder bool
	// GreedySiteSelection replaces Algorithm 2 with a greedy
	// cheapest-edge placement (ablation).
	GreedySiteSelection bool
	// ResponseTimeObjective makes the site selector minimize the
	// critical transfer path instead of total communication cost (the
	// Section 3.3 "query response time" cost model).
	ResponseTimeObjective bool
	// ResultLocation pins where the query result must be delivered
	// ("" = wherever is cheapest).
	ResultLocation string
	// NoPolicyCache disables the policy evaluator's memoization (the
	// paper's evaluator re-ran per operator; see Figure 6(c–f)).
	NoPolicyCache bool
	// PlanCacheSize enables a whole-plan LRU cache holding that many
	// optimized plans, keyed by (normalized-plan digest, policy epoch,
	// options). 0 disables it — the default, so the paper's
	// optimization-time experiments measure real optimizer work.
	PlanCacheSize int
	// PoolBytes is the configured buffer-pool budget fed to the cost
	// model's index access-path pricing (0 = the model's default). It
	// reflects the *configured* budget, never which storage backend
	// runs, so plan choice stays backend-independent.
	PoolBytes int64
}

// fingerprint renders every option that shapes the optimizer's output
// (PlanCacheSize only changes caching, not plans) for plan-cache keys.
func (o Options) fingerprint() string {
	return fmt.Sprintf("c=%t;im=%d;ma=%d;me=%d;ap=%t;jr=%t;gs=%t;rt=%t;rl=%s;npc=%t;pb=%d",
		o.Compliant, o.ImplicationMode, o.MaxAlts, o.MaxExprs,
		o.DisableAggPushdown, o.DisableJoinReorder,
		o.GreedySiteSelection, o.ResponseTimeObjective,
		o.ResultLocation, o.NoPolicyCache, o.PoolBytes)
}

// Optimizer turns bound logical plans into located, compliant QEPs.
type Optimizer struct {
	Schema   *schema.Catalog
	Policies *policy.Catalog
	Net      *network.CostModel
	Opts     Options

	// Evaluator is shared across optimizations so that the policy cache
	// persists; per-Optimize η/call counts are attributed through a
	// policy.EvalStats handle, so concurrent optimizations do not race.
	Evaluator *policy.Evaluator

	// planCache (optional) memoizes whole optimization results; see
	// Options.PlanCacheSize. sqlDigests lets OptimizeSQL reach it
	// without re-parsing known query text.
	planCache  *planCache
	sqlDigests *sqlDigestCache
	optsFP     string

	// obsv receives per-phase optimization spans and optimizer metrics
	// (latency histogram, plan-cache and policy-cache gauges). nil
	// disables observation. Set it before sharing the optimizer.
	obsv *obs.Observer

	// fb supplies observed-cardinality hints and the feedback epoch
	// (nil = feedback off; estimates come from statistics alone). Set it
	// before sharing the optimizer.
	fb FeedbackSource
	// costEpoch versions cost-model state changes that arrive outside a
	// feedback source (e.g. auto-applied calibration without a store);
	// it folds into the plan-cache key alongside the feedback epoch.
	costEpoch atomic.Uint64
}

// FeedbackSource supplies the optimizer's consumption of the feedback
// telemetry store: observed-cardinality overrides for canonical subplan
// digests, and an epoch whose movement means re-optimization could
// produce a different plan (a hint activated/drifted, or the calibrated
// byte scale moved).
type FeedbackSource interface {
	cost.CardHints
	Epoch() uint64
}

// SetObserver installs the observability sinks optimizations report
// into (nil disables). Like the catalogs, configure before concurrent
// use starts.
func (o *Optimizer) SetObserver(obsv *obs.Observer) { o.obsv = obsv }

// SetFeedback installs the feedback source consulted during costing
// (nil disables). Like the catalogs, configure before concurrent use
// starts.
func (o *Optimizer) SetFeedback(fb FeedbackSource) { o.fb = fb }

// InvalidatePlans bumps the cost epoch, fencing every cached plan off
// so the next optimization re-prices against current cost-model state.
// Used by continuous calibration when no feedback store carries the
// epoch.
func (o *Optimizer) InvalidatePlans() { o.costEpoch.Add(1) }

// feedbackEpoch is the fbEpoch plan-cache key component: the feedback
// source's epoch (0 when feedback is off) folded with the local cost
// epoch. Both only ever grow, so the sum moves whenever either does.
func (o *Optimizer) feedbackEpoch() uint64 {
	e := o.costEpoch.Load()
	if o.fb != nil {
		e += o.fb.Epoch()
	}
	return e
}

// New builds an optimizer over the given catalogs and network model.
func New(sc *schema.Catalog, pc *policy.Catalog, net *network.CostModel, opts Options) *Optimizer {
	// Pre-intern the location universe so SiteSet construction during
	// optimization is pure bit-twiddling on a stable read-only snapshot.
	plan.Universe().Intern(sc.Locations()...)
	ev := policy.NewEvaluator(pc, sc.Locations())
	ev.Mode = opts.ImplicationMode
	ev.NoCache = opts.NoPolicyCache
	o := &Optimizer{Schema: sc, Policies: pc, Net: net, Opts: opts, Evaluator: ev, optsFP: opts.fingerprint()}
	if opts.PlanCacheSize > 0 {
		o.planCache = newPlanCache(opts.PlanCacheSize)
		o.sqlDigests = newSQLDigestCache(4 * opts.PlanCacheSize)
	}
	return o
}

// PlanCacheStats reports plan-cache effectiveness (zero value when the
// cache is disabled).
func (o *Optimizer) PlanCacheStats() PlanCacheStats {
	if o.planCache == nil {
		return PlanCacheStats{}
	}
	return o.planCache.stats()
}

// Stats reports what one optimization did.
type Stats struct {
	NormalizeTime time.Duration
	ExploreTime   time.Duration
	ImplementTime time.Duration
	SiteTime      time.Duration
	TotalTime     time.Duration

	Groups int
	Exprs  int
	Eta    int64 // policy expressions considered (Fig 7's η)
	ACalls int64 // policy evaluator invocations
	AHits  int64 // policy evaluator cache hits

	// PlanCacheHit marks a result served from the whole-plan cache; the
	// counts above then describe the original (cached) optimization.
	PlanCacheHit bool
}

// Result is the outcome of one optimization.
type Result struct {
	// Plan is the final located QEP with SHIP operators.
	Plan *plan.Node
	// Annotated is the phase-1 output (before site selection), with
	// execution and shipping traits on every operator.
	Annotated *plan.Node
	// PlanCost is the phase-1 (single-site) cost of the chosen plan.
	PlanCost float64
	// ShipCost is the phase-2 estimated communication cost.
	ShipCost float64
	Stats    Stats
}

// cachedResult turns a plan-cache entry into a Result.
func cachedResult(e *planCacheEntry, normTime time.Duration, start time.Time) *Result {
	return &Result{
		Plan:      e.located,
		Annotated: e.annotated,
		PlanCost:  e.planCost,
		ShipCost:  e.shipCost,
		Stats: Stats{
			NormalizeTime: normTime,
			TotalTime:     time.Since(start),
			Groups:        e.groups,
			Exprs:         e.exprs,
			Eta:           e.eta,
			ACalls:        e.aCalls,
			PlanCacheHit:  true,
		},
	}
}

// Optimize runs the two-phase compliance-based optimization on a bound
// logical plan.
func (o *Optimizer) Optimize(logical *plan.Node) (*Result, error) {
	res, _, err := o.optimize(logical)
	return res, err
}

// optimize additionally returns the normalized-plan digest (when the
// plan cache is on) so OptimizeSQL can index its query-text shortcut.
func (o *Optimizer) optimize(logical *plan.Node) (*Result, string, error) {
	start := time.Now()
	var evStats policy.EvalStats
	osp := o.obsv.StartSpan("optimize")

	t0 := time.Now()
	nsp := o.obsv.StartSpan("optimize.normalize")
	norm := Normalize(logical.Clone())
	nsp.End()
	normTime := time.Since(t0)

	var cacheKey planCacheKey
	if o.planCache != nil {
		cacheKey = planCacheKey{
			planDigest: norm.Digest(),
			epoch:      o.Evaluator.Epoch(),
			fbEpoch:    o.feedbackEpoch(),
			optsFP:     o.optsFP,
		}
		if e, ok := o.planCache.get(cacheKey); ok {
			o.finishOptimize(osp, start, "hit", nil)
			return cachedResult(e, normTime, start), cacheKey.planDigest, nil
		}
	}

	// Phase 1: plan annotator.
	t1 := time.Now()
	esp := o.obsv.StartSpan("optimize.explore")
	est := cost.NewEstimator(norm)
	if o.Opts.PoolBytes > 0 {
		est.SetPoolBytes(o.Opts.PoolBytes)
	}
	if o.fb != nil {
		est.SetHints(o.fb)
	}
	m := memo.New(est)
	if o.Opts.MaxExprs > 0 {
		m.MaxExprs = o.Opts.MaxExprs
	}
	root := m.InsertTree(norm)
	m.Explore(o.ruleSet())
	esp.End()
	exploreTime := time.Since(t1)

	t2 := time.Now()
	isp := o.obsv.StartSpan("optimize.implement")
	// Track sort orders as a Pareto dimension only when some ORDER BY
	// could actually consume one (all-ascending plain column keys — the
	// only orderings the memo models); otherwise tracking would widen
	// the alternative fronts for nothing.
	trackOrder := false
	norm.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Sort && memo.SortKeysTrackable(n.SortKeys) {
			trackOrder = true
			return false
		}
		return true
	})
	cfg := &memo.ImplConfig{
		Est:          est,
		Compliant:    o.Opts.Compliant,
		Evaluator:    o.Evaluator,
		AllLocations: o.Schema.Locations(),
		MaxAlts:      o.Opts.MaxAlts,
		TrackOrder:   trackOrder,
		Stats:        &evStats,
	}
	m.Implement(root, cfg)
	best := memo.Best(root, o.Opts.Compliant, o.Opts.ResultLocation)
	isp.End()
	implementTime := time.Since(t2)
	if best == nil {
		o.finishOptimize(osp, start, "miss", ErrNoCompliantPlan)
		return nil, "", ErrNoCompliantPlan
	}
	annotated := best.Tree

	// Phase 2: site selector over a private copy of the chosen tree
	// (memo alternatives share subtrees). Adjacent projections are
	// merged first.
	t3 := time.Now()
	ssp := o.obsv.StartSpan("optimize.site_select")
	located := o.mergeProjections(annotated.Clone(), &evStats)
	var shipCost float64
	var err error
	switch {
	case o.Opts.GreedySiteSelection:
		located, shipCost, err = greedySelectSites(located, o.Net, o.Opts.ResultLocation)
	case o.Opts.ResponseTimeObjective:
		located, shipCost, err = SelectSitesObjective(located, o.Net, o.Opts.ResultLocation, ObjectiveResponseTime)
	default:
		located, shipCost, err = SelectSites(located, o.Net, o.Opts.ResultLocation)
	}
	ssp.End()
	siteTime := time.Since(t3)
	if err != nil {
		if o.Opts.Compliant {
			err = fmt.Errorf("%w: %v", ErrNoCompliantPlan, err)
		}
		o.finishOptimize(osp, start, "miss", err)
		return nil, "", err
	}

	if o.planCache != nil {
		o.planCache.put(cacheKey, &planCacheEntry{
			located:   located,
			annotated: annotated,
			planCost:  best.Cost,
			shipCost:  shipCost,
			groups:    len(m.Groups),
			exprs:     m.ExprCount(),
			eta:       evStats.Eta,
			aCalls:    evStats.Calls,
		})
	}

	o.finishOptimize(osp, start, "miss", nil)
	return &Result{
		Plan:      located,
		Annotated: annotated,
		PlanCost:  best.Cost,
		ShipCost:  shipCost,
		Stats: Stats{
			NormalizeTime: normTime,
			ExploreTime:   exploreTime,
			ImplementTime: implementTime,
			SiteTime:      siteTime,
			TotalTime:     time.Since(start),
			Groups:        len(m.Groups),
			Exprs:         m.ExprCount(),
			Eta:           evStats.Eta,
			ACalls:        evStats.Calls,
			AHits:         evStats.Hits,
		},
	}, cacheKey.planDigest, nil
}

// finishOptimize closes the optimization span and refreshes the
// optimizer metrics: the latency histogram, the outcome counter, and
// the plan-cache / policy-evaluator gauges (cumulative values sampled
// at each optimization, so exports always reflect the latest state).
func (o *Optimizer) finishOptimize(sp obs.Span, start time.Time, cache string, err error) {
	if o.planCache == nil {
		cache = "off"
	}
	status := "ok"
	if err != nil {
		status = "error"
	}
	if sp.Enabled() {
		sp.Tag("cache", cache).Tag("outcome", status).End()
	}
	m := o.obsv.Reg()
	if m == nil {
		return
	}
	m.Counter("cgdqp_optimizations_total", "cache", cache, "status", status).Inc()
	if err == nil {
		m.Histogram("cgdqp_optimize_seconds").Observe(time.Since(start).Seconds())
	}
	pcs := o.PlanCacheStats()
	m.Gauge("cgdqp_plan_cache_hits").Set(float64(pcs.Hits))
	m.Gauge("cgdqp_plan_cache_misses").Set(float64(pcs.Misses))
	m.Gauge("cgdqp_plan_cache_evictions").Set(float64(pcs.Evictions))
	m.Gauge("cgdqp_plan_cache_len").Set(float64(pcs.Len))
	m.Gauge("cgdqp_policy_eval_calls").Set(float64(o.Evaluator.Calls()))
	m.Gauge("cgdqp_policy_eval_cache_hits").Set(float64(o.Evaluator.Hits()))
	m.Gauge("cgdqp_policy_eval_eta").Set(float64(o.Evaluator.Eta()))
}

// OptimizeSQL parses, binds and optimizes a SQL string. With the plan
// cache on, query text seen before skips parsing, binding and
// normalization entirely: the remembered normalized-plan digest reaches
// straight into the plan cache (the epoch in the key still fences off
// stale policy state).
func (o *Optimizer) OptimizeSQL(sql string) (*Result, error) {
	if o.planCache != nil {
		start := time.Now()
		sp := o.obsv.StartSpan("optimize.sql_fast_path")
		if d, ok := o.sqlDigests.get(sql); ok {
			key := planCacheKey{planDigest: d, epoch: o.Evaluator.Epoch(), fbEpoch: o.feedbackEpoch(), optsFP: o.optsFP}
			if e, ok := o.planCache.get(key); ok {
				o.finishOptimize(sp, start, "hit", nil)
				return cachedResult(e, 0, start), nil
			}
		}
		// Not served from the fast path; the full optimize() below
		// records its own "optimize" span.
		sp.Tag("cache", "miss").End()
	}
	psp := o.obsv.StartSpan("sql.parse_bind")
	logical, err := sqlparse.ParseAndBind(sql, o.Schema)
	psp.End()
	if err != nil {
		return nil, err
	}
	res, digest, err := o.optimize(logical)
	if err == nil && o.planCache != nil && digest != "" {
		o.sqlDigests.put(sql, digest)
	}
	return res, err
}

// CachedDigest returns the memoized normalized-plan digest for query
// text this optimizer has successfully optimized before ("" , false
// otherwise, and always false with the plan cache off). Schedulers use
// it to coalesce identical in-flight optimizations under their
// canonical digest even when the SQL texts differ only in spelling.
func (o *Optimizer) CachedDigest(sql string) (string, bool) {
	if o.planCache == nil {
		return "", false
	}
	return o.sqlDigests.get(sql)
}

// Check validates a located plan against Definition 1 using this
// optimizer's policy evaluator.
func (o *Optimizer) Check(located *plan.Node) []Violation {
	return CheckCompliance(located, o.Evaluator)
}

func (o *Optimizer) ruleSet() []memo.Rule {
	var rs []memo.Rule
	if !o.Opts.DisableJoinReorder {
		rs = append(rs, rules.JoinCommute{}, rules.JoinAssoc{})
	}
	rs = append(rs, rules.JoinUnionDistribute{})
	// The traditional baseline mirrors "Calcite as-is" (Section 7.1):
	// no eager-aggregation rule. The compliant optimizer needs it for
	// completeness (Section 6.4).
	if o.Opts.Compliant && !o.Opts.DisableAggPushdown {
		rs = append(rs, rules.AggPushdown{})
	}
	return rs
}

// greedySelectSites is the ablation baseline for Algorithm 2: it places
// each operator bottom-up at the legal location that minimizes only the
// immediate shipping cost of its inputs, ignoring downstream placement.
func greedySelectSites(root *plan.Node, net *network.CostModel, resultLoc string) (*plan.Node, float64, error) {
	total := 0.0
	var place func(n *plan.Node, prefer string) (string, error)
	place = func(n *plan.Node, prefer string) (string, error) {
		if len(n.Children) == 0 {
			if n.Exec.Empty() {
				return "", fmt.Errorf("optimizer: empty execution trait on leaf")
			}
			n.Loc = n.Exec.Slice()[0]
			return n.Loc, nil
		}
		childLocs := make([]string, len(n.Children))
		for i, c := range n.Children {
			cl, err := place(c, prefer)
			if err != nil {
				return "", err
			}
			childLocs[i] = cl
		}
		cands := n.Exec.Slice()
		if prefer != "" && n.Exec.Contains(prefer) && n == root {
			cands = []string{prefer}
		}
		if len(cands) == 0 {
			return "", fmt.Errorf("optimizer: empty execution trait")
		}
		bestLoc, bestCost := "", -1.0
		for _, l := range cands {
			c := 0.0
			for i, child := range n.Children {
				c += net.EstShipCost(childLocs[i], l, child.Card*child.RowWidth())
			}
			if bestCost < 0 || c < bestCost {
				bestCost, bestLoc = c, l
			}
		}
		total += bestCost
		n.Loc = bestLoc
		for i, child := range n.Children {
			if childLocs[i] != bestLoc {
				ship := plan.NewShip(child, childLocs[i], bestLoc)
				ship.Exec = plan.NewSiteSet(bestLoc)
				n.Children[i] = ship
			}
		}
		return bestLoc, nil
	}
	if _, err := place(root, resultLoc); err != nil {
		return nil, 0, err
	}
	if resultLoc != "" && root.Loc != resultLoc {
		if !root.Exec.Contains(resultLoc) {
			return nil, 0, fmt.Errorf("optimizer: result location %s not legal", resultLoc)
		}
	}
	return root, total, nil
}
