package optimizer

import (
	"fmt"
	"strings"

	"cgdqp/internal/plan"
)

// ValidatePlan checks structural invariants of a physical plan tree; a
// violation indicates an optimizer bug (the executor's row layouts would
// silently diverge from declared schemas). Invariants:
//
//  1. a join's declared schema is the concatenation of its children's;
//  2. a union's children share the declared schema;
//  3. pass-through operators (filter, sort, limit, ship) keep their
//     child's schema;
//  4. every located operator carries a non-empty schema and, when the
//     tree is annotated, a location within its execution trait.
func ValidatePlan(root *plan.Node) error {
	var errs []string
	root.Walk(func(n *plan.Node) bool {
		switch n.Kind {
		case plan.HashJoin, plan.NLJoin, plan.MergeJoin, plan.Join, plan.IndexLookupJoin:
			var concat []string
			for _, c := range n.Children {
				for _, cr := range c.Cols {
					concat = append(concat, cr.Key())
				}
			}
			if !keysEqual(colKeys(n.Cols), concat) {
				errs = append(errs, fmt.Sprintf("%s: declared schema %v != children %v", n.Kind, colKeys(n.Cols), concat))
			}
		case plan.UnionAll, plan.Union:
			for i, c := range n.Children {
				if !keysEqual(colKeys(n.Cols), colKeys(c.Cols)) {
					errs = append(errs, fmt.Sprintf("%s: child %d schema %v != %v", n.Kind, i, colKeys(c.Cols), colKeys(n.Cols)))
				}
			}
		case plan.FilterExec, plan.Filter, plan.SortExec, plan.Sort,
			plan.LimitExec, plan.Limit, plan.Ship:
			if len(n.Children) == 1 && !keysEqual(colKeys(n.Cols), colKeys(n.Children[0].Cols)) {
				errs = append(errs, fmt.Sprintf("%s: schema %v != child %v", n.Kind, colKeys(n.Cols), colKeys(n.Children[0].Cols)))
			}
		}
		if len(n.Cols) == 0 {
			errs = append(errs, fmt.Sprintf("%s: empty schema", n.Kind))
		}
		if n.Loc != "" && !n.Exec.Empty() && !n.Exec.Contains(n.Loc) {
			errs = append(errs, fmt.Sprintf("%s: located at %s outside execution trait %s", n.Kind, n.Loc, n.Exec))
		}
		return true
	})
	if len(errs) > 0 {
		return fmt.Errorf("optimizer: invalid plan:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

func colKeys(cols []plan.ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Key()
	}
	return out
}

func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
