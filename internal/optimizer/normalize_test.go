package optimizer

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
	"cgdqp/internal/sqlparse"
)

func normCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	cat.MustAddTable(schema.NewTable("r", "db-1", "L1", 100,
		schema.Column{Name: "a", Type: expr.TInt},
		schema.Column{Name: "b", Type: expr.TInt},
		schema.Column{Name: "junk", Type: expr.TString},
	))
	cat.MustAddTable(schema.NewTable("s", "db-2", "L2", 100,
		schema.Column{Name: "a", Type: expr.TInt},
		schema.Column{Name: "c", Type: expr.TInt},
		schema.Column{Name: "junk2", Type: expr.TString},
	))
	cat.MustAddTable(&schema.Table{
		Name:    "fr",
		Columns: []schema.Column{{Name: "x", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{DB: "db-1", Location: "L1", RowCount: 50},
			{DB: "db-2", Location: "L2", RowCount: 50},
		},
	})
	return cat
}

func normalizeSQL(t *testing.T, sql string) *plan.Node {
	t.Helper()
	logical, err := sqlparse.ParseAndBind(sql, normCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return Normalize(logical)
}

func TestNormalizeFilterPushdown(t *testing.T) {
	n := normalizeSQL(t, `SELECT r.b FROM r, s WHERE r.a = s.a AND r.b > 5 AND s.c = 3`)
	// The join condition lands on the join; the single-table conjuncts
	// sink to their scans.
	var join *plan.Node
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Join {
			join = x
		}
		return true
	})
	if join == nil || join.Pred == nil || !strings.Contains(join.Pred.String(), "r.a = s.a") {
		t.Fatalf("join pred: %v", join)
	}
	filters := 0
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Filter {
			filters++
			if !strings.Contains(x.Pred.String(), "r.b > 5") && !strings.Contains(x.Pred.String(), "s.c = 3") {
				t.Errorf("unexpected filter: %v", x.Pred)
			}
			if x.Children[0].Kind != plan.Scan {
				t.Errorf("filter not on scan: %v", x.Children[0].Kind)
			}
		}
		return true
	})
	if filters != 2 {
		t.Errorf("filters: %d", filters)
	}
}

func TestNormalizeColumnPruning(t *testing.T) {
	n := normalizeSQL(t, `SELECT r.b FROM r, s WHERE r.a = s.a`)
	// junk / junk2 must be pruned from the leaves.
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Project && x.Children[0].Kind == plan.Scan {
			for _, c := range x.Cols {
				if strings.Contains(c.Name, "junk") {
					t.Errorf("unpruned column %s", c.Key())
				}
			}
		}
		return true
	})
	// Pruning keeps join keys.
	found := false
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Project {
			for _, c := range x.Cols {
				if c.Key() == "s.a" {
					found = true
				}
			}
		}
		return true
	})
	if !found {
		t.Error("join key pruned away")
	}
}

func TestNormalizeFragmentExpansion(t *testing.T) {
	n := normalizeSQL(t, `SELECT fr.x FROM fr WHERE fr.x > 1`)
	unions, scans := 0, 0
	n.Walk(func(x *plan.Node) bool {
		switch x.Kind {
		case plan.Union:
			unions++
		case plan.Scan:
			scans++
			if x.FragIdx < 0 {
				t.Error("fragment scan without index")
			}
		}
		return true
	})
	if unions != 1 || scans != 2 {
		t.Errorf("unions=%d scans=%d", unions, scans)
	}
	// The filter is pushed into both branches.
	filters := 0
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Filter {
			filters++
		}
		return true
	})
	if filters != 2 {
		t.Errorf("per-branch filters: %d", filters)
	}
}

func TestNormalizeKeepsLimitSemantics(t *testing.T) {
	// A filter above LIMIT (from a derived table) must not push below it.
	n := normalizeSQL(t, `SELECT x.b FROM (SELECT r.b FROM r ORDER BY r.b LIMIT 5) x WHERE x.b > 2`)
	// Walk down: the Filter must appear above the Limit.
	var sawFilter bool
	ok := true
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Filter {
			sawFilter = true
		}
		if x.Kind == plan.Limit && !sawFilter {
			ok = false
		}
		return true
	})
	if !ok || !sawFilter {
		t.Errorf("filter pushed below LIMIT:\n%s", n)
	}
}
