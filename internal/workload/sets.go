// Package workload generates the evaluation workloads of Section 7.1:
// the four policy-expression template sets (T, C, CR, CR+A) over the
// TPC-H schema, the Table 3 example expressions, random ad-hoc queries
// (random PK–FK join trees spanning two or more locations), and random
// policy-expression sets for the scalability experiments.
package workload

import (
	"fmt"

	"cgdqp/internal/policy"
)

// Table3Expressions returns the snippet of expressions shown in Table 3
// of the paper.
func Table3Expressions() []*policy.Expression {
	return []*policy.Expression{
		policy.MustParse("ship * from db-5.nation to *", "e1", ""),
		policy.MustParse("ship * from db-5.region to *", "e2", ""),
		policy.MustParse("ship partkey, suppkey, supplycost from db-2.partsupp to L3, L4", "e3", ""),
		policy.MustParse("ship partkey, mfgr, size, type, name from db-3.part to L4 where size > 40 OR type LIKE '%COPPER%'", "e4", ""),
		policy.MustParse("ship extendedprice, discount as aggregates sum from db-4.lineitem to L1 group by suppkey, orderkey", "e5", ""),
	}
}

// SetName identifies one of the four expression template sets.
type SetName string

// The template sets of Section 7.1.
const (
	SetT   SetName = "T"    // whole-table restrictions
	SetC   SetName = "C"    // column restrictions
	SetCR  SetName = "CR"   // column + row restrictions
	SetCRA SetName = "CR+A" // column + row + aggregate restrictions
)

// SetNames returns the sets in evaluation order.
func SetNames() []SetName { return []SetName{SetT, SetC, SetCR, SetCRA} }

// TPCHSet builds the hand-crafted TPC-H policy set for a template
// (Section 7.2 uses T with 8 expressions and C/CR/CR+A with 10 each).
// The sets are constructed so that every evaluation query has at least
// one compliant plan, while the traditional optimizer's cost-based
// placements violate them for some queries (most prominently Q2, whose
// cheapest plan ships Part to L2 against the Table 3 e4 restriction).
func TPCHSet(name SetName) *policy.Catalog {
	pc := policy.NewCatalog()
	id := 0
	add := func(src string) {
		id++
		pc.Add(policy.MustParse(src, fmt.Sprintf("%s%d", name, id), ""))
	}
	switch name {
	case SetT:
		// Whole-table grants: eight expressions, one per table.
		add("ship * from db-5.region to *")
		add("ship * from db-5.nation to *")
		add("ship * from db-2.supplier to L1, L3, L4, L5")
		add("ship * from db-2.partsupp to L3, L4")
		add("ship * from db-3.part to L4") // Part may only go to L4
		add("ship * from db-1.customer to L4, L5")
		add("ship * from db-1.orders to L4, L5")
		add("ship * from db-4.lineitem to L1, L2")

	case SetC:
		// Column grants: same reachability as T for the benchmark
		// columns, but sensitive columns (account balances, phones,
		// addresses, comments) never leave their sites.
		add("ship regionkey, name from db-5.region to *")
		add("ship nationkey, name, regionkey from db-5.nation to *")
		add("ship suppkey, name, nationkey from db-2.supplier to L1, L3, L4, L5")
		add("ship acctbal from db-2.supplier to L3, L5")
		add("ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L3, L4")
		add("ship partkey, mfgr, size, type, name, brand from db-3.part to L4")
		add("ship custkey, name, nationkey, mktsegment, acctbal from db-1.customer to L4, L5")
		add("ship orderkey, custkey, orderdate, shippriority, totalprice, orderstatus from db-1.orders to L4, L5")
		add("ship orderkey, partkey, suppkey, quantity, extendedprice, discount, returnflag, shipdate from db-4.lineitem to L1, L2")
		add("ship linenumber, tax, linestatus from db-4.lineitem to L2")

	case SetCR:
		// Column + row grants: Part adopts the Table 3 e4 restriction
		// (size > 40 OR COPPER only), which the benchmark queries'
		// predicates do not imply — the compliant optimizer must route
		// around Part (joining at L3) instead of shipping it.
		add("ship regionkey, name from db-5.region to *")
		add("ship nationkey, name, regionkey from db-5.nation to *")
		add("ship suppkey, name, nationkey, acctbal from db-2.supplier to L1, L3, L4, L5")
		add("ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L3, L4")
		add("ship partkey, mfgr, size, type, name from db-3.part to L4 where size > 40 OR type LIKE '%COPPER%'")
		add("ship custkey, name, nationkey, mktsegment, acctbal from db-1.customer to L3, L5")
		add("ship custkey, name, phone from db-1.customer to L5 where mktsegment = 'BUILDING'")
		add("ship orderkey, custkey, orderdate, shippriority, totalprice from db-1.orders to L3, L4, L5")
		add("ship orderkey, partkey, suppkey, quantity, extendedprice, discount, returnflag, shipdate from db-4.lineitem to L1, L2, L3")
		add("ship orderkey, extendedprice, discount from db-4.lineitem to L5 where shipdate > DATE '1998-01-01'")

	case SetCRA:
		// CR plus aggregate grants: raw lineitem may only reach L2; only
		// per-order/per-supplier aggregates may reach L1 or L3 (the
		// Table 3 e5 pattern), which forces the compliant optimizer into
		// the aggregation-pushdown plans of Figure 5(e).
		add("ship regionkey, name from db-5.region to *")
		add("ship nationkey, name, regionkey from db-5.nation to *")
		add("ship suppkey, name, nationkey, acctbal from db-2.supplier to L1, L3, L4, L5")
		add("ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L3, L4")
		add("ship partkey, mfgr, size, type, name from db-3.part to L4 where size > 40 OR type LIKE '%COPPER%'")
		add("ship partkey, name, type, mfgr from db-3.part to L2")
		add("ship custkey, name, nationkey, mktsegment, acctbal from db-1.customer to L2, L3, L5")
		add("ship orderkey, custkey, orderdate, shippriority, totalprice from db-1.orders to L2, L3, L4, L5")
		add("ship orderkey, partkey, suppkey, quantity, extendedprice, discount, returnflag, shipdate from db-4.lineitem to L2")
		add("ship extendedprice, discount, quantity as aggregates sum, avg from db-4.lineitem to L1, L3 group by suppkey, orderkey, partkey, shipdate, returnflag")
	}
	return pc
}

// UnrestrictedSet builds the Figure 6(b) minimal-overhead set: one
// `ship * from t to *` expression per TPC-H table — policies that impose
// no dataflow restriction, isolating the framework's fixed overhead.
func UnrestrictedSet() *policy.Catalog {
	pc := policy.NewCatalog()
	tables := []struct{ db, t string }{
		{"db-5", "region"}, {"db-5", "nation"},
		{"db-2", "supplier"}, {"db-2", "partsupp"},
		{"db-3", "part"}, {"db-1", "customer"},
		{"db-1", "orders"}, {"db-4", "lineitem"},
	}
	for i, tt := range tables {
		pc.Add(policy.MustParse(fmt.Sprintf("ship * from %s.%s to *", tt.db, tt.t), fmt.Sprintf("u%d", i+1), ""))
	}
	return pc
}

// WideSet builds the Figure 8 sets: `ship * from t to l1, ..., ln` for
// every TPC-H table, where the destination list has n locations drawn
// from the given universe.
func WideSet(locations []string, n int) *policy.Catalog {
	if n > len(locations) {
		n = len(locations)
	}
	pc := policy.NewCatalog()
	tables := []struct{ db, t string }{
		{"db-5", "region"}, {"db-5", "nation"},
		{"db-2", "supplier"}, {"db-2", "partsupp"},
		{"db-3", "part"}, {"db-1", "customer"},
		{"db-1", "orders"}, {"db-4", "lineitem"},
	}
	for i, tt := range tables {
		list := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				list += ", "
			}
			list += locations[j]
		}
		pc.Add(policy.MustParse(fmt.Sprintf("ship * from %s.%s to %s", tt.db, tt.t, list), fmt.Sprintf("w%d", i+1), ""))
	}
	return pc
}
