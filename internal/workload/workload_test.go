package workload

import (
	"strings"
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/sqlparse"
	"cgdqp/internal/tpch"
)

func TestTable3Expressions(t *testing.T) {
	es := Table3Expressions()
	if len(es) != 5 {
		t.Fatalf("Table 3 has 5 expressions, got %d", len(es))
	}
	if es[0].DB != "db-5" || !es[0].AllAttrs || !es[0].ToAll {
		t.Errorf("e1: %+v", es[0])
	}
	if es[3].Where == nil {
		t.Error("e4 must have a predicate")
	}
	if !es[4].IsAggregate() || len(es[4].GroupBy) != 2 {
		t.Errorf("e5: %+v", es[4])
	}
}

func TestTPCHSetsShape(t *testing.T) {
	for _, name := range SetNames() {
		pc := TPCHSet(name)
		want := 10
		if name == SetT {
			want = 8
		}
		if pc.Len() != want {
			t.Errorf("%s: %d expressions, want %d", name, pc.Len(), want)
		}
		// Each set covers all five databases.
		if got := len(pc.Databases()); got != 5 {
			t.Errorf("%s: %d databases", name, got)
		}
	}
	if UnrestrictedSet().Len() != 8 {
		t.Error("unrestricted set size")
	}
	ws := WideSet([]string{"L1", "L2", "L3", "L4", "L5"}, 3)
	if ws.Len() != 8 {
		t.Error("wide set size")
	}
	for _, e := range ws.ForDB("db-4") {
		if len(e.To) != 3 {
			t.Errorf("wide set destinations: %v", e.To)
		}
	}
}

func TestQueryGenProperties(t *testing.T) {
	cat := tpch.NewCatalog(0.001)
	g := NewQueryGen(7)
	queries := g.Generate(120)
	if len(queries) != 120 {
		t.Fatalf("generated %d", len(queries))
	}
	counts := map[int]int{}
	aggs := 0
	for _, q := range queries {
		// Every query parses and binds against the TPC-H catalog.
		logical, err := sqlparse.ParseAndBind(q, cat)
		if err != nil {
			t.Fatalf("generated query does not bind: %v\n%s", err, q)
		}
		nTables := len(logical.Tables())
		counts[nTables]++
		if strings.Contains(q, "GROUP BY") {
			aggs++
		}
		// Spans at least two locations.
		locs := map[string]bool{}
		for _, s := range logical.Tables() {
			locs[s.Table.Location()] = true
		}
		if len(locs) < 2 {
			t.Errorf("query spans one location: %s", q)
		}
	}
	// 55/35/10 split within generous tolerance.
	if counts[2] < 45 || counts[3] < 25 || counts[4] < 3 {
		t.Errorf("table-count distribution: %v", counts)
	}
	// ~30% aggregation.
	if aggs < 15 || aggs > 60 {
		t.Errorf("aggregate fraction: %d/120", aggs)
	}
	// Determinism.
	g2 := NewQueryGen(7)
	q2 := g2.Generate(120)
	for i := range queries {
		if queries[i] != q2[i] {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestPolicyGenShapes(t *testing.T) {
	locs := tpch.Locations()
	g := NewPolicyGen(11, locs)
	pc := g.Generate(SetCRA, 50)
	if pc.Len() != 50 {
		t.Fatalf("CRA set size: %d", pc.Len())
	}
	hasAgg, hasWhere := false, false
	for _, db := range pc.Databases() {
		for _, e := range pc.ForDB(db) {
			if e.IsAggregate() {
				hasAgg = true
			}
			if e.Where != nil {
				hasWhere = true
			}
		}
	}
	if !hasAgg || !hasWhere {
		t.Errorf("CRA set should mix aggregate (%v) and row (%v) expressions", hasAgg, hasWhere)
	}
	if NewPolicyGen(11, locs).Generate(SetT, 99).Len() != 8 {
		t.Error("T template is always 8 expressions")
	}
	if NewPolicyGen(3, locs).Generate(SetCR, 25).Len() != 25 {
		t.Error("CR set size")
	}
}

// TestGeneratedWorkloadAlwaysCompliant is the core guarantee of
// Section 7.1: under every generated policy set, every generated query
// has at least one compliant plan (the compliant optimizer never
// rejects).
func TestGeneratedWorkloadAlwaysCompliant(t *testing.T) {
	cat := tpch.NewCatalog(0.001)
	net := network.FiveRegionWAN(cat.Locations())
	queries := NewQueryGen(23).Generate(25)
	for _, setName := range SetNames() {
		pc := NewPolicyGen(29, cat.Locations()).Generate(setName, 20)
		opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		for _, q := range queries {
			res, err := opt.OptimizeSQL(q)
			if err != nil {
				t.Fatalf("set %s: compliant optimizer rejected generated query: %v\n%s", setName, err, q)
			}
			if v := opt.Check(res.Plan); len(v) != 0 {
				t.Fatalf("set %s: compliant plan violates policies: %v\n%s\n%s", setName, v, q, res.Plan.Format(true))
			}
		}
	}
}

// TestTPCHSetsAdmitCompliantPlans checks the hand-crafted sets: every
// benchmark query has a compliant plan under every set, and the
// traditional optimizer produces at least one non-compliant plan
// somewhere (the Figure 5a effect).
func TestTPCHSetsAdmitCompliantPlans(t *testing.T) {
	cat := tpch.NewCatalog(0.005)
	net := network.FiveRegionWAN(cat.Locations())
	anyNC := false
	for _, setName := range SetNames() {
		pc := TPCHSet(setName)
		copt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		topt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false})
		for _, qn := range tpch.QueryNames() {
			res, err := copt.OptimizeSQL(tpch.Queries[qn])
			if err != nil {
				t.Fatalf("set %s %s: compliant rejected: %v", setName, qn, err)
			}
			if v := copt.Check(res.Plan); len(v) != 0 {
				t.Fatalf("set %s %s: compliant plan violates: %v\n%s", setName, qn, v, res.Plan.Format(true))
			}
			tr, err := topt.OptimizeSQL(tpch.Queries[qn])
			if err != nil {
				t.Fatalf("set %s %s: traditional failed: %v", setName, qn, err)
			}
			if len(copt.Check(tr.Plan)) > 0 {
				anyNC = true
			}
		}
	}
	if !anyNC {
		t.Error("traditional optimizer should be non-compliant somewhere (Figure 5a)")
	}
}
