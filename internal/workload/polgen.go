package workload

import (
	"fmt"
	"strings"

	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// tableDB is the Table 2 database of each TPC-H table.
var tableDB = map[string]string{
	"customer": "db-1", "orders": "db-1",
	"supplier": "db-2", "partsupp": "db-2",
	"part": "db-3", "lineitem": "db-4",
	"nation": "db-5", "region": "db-5",
}

// policyPredTemplates holds per-table predicates for row-restricted
// policy expressions. They are deliberately *weaker* than (or disjoint
// from) the query predicate templates, mirroring the property file the
// paper's generator uses: some implications pass, many fail.
var policyPredTemplates = map[string][]string{
	"customer": {"mktsegment = 'BUILDING'", "acctbal > -1000", "nationkey < 20"},
	"orders":   {"orderdate < DATE '1998-01-01'", "totalprice > 10000", "orderstatus = 'F'"},
	"lineitem": {"shipdate > DATE '1993-01-01'", "quantity BETWEEN 1 AND 50", "returnflag = 'R'", "discount < 0.1"},
	"part":     {"size > 5", "size > 40 OR type LIKE '%COPPER%'", "retailprice > 900"},
	"supplier": {"acctbal > -1000", "nationkey < 25"},
	"partsupp": {"supplycost < 900", "availqty > 0"},
	"nation":   {"regionkey < 5"},
	"region":   {"regionkey < 5"},
}

// groupableCols lists attributes policy expressions may allow as
// grouping keys.
var groupableCols = map[string][]string{
	"customer": {"custkey", "nationkey", "mktsegment"},
	"orders":   {"orderkey", "custkey", "orderdate"},
	"lineitem": {"orderkey", "partkey", "suppkey", "returnflag", "shipdate"},
	"part":     {"partkey", "mfgr", "type", "size"},
	"supplier": {"suppkey", "nationkey"},
	"partsupp": {"partkey", "suppkey"},
	"nation":   {"nationkey", "regionkey", "name"},
	"region":   {"regionkey", "name"},
}

// PolicyGen generates random policy-expression sets over the TPC-H
// schema (the paper's policy expression generator, Section 7.1). Every
// generated set embeds a *covering core* — for each table, one basic
// expression shipping the generator's output columns to a common
// location — so each generated query is guaranteed at least one
// compliant plan (the paper notes all its expressions have this form).
type PolicyGen struct {
	r         *rng
	locations []string
}

// NewPolicyGen builds a generator over the given location universe.
func NewPolicyGen(seed uint64, locations []string) *PolicyGen {
	return &PolicyGen{r: newRng(seed), locations: locations}
}

// Generate builds a policy set of the given template and size. Template
// T ignores size and always produces eight whole-table expressions.
func (g *PolicyGen) Generate(name SetName, size int) *policy.Catalog {
	return g.generate(name, size, func(t string) []string { return []string{tableDB[t]} })
}

// GenerateFor builds a policy set against a catalog whose tables may be
// fragmented across databases (Section 7.5): covering expressions are
// emitted for every database hosting a fragment, so fragmented tables
// remain shippable.
func (g *PolicyGen) GenerateFor(cat *schema.Catalog, name SetName, size int) *policy.Catalog {
	return g.generate(name, size, func(t string) []string {
		tab, ok := cat.Table(t)
		if !ok {
			return []string{tableDB[t]}
		}
		seen := map[string]bool{}
		var dbs []string
		for _, f := range tab.Fragments {
			if !seen[f.DB] {
				seen[f.DB] = true
				dbs = append(dbs, f.DB)
			}
		}
		return dbs
	})
}

func (g *PolicyGen) generate(name SetName, size int, dbsOf func(string) []string) *policy.Catalog {
	pc := policy.NewCatalog()
	common := g.locations[g.r.intn(len(g.locations))]
	id := 0
	add := func(src string) {
		id++
		e, err := policy.Parse(src, fmt.Sprintf("g%d", id), "")
		if err != nil {
			panic(fmt.Sprintf("workload: generated invalid policy %q: %v", src, err))
		}
		pc.Add(e)
	}

	if name == SetT {
		for _, t := range allTables {
			for _, db := range dbsOf(t) {
				add(fmt.Sprintf("ship * from %s.%s to %s", db, t, g.destList(common)))
			}
		}
		return pc
	}

	// Covering core: one expression per (table, fragment database) over
	// all generated output columns, destinations always including the
	// common location.
	for _, t := range allTables {
		for _, db := range dbsOf(t) {
			add(fmt.Sprintf("ship %s from %s.%s to %s",
				strings.Join(outputCols[t], ", "), db, t, g.destList(common)))
		}
	}
	// Pad with random expressions according to the template.
	for id < size {
		t := allTables[g.r.intn(len(allTables))]
		dbs := dbsOf(t)
		db := dbs[g.r.intn(len(dbs))]
		cols := g.someCols(outputCols[t])
		switch name {
		case SetC:
			add(fmt.Sprintf("ship %s from %s.%s to %s", cols, db, t, g.destList("")))
		case SetCR:
			add(fmt.Sprintf("ship %s from %s.%s to %s where %s",
				cols, db, t, g.destList(""), g.r.pick(policyPredTemplates[t])))
		case SetCRA:
			switch g.r.intn(3) {
			case 0: // basic
				add(fmt.Sprintf("ship %s from %s.%s to %s", cols, db, t, g.destList("")))
			case 1: // basic with rows
				add(fmt.Sprintf("ship %s from %s.%s to %s where %s",
					cols, db, t, g.destList(""), g.r.pick(policyPredTemplates[t])))
			default: // aggregate
				if len(aggCols[t]) == 0 {
					add(fmt.Sprintf("ship %s from %s.%s to %s", cols, db, t, g.destList("")))
					continue
				}
				fns := []string{"sum", "sum, avg", "sum, min, max", "avg, count"}
				add(fmt.Sprintf("ship %s as aggregates %s from %s.%s to %s group by %s",
					g.someCols(aggCols[t]), g.r.pick(fns), db, t,
					g.destList(""), g.someCols(groupableCols[t])))
			}
		}
	}
	return pc
}

// destList draws 1–3 destinations, always including the required
// location when non-empty.
func (g *PolicyGen) destList(require string) string {
	n := 1 + g.r.intn(3)
	seen := map[string]bool{}
	var out []string
	if require != "" {
		seen[require] = true
		out = append(out, require)
	}
	for len(out) < n {
		l := g.locations[g.r.intn(len(g.locations))]
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return strings.Join(out, ", ")
}

// someCols draws a non-empty random subset (order-preserving).
func (g *PolicyGen) someCols(cols []string) string {
	var out []string
	for _, c := range cols {
		if g.r.pct(55) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, cols[g.r.intn(len(cols))])
	}
	return strings.Join(out, ", ")
}
