package workload

import (
	"fmt"
	"strings"
)

// rng is a deterministic splitmix64 generator (workload generation must
// be reproducible).
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pct(p int) bool { return r.intn(100) < p }

func (r *rng) pick(list []string) string { return list[r.intn(len(list))] }

// fkEdge is one PK–FK relationship of the TPC-H schema.
type fkEdge struct {
	childTable, childCol, parentTable, parentCol string
}

var fkEdges = []fkEdge{
	{"orders", "custkey", "customer", "custkey"},
	{"lineitem", "orderkey", "orders", "orderkey"},
	{"lineitem", "partkey", "part", "partkey"},
	{"lineitem", "suppkey", "supplier", "suppkey"},
	{"partsupp", "partkey", "part", "partkey"},
	{"partsupp", "suppkey", "supplier", "suppkey"},
	{"customer", "nationkey", "nation", "nationkey"},
	{"supplier", "nationkey", "nation", "nationkey"},
	{"nation", "regionkey", "region", "regionkey"},
}

// tableLocation is the Table 2 placement (kept here so the generator can
// enforce the "spans two or more locations" requirement without a
// catalog).
var tableLocation = map[string]string{
	"customer": "L1", "orders": "L1",
	"supplier": "L2", "partsupp": "L2",
	"part": "L3", "lineitem": "L4",
	"nation": "L5", "region": "L5",
}

// outputCols lists the columns the generator selects from (the columns
// the policy generator also covers, so generated workloads always have
// compliant plans under generated policy sets).
var outputCols = map[string][]string{
	"customer": {"custkey", "name", "nationkey", "mktsegment", "acctbal"},
	"orders":   {"orderkey", "custkey", "orderdate", "totalprice", "shippriority"},
	"lineitem": {"orderkey", "partkey", "suppkey", "quantity", "extendedprice", "discount", "shipdate", "returnflag"},
	"part":     {"partkey", "name", "mfgr", "type", "size"},
	"supplier": {"suppkey", "name", "nationkey", "acctbal"},
	"partsupp": {"partkey", "suppkey", "supplycost", "availqty"},
	"nation":   {"nationkey", "name", "regionkey"},
	"region":   {"regionkey", "name"},
}

// aggCols lists numeric columns suitable for aggregation.
var aggCols = map[string][]string{
	"customer": {"acctbal"},
	"orders":   {"totalprice"},
	"lineitem": {"quantity", "extendedprice", "discount"},
	"part":     {"size"},
	"supplier": {"acctbal"},
	"partsupp": {"supplycost", "availqty"},
}

// predTemplates holds per-table predicate templates; %s is the alias.
var predTemplates = map[string][]string{
	"customer": {"%s.mktsegment = 'BUILDING'", "%s.acctbal > 0", "%s.nationkey < 13"},
	"orders":   {"%s.orderdate < DATE '1997-01-01'", "%s.orderdate >= DATE '1993-01-01'", "%s.totalprice > 50000"},
	"lineitem": {"%s.quantity BETWEEN 5 AND 45", "%s.shipdate > DATE '1994-01-01'", "%s.returnflag = 'R'", "%s.discount < 0.08"},
	"part":     {"%s.size > 10", "%s.type LIKE '%%STEEL'", "%s.mfgr = 'Manufacturer#1'"},
	"supplier": {"%s.acctbal > 0", "%s.nationkey < 20"},
	"partsupp": {"%s.supplycost < 500", "%s.availqty > 100"},
	"nation":   {"%s.regionkey < 4"},
	"region":   {"%s.name = 'EUROPE'"},
}

var allTables = []string{"customer", "orders", "lineitem", "part", "supplier", "partsupp", "nation", "region"}

// QueryGen generates random ad-hoc queries as described in Section 7.1:
// a random starting table joined with additional tables along PK–FK
// edges so the query spans two or more locations; 55% of queries
// reference two tables, 35% three and 10% four; about 30% aggregate;
// each selects about four output columns and carries 3–4 predicates.
type QueryGen struct {
	r *rng
}

// NewQueryGen builds a generator with a deterministic seed.
func NewQueryGen(seed uint64) *QueryGen { return &QueryGen{r: newRng(seed)} }

// Generate produces n SQL query strings.
func (g *QueryGen) Generate(n int) []string {
	out := make([]string, 0, n)
	for len(out) < n {
		if q, ok := g.one(); ok {
			out = append(out, q)
		}
	}
	return out
}

// one generates a single query (ok=false when the join walk failed to
// span two locations and must be retried).
func (g *QueryGen) one() (string, bool) {
	// Number of tables: 55% two, 35% three, 10% four.
	var target int
	switch v := g.r.intn(100); {
	case v < 55:
		target = 2
	case v < 90:
		target = 3
	default:
		target = 4
	}

	// Grow a connected PK–FK join tree.
	start := allTables[g.r.intn(len(allTables))]
	tables := []string{start}
	used := map[string]bool{start: true}
	var joinConds []string
	alias := map[string]string{start: "t1"}
	for len(tables) < target {
		// Candidate edges touching the current set and adding a new table.
		var cands []fkEdge
		for _, e := range fkEdges {
			if used[e.childTable] && !used[e.parentTable] || used[e.parentTable] && !used[e.childTable] {
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			break
		}
		e := cands[g.r.intn(len(cands))]
		newTable := e.parentTable
		if used[newTable] {
			newTable = e.childTable
		}
		used[newTable] = true
		tables = append(tables, newTable)
		alias[newTable] = fmt.Sprintf("t%d", len(tables))
		joinConds = append(joinConds,
			fmt.Sprintf("%s.%s = %s.%s", alias[e.childTable], e.childCol, alias[e.parentTable], e.parentCol))
	}
	if len(tables) < 2 {
		return "", false
	}
	// The query must span at least two locations.
	locs := map[string]bool{}
	for _, t := range tables {
		locs[tableLocation[t]] = true
	}
	if len(locs) < 2 {
		return "", false
	}

	// FROM clause.
	var from []string
	for _, t := range tables {
		from = append(from, t+" "+alias[t])
	}

	// Predicates: 3–4 including local filters.
	var preds []string
	preds = append(preds, joinConds...)
	want := 3 + g.r.intn(2)
	tries := 0
	seen := map[string]bool{}
	for len(preds)-len(joinConds) < want && tries < 20 {
		tries++
		t := tables[g.r.intn(len(tables))]
		tmpl := predTemplates[t]
		p := fmt.Sprintf(tmpl[g.r.intn(len(tmpl))], alias[t])
		if !seen[p] {
			seen[p] = true
			preds = append(preds, p)
		}
	}

	// Output: ~4 columns; 30% of queries aggregate.
	aggregate := g.r.pct(30)
	var items []string
	var groupBy []string
	if aggregate {
		// 1–2 grouping columns plus 1–2 aggregates over numeric columns.
		nGroups := 1 + g.r.intn(2)
		for i := 0; i < nGroups; i++ {
			t := tables[g.r.intn(len(tables))]
			col := alias[t] + "." + g.r.pick(outputCols[t])
			if !contains(groupBy, col) {
				groupBy = append(groupBy, col)
				items = append(items, col)
			}
		}
		// Aggregates come from tables that have numeric columns.
		var aggable []string
		for _, t := range tables {
			if len(aggCols[t]) > 0 {
				aggable = append(aggable, t)
			}
		}
		nAggs := 1 + g.r.intn(2)
		fns := []string{"SUM", "SUM", "AVG", "MIN", "MAX"}
		for i := 0; i < nAggs && len(aggable) > 0; i++ {
			t := aggable[g.r.intn(len(aggable))]
			col := alias[t] + "." + g.r.pick(aggCols[t])
			items = append(items, fmt.Sprintf("%s(%s) AS agg%d", g.r.pick(fns), col, i+1))
		}
		if g.r.pct(25) {
			items = append(items, fmt.Sprintf("COUNT(*) AS cnt"))
		}
	} else {
		wantCols := 3 + g.r.intn(3)
		seenCols := map[string]bool{}
		for i := 0; i < wantCols*3 && len(items) < wantCols; i++ {
			t := tables[g.r.intn(len(tables))]
			col := alias[t] + "." + g.r.pick(outputCols[t])
			if !seenCols[col] {
				seenCols[col] = true
				items = append(items, col)
			}
		}
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(from, ", "))
	b.WriteString(" WHERE ")
	b.WriteString(strings.Join(preds, " AND "))
	if len(groupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(groupBy, ", "))
	}
	return b.String(), true
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
