// Package sqlparse implements the SQL front end: a lexer and
// recursive-descent parser for the select-project-join-group-by subset
// the engine supports, a parser for policy expressions (Section 4 of the
// paper), and a binder that turns parsed queries into logical plans.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexical token with its source position (for errors).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer produces tokens from a SQL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input eagerly.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, t)
		if t.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' {
				// Consume the dot only when a digit follows, so that
				// "5.nation" lexes as NUMBER(5) '.' IDENT(nation).
				if seenDot || l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
					break
				}
				seenDot = true
			} else if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
			}
			d := l.src[l.pos]
			if d == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(d)
			l.pos++
		}
	default:
		// Multi-character operators first.
		for _, op := range []string{"<>", "<=", ">=", "!="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokSymbol, text: op, pos: start}, nil
			}
		}
		if strings.ContainsRune("(),*=<>+-/.;", rune(c)) {
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
