package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"cgdqp/internal/expr"
)

// parser walks a token stream.
type parser struct {
	toks []token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) advance()    { p.i++ }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

// peekKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s at offset %d, found %q", strings.ToUpper(kw), p.cur().pos, p.cur().text)
	}
	return nil
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(sym string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

// expectSymbol consumes the symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sqlparse: expected %q at offset %d, found %q", sym, p.cur().pos, p.cur().text)
	}
	return nil
}

// expectIdent consumes and returns an identifier.
func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlparse: expected identifier at offset %d, found %q", t.pos, t.text)
	}
	p.advance()
	return t.text, nil
}

// reserved keywords that terminate expression/identifier contexts.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "limit": true, "having": true, "as": true, "and": true,
	"or": true, "not": true, "in": true, "like": true, "between": true,
	"is": true, "null": true, "join": true, "inner": true, "on": true,
	"ship": true, "to": true, "aggregates": true, "asc": true, "desc": true,
	"distinct": true, "deny": true, "case": true, "when": true, "then": true, "else": true, "end": true,
	"true": true, "false": true, "date": true, "union": true, "all": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

// ParseQuery parses a single SELECT statement.
func ParseQuery(src string) (*SelectStmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparse: trailing input at offset %d: %q", p.cur().pos, p.cur().text)
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("distinct") {
		stmt.Distinct = true
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	// FROM.
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	var joinConds []expr.Expr
	for {
		ref, conds, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref...)
		joinConds = append(joinConds, conds...)
		if !p.acceptSymbol(",") {
			break
		}
	}
	// WHERE.
	if p.acceptKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	stmt.Where = expr.AndAll(append([]expr.Expr{stmt.Where}, joinConds...)...)
	// GROUP BY (columns or computed expressions).
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// HAVING.
	if p.acceptKeyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	// ORDER BY.
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// LIMIT.
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: expected number after LIMIT at offset %d", t.pos)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad LIMIT: %w", err)
		}
		p.advance()
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` or `t.*`
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	save := p.i
	if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
		name := p.cur().text
		p.advance()
		if p.acceptSymbol(".") && p.acceptSymbol("*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.i = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKeyword("as") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
		item.Alias = p.cur().text
		p.advance()
	}
	return item, nil
}

// parseTableRef parses one FROM item, plus any JOIN ... ON chains hanging
// off it. ON conditions are returned separately for folding into WHERE.
func (p *parser) parseTableRef() ([]TableRef, []expr.Expr, error) {
	var refs []TableRef
	var conds []expr.Expr
	ref, err := p.parseSingleTable()
	if err != nil {
		return nil, nil, err
	}
	refs = append(refs, ref)
	for {
		if p.acceptKeyword("inner") {
			if err := p.expectKeyword("join"); err != nil {
				return nil, nil, err
			}
		} else if !p.acceptKeyword("join") {
			break
		}
		next, err := p.parseSingleTable()
		if err != nil {
			return nil, nil, err
		}
		refs = append(refs, next)
		if err := p.expectKeyword("on"); err != nil {
			return nil, nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		conds = append(conds, cond)
	}
	return refs, conds, nil
}

func (p *parser) parseSingleTable() (TableRef, error) {
	if p.acceptSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return TableRef{}, err
		}
		p.acceptKeyword("as")
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, fmt.Errorf("sqlparse: derived table requires an alias: %w", err)
		}
		return TableRef{Sub: sub, Alias: alias}, nil
	}
	name, err := p.parseTableName()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("as") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
		ref.Alias = p.cur().text
		p.advance()
	}
	return ref, nil
}

// parseTableName accepts identifiers possibly containing hyphens and a
// database qualifier, e.g. lineitem, db-4.lineitem.
func (p *parser) parseTableName() (string, error) {
	part, err := p.parseHyphenIdent()
	if err != nil {
		return "", err
	}
	if p.acceptSymbol(".") {
		rest, err := p.parseHyphenIdent()
		if err != nil {
			return "", err
		}
		return part + "." + rest, nil
	}
	return part, nil
}

// parseHyphenIdent parses IDENT ('-' (IDENT|NUMBER))* as one name,
// supporting the paper's db-1 ... db-5 database names.
func (p *parser) parseHyphenIdent() (string, error) {
	id, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	for {
		// A '-' immediately followed by an ident or number continues the
		// name. (Table names appear where arithmetic cannot.)
		if p.cur().kind == tokSymbol && p.cur().text == "-" {
			next := p.toks[p.i+1]
			if next.kind == tokIdent || next.kind == tokNumber {
				p.advance()
				id += "-" + next.text
				p.advance()
				continue
			}
		}
		return id, nil
	}
}

// parseColumnRef parses a possibly qualified column reference.
func (p *parser) parseColumnRef() (*expr.Col, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return expr.NewCol(first, second), nil
	}
	return expr.NewCol("", first), nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := additive [cmpOp additive | [NOT] LIKE str | [NOT] IN (...) |
//	             BETWEEN additive AND additive | IS [NOT] NULL]
//	additive := multiplicative (('+'|'-') multiplicative)*
//	multiplicative := primary (('*'|'/') primary)*
//	primary := literal | aggregate | columnRef | '(' expr ')'
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.NewOr(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("and") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.NewAnd(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if t := p.cur(); t.kind == tokSymbol {
		var op expr.CmpOp
		matched := true
		switch t.text {
		case "=":
			op = expr.EQ
		case "<>", "!=":
			op = expr.NE
		case "<":
			op = expr.LT
		case "<=":
			op = expr.LE
		case ">":
			op = expr.GT
		case ">=":
			op = expr.GE
		default:
			matched = false
		}
		if matched {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, l, r), nil
		}
	}
	negated := false
	if p.peekKeyword("not") {
		// Only for NOT LIKE / NOT IN / NOT BETWEEN.
		next := p.toks[p.i+1]
		if next.kind == tokIdent && (strings.EqualFold(next.text, "like") || strings.EqualFold(next.text, "in") || strings.EqualFold(next.text, "between")) {
			p.advance()
			negated = true
		}
	}
	switch {
	case p.acceptKeyword("like"):
		t := p.cur()
		if t.kind != tokString {
			return nil, fmt.Errorf("sqlparse: LIKE requires a string literal at offset %d", t.pos)
		}
		p.advance()
		return &expr.Like{E: l, Pattern: t.text, Negated: negated}, nil
	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &expr.In{E: l, List: list, Negated: negated}, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		bt := expr.Expr(expr.NewBetween(l, lo, hi))
		if negated {
			bt = expr.NewNot(bt)
		}
		return bt, nil
	case p.acceptKeyword("is"):
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: l, Negated: neg}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		op := expr.Add
		if t.text == "-" {
			op = expr.Sub
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = expr.NewArith(op, l, r)
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		op := expr.Mul
		if t.text == "/" {
			op = expr.Div
		}
		p.advance()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = expr.NewArith(op, l, r)
	}
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q: %w", t.text, err)
			}
			return expr.NewConst(expr.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q: %w", t.text, err)
		}
		return expr.NewConst(expr.NewInt(n)), nil
	case t.kind == tokString:
		p.advance()
		return expr.NewConst(expr.NewString(t.text)), nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		p.advance()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return expr.NewArith(expr.Sub, expr.NewConst(expr.NewInt(0)), e), nil
	case t.kind == tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return expr.NewConst(expr.NewBool(true)), nil
		case "false":
			p.advance()
			return expr.NewConst(expr.NewBool(false)), nil
		case "null":
			p.advance()
			return expr.NewConst(expr.NullValue()), nil
		case "date":
			// DATE 'YYYY-MM-DD'
			p.advance()
			lit := p.cur()
			if lit.kind != tokString {
				return nil, fmt.Errorf("sqlparse: DATE requires a string literal at offset %d", lit.pos)
			}
			p.advance()
			v, err := expr.ParseDate(lit.text)
			if err != nil {
				return nil, err
			}
			return expr.NewConst(v), nil
		case "case":
			return p.parseCase()
		case "year", "month", "day", "abs":
			if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
				fn, _ := expr.ParseScalarFn(t.text)
				p.advance()
				p.advance() // (
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return expr.NewCall(fn, arg), nil
			}
		case "sum", "avg", "count", "min", "max":
			if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
				fn, _ := expr.ParseAggFn(t.text)
				p.advance()
				p.advance() // (
				if p.acceptSymbol("*") {
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
					if fn != expr.AggCount {
						return nil, fmt.Errorf("sqlparse: %s(*) is only valid for COUNT", strings.ToUpper(t.text))
					}
					return expr.NewAgg(fn, nil), nil
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return expr.NewAgg(fn, arg), nil
			}
		}
		if isReserved(t.text) {
			return nil, fmt.Errorf("sqlparse: unexpected keyword %q at offset %d", t.text, t.pos)
		}
		return p.parseColumnRef()
	}
	return nil, fmt.Errorf("sqlparse: unexpected token %q at offset %d", t.text, t.pos)
}

// parseLiteralValue parses a literal into a Value (for IN lists and
// BETWEEN bounds).
func (p *parser) parseLiteralValue() (expr.Value, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return expr.NullValue(), err
	}
	return constFold(e)
}

// constFold evaluates a constant expression (literals and arithmetic on
// literals).
func constFold(e expr.Expr) (expr.Value, error) {
	if c, ok := e.(*expr.Const); ok {
		return c.Val, nil
	}
	if a, ok := e.(*expr.Arith); ok {
		if _, lok := a.L.(*expr.Const); lok {
			if _, rok := a.R.(*expr.Const); rok {
				return expr.Eval(a, nil)
			}
		}
		lv, lerr := constFold(a.L)
		rv, rerr := constFold(a.R)
		if lerr == nil && rerr == nil {
			return expr.Eval(&expr.Arith{Op: a.Op, L: expr.NewConst(lv), R: expr.NewConst(rv)}, nil)
		}
	}
	return expr.NullValue(), fmt.Errorf("sqlparse: expected a literal, found %s", e)
}

// parseCase parses a searched CASE expression:
//
//	CASE WHEN cond THEN result [WHEN ...] [ELSE result] END
func (p *parser) parseCase() (expr.Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	var whens []expr.When
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		whens = append(whens, expr.When{Cond: cond, Result: res})
	}
	if len(whens) == 0 {
		return nil, fmt.Errorf("sqlparse: CASE requires at least one WHEN at offset %d", p.cur().pos)
	}
	var els expr.Expr
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		els = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return expr.NewCase(whens, els), nil
}
