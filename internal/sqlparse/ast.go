package sqlparse

import (
	"cgdqp/internal/expr"
)

// SelectStmt is a parsed SELECT query. JOIN ... ON conditions are folded
// into Where (the engine performs inner joins only); the optimizer's
// normalization pass redistributes the conjuncts.
type SelectStmt struct {
	Items    []SelectItem
	Distinct bool
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr // columns or computed expressions
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// SelectItem is one output expression of a SELECT list.
type SelectItem struct {
	E     expr.Expr
	Alias string
	// Star is true for `*` (StarTable qualifies `t.*`).
	Star      bool
	StarTable string
}

// TableRef is one FROM item: either a base table (Name) or a derived
// table (Sub), with an optional alias.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    expr.Expr
	Desc bool
}

// PolicyTable is one FROM item of a policy expression.
type PolicyTable struct {
	Name  string // base table name (lowercase)
	Alias string // alias as written ("" = none; lowercase)
}

// PolicyStmt is a parsed policy expression (Section 4):
//
//	SHIP attrs [AS AGGREGATES fns] FROM tables TO locations
//	     [WHERE cond] [GROUP BY attrs]
//
// Attrs/To may be the * wildcard. Tables may be database-qualified
// ("db-4.lineitem"); following the paper's footnote 4, an expression may
// range over several base tables of one database, in which case the
// WHERE clause must contain the join predicate and ship/group-by
// attributes must be alias-qualified ("c.custkey").
type PolicyStmt struct {
	// Deny marks a negative expression (`deny ... from ... to ...`):
	// the listed attributes must NOT reach the listed locations. Negative
	// expressions are compiled into positive grants under a closed-world
	// assumption (policy.CompileDenials), per the Section 4 discussion.
	Deny     bool
	Attrs    []string
	AllAttrs bool
	AggFns   []expr.AggFn
	DB       string        // empty when the table references are unqualified
	Table    string        // first table (single-table shorthand)
	Tables   []PolicyTable // all FROM items
	To       []string
	ToAll    bool
	Where    expr.Expr
	GroupBy  []string
}

// IsAggregate reports whether this is an aggregate expression (§4.2)
// rather than a basic expression (§4.1).
func (p *PolicyStmt) IsAggregate() bool { return len(p.AggFns) > 0 }
