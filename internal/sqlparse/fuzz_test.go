package sqlparse

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Fuzz targets for the two hand-written recursive-descent parsers. The
// contract under fuzzing is narrow but absolute: any input — arbitrary
// bytes, truncated statements, deeply nested expressions — must come
// back as (stmt, nil) or (nil, error). Never a panic, never both nil.

var fuzzQuerySeeds = []string{
	"",
	"SELECT",
	"SELECT *",
	"SELECT * FROM Customer",
	"SELECT C.name, C.acctbal FROM Customer AS C WHERE C.acctbal > 100 AND C.name LIKE 'A%'",
	"SELECT * FROM Customer C JOIN Orders O ON C.custkey = O.custkey INNER JOIN Lineitem L ON O.orderkey = L.orderkey",
	"SELECT X.total FROM (SELECT SUM(totprice) AS total FROM Orders GROUP BY custkey) AS X WHERE X.total > 5",
	"SELECT n.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue FROM customer c, orders o WHERE c.custkey = o.custkey GROUP BY n.name ORDER BY revenue DESC",
	"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
	"SELECT a FROM t HAVING SUM(b) > 10",
	"SELECT a FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1995-01-01'",
	"SELECT a FROM t WHERE x IN (1, 2, 3) OR NOT (y BETWEEN 2 AND 7)",
	"select\t*\nfrom t where s like '%_\\%'",
	"SELECT ((((((1))))))",
	"SELECT 'unterminated",
	"SELECT a FROM t WHERE (",
	"SELECT \xff\xfe FROM t",
}

var fuzzPolicySeeds = []string{
	"",
	"ship",
	"ship * from Customer to *",
	"ship custkey, name from Customer C to Asia, Europe",
	"ship mktseg, region from Customer to Europe where mktseg = 'commercial'",
	"ship acctbal as aggregates sum, avg from Customer C to * group by mktseg, region",
	"ship * from db-5.nation to *",
	"ship partkey, mfgr, size, type, name from db-3.part to L4 where size > 40 OR type LIKE '%COPPER%'",
	"ship extendedprice, discount as aggregates sum from db-4.lineitem to L1 group by suppkey, orderkey",
	"ship a from t to",
	"ship a as aggregates from t to *",
	"ship 'quote from t to *",
	"ship \x00 from \xff to *",
}

func FuzzParseSQL(f *testing.F) {
	for _, s := range fuzzQuerySeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseQuery(src)
		if err == nil && stmt == nil {
			t.Fatalf("ParseQuery(%q) returned nil, nil", src)
		}
		if err != nil && stmt != nil {
			t.Fatalf("ParseQuery(%q) returned both a statement and %v", src, err)
		}
		// Error text must stay printable context, not raw input echo of
		// invalid UTF-8 (it ends up in user-facing diagnostics).
		if err != nil && utf8.ValidString(src) && !utf8.ValidString(err.Error()) {
			t.Fatalf("ParseQuery(%q) produced invalid UTF-8 error: %q", src, err.Error())
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	for _, s := range fuzzPolicySeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParsePolicy(src)
		if err == nil && stmt == nil {
			t.Fatalf("ParsePolicy(%q) returned nil, nil", src)
		}
		if err != nil && stmt != nil {
			t.Fatalf("ParsePolicy(%q) returned both a statement and %v", src, err)
		}
		if err == nil && strings.TrimSpace(src) == "" {
			t.Fatalf("ParsePolicy accepted blank input %q", src)
		}
	})
}
