package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// splitmix for deterministic mutation.
type mutRng struct{ s uint64 }

func (r *mutRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mutate flips, deletes or inserts bytes in a seed string.
func mutate(seed string, r *mutRng, edits int) string {
	b := []byte(seed)
	alphabet := []byte("abcdefgSELCTFROMWHR'()*,.<>=0123456789 \t\n%_-")
	for i := 0; i < edits; i++ {
		if len(b) == 0 {
			b = append(b, alphabet[r.next()%uint64(len(alphabet))])
			continue
		}
		pos := int(r.next() % uint64(len(b)))
		switch r.next() % 3 {
		case 0:
			b[pos] = alphabet[r.next()%uint64(len(alphabet))]
		case 1:
			b = append(b[:pos], b[pos+1:]...)
		default:
			c := alphabet[r.next()%uint64(len(alphabet))]
			b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
		}
	}
	return string(b)
}

var robustnessSeeds = []string{
	"SELECT a, b FROM t WHERE a = 1 AND b LIKE 'x%' GROUP BY a ORDER BY b LIMIT 5",
	"SELECT SUM(x.a) AS s FROM (SELECT t.a FROM t WHERE t.a IN (1,2,3)) x",
	"SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1",
	"ship a, b as aggregates sum, avg from db-1.t to L1, L2 where a > 5 group by b",
	"deny a from t to *",
	"SELECT * FROM t JOIN u ON t.a = u.a WHERE t.b BETWEEN 1 AND 2 OR u.c IS NOT NULL",
}

// TestParserNeverPanics mutates valid inputs heavily and asserts the
// parsers return errors instead of panicking or looping.
func TestParserNeverPanics(t *testing.T) {
	r := &mutRng{s: 7}
	for i := 0; i < 3000; i++ {
		seed := robustnessSeeds[i%len(robustnessSeeds)]
		src := mutate(seed, r, 1+int(r.next()%8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = ParseQuery(src)
			_, _ = ParsePolicy(src)
		}()
	}
}

// TestParserRandomBytes feeds fully random byte strings.
func TestParserRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		src := string(data)
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on %q: %v", src, p)
			}
		}()
		_, _ = ParseQuery(src)
		_, _ = ParsePolicy(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseRoundTripStability: a successfully parsed query re-renders
// stable predicate text (String() of the parsed Where is itself
// re-parseable inside a query shell).
func TestParseRoundTripStability(t *testing.T) {
	for _, src := range robustnessSeeds[:3] {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("seed %q: %v", src, err)
		}
		if q.Where == nil {
			continue
		}
		re := "SELECT a FROM t WHERE " + q.Where.String()
		if _, err := ParseQuery(re); err != nil {
			t.Errorf("re-parse of %q failed: %v", re, err)
		}
	}
	// Policy round trip through the policy package is covered in
	// internal/policy; here check the surface text survives a re-parse.
	p, err := ParsePolicy(robustnessSeeds[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Attrs) != 2 || !strings.EqualFold(p.Table, "t") {
		t.Errorf("policy parse: %+v", p)
	}
}
