package sqlparse

import (
	"strings"
	"testing"

	"cgdqp/internal/plan"
)

func TestBindHaving(t *testing.T) {
	n := mustBind(t, `
		SELECT C.name, SUM(O.totprice) AS total
		FROM Customer C, Orders O
		WHERE C.custkey = O.custkey
		GROUP BY C.name
		HAVING SUM(O.totprice) > 1000`)
	// Project (hidden-agg-free here: HAVING reuses the same SUM) over
	// Filter over Aggregate.
	var filter, agg *plan.Node
	n.Walk(func(x *plan.Node) bool {
		switch x.Kind {
		case plan.Filter:
			if filter == nil {
				filter = x
			}
		case plan.Aggregate:
			agg = x
		}
		return true
	})
	if filter == nil || agg == nil {
		t.Fatalf("expected Filter over Aggregate:\n%s", n)
	}
	if !strings.Contains(filter.Pred.String(), "total > 1000") {
		t.Errorf("having pred: %v", filter.Pred)
	}
	// The shared aggregate is not duplicated.
	if len(agg.Aggs) != 1 {
		t.Errorf("aggs: %v", agg.Aggs)
	}
}

func TestBindHavingHiddenAggregate(t *testing.T) {
	// HAVING introduces an aggregate not present in the select list: it
	// becomes a hidden output of the Aggregate, dropped by the final
	// projection.
	n := mustBind(t, `
		SELECT C.name FROM Customer C, Orders O
		WHERE C.custkey = O.custkey
		GROUP BY C.name
		HAVING COUNT(*) > 2`)
	if n.Kind != plan.Project || len(n.Cols) != 1 || n.Cols[0].Key() != "C.name" {
		t.Fatalf("projection should hide the COUNT:\n%s", n)
	}
	var agg *plan.Node
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Aggregate {
			agg = x
		}
		return true
	})
	if agg == nil || len(agg.Aggs) != 1 {
		t.Fatalf("hidden aggregate missing:\n%s", n)
	}
}

func TestBindHavingErrors(t *testing.T) {
	cat := testCatalog()
	if _, err := ParseAndBind("SELECT C.name FROM Customer C HAVING C.name > 'a' GROUP BY C.name", cat); err == nil {
		t.Error("HAVING before GROUP BY is a parse error")
	}
	// Non-grouped raw column in HAVING.
	if _, err := ParseAndBind("SELECT C.name FROM Customer C GROUP BY C.name HAVING C.acctbal > 0", cat); err == nil {
		t.Error("non-grouped column in HAVING must fail")
	}
}

func TestBindDistinct(t *testing.T) {
	n := mustBind(t, "SELECT DISTINCT C.mktseg FROM Customer C")
	// Root is an Aggregate grouping by mktseg (or a projection of it).
	var agg *plan.Node
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Aggregate {
			agg = x
		}
		return true
	})
	if agg == nil || len(agg.GroupBy) != 1 || len(agg.Aggs) != 0 {
		t.Fatalf("distinct should group by outputs:\n%s", n)
	}
	// DISTINCT over computed expressions materializes them first.
	n2 := mustBind(t, "SELECT DISTINCT C.acctbal * 2 AS dbl FROM Customer C")
	var proj bool
	n2.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Project {
			for _, p := range x.Projs {
				if p.Name == "dbl" {
					proj = true
				}
			}
		}
		return true
	})
	if !proj {
		t.Errorf("distinct over expression needs a projection:\n%s", n2)
	}
	// DISTINCT with aggregation is a no-op.
	n3 := mustBind(t, "SELECT DISTINCT C.mktseg, COUNT(*) AS n FROM Customer C GROUP BY C.mktseg")
	aggs := 0
	n3.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Aggregate {
			aggs++
		}
		return true
	})
	if aggs != 1 {
		t.Errorf("distinct+group-by should not double-aggregate: %d", aggs)
	}
}
