package sqlparse

import (
	"fmt"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// Bind resolves a parsed query against the catalog and produces a logical
// plan: scans joined left-deep (with a filter holding all predicates),
// followed by aggregation, projection, sort and limit as needed. The
// optimizer's normalization pass later pushes predicates down and prunes
// columns.
func Bind(stmt *SelectStmt, cat *schema.Catalog) (*plan.Node, error) {
	b := &binder{cat: cat}
	return b.bindSelect(stmt)
}

// ParseAndBind parses SQL text and binds it in one step.
func ParseAndBind(sql string, cat *schema.Catalog) (*plan.Node, error) {
	stmt, err := ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, cat)
}

type binder struct {
	cat     *schema.Catalog
	aggSeq  int
	aliases map[string]bool
}

func (b *binder) bindSelect(stmt *SelectStmt) (*plan.Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqlparse: query has no FROM clause")
	}
	prevAliases := b.aliases
	b.aliases = map[string]bool{}
	defer func() { b.aliases = prevAliases }()

	// FROM: bind each table reference and cross-join left-deep.
	var tree *plan.Node
	for _, ref := range stmt.From {
		node, err := b.bindTableRef(ref)
		if err != nil {
			return nil, err
		}
		if tree == nil {
			tree = node
		} else {
			tree = plan.NewJoin(tree, node, nil)
		}
	}

	// WHERE: resolve column qualifiers, then filter on top.
	if stmt.Where != nil {
		resolved, err := b.resolveColumns(stmt.Where, tree)
		if err != nil {
			return nil, err
		}
		tree = plan.NewFilter(tree, resolved)
	}

	// Select list: expand stars, resolve columns.
	items, err := b.expandItems(stmt.Items, tree)
	if err != nil {
		return nil, err
	}

	hasAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range items {
		if expr.ContainsAgg(it.E) {
			hasAgg = true
		}
	}

	if hasAgg {
		var having expr.Expr
		tree, items, having, err = b.bindAggregate(stmt, items, tree)
		if err != nil {
			return nil, err
		}
		if having != nil {
			tree = plan.NewFilter(tree, having)
		}
	} else if stmt.Having != nil {
		return nil, fmt.Errorf("sqlparse: HAVING requires aggregation")
	}

	// DISTINCT over a non-aggregating query groups by every output
	// column (aggregating queries already emit one row per group).
	if stmt.Distinct && !hasAgg {
		tree, items, err = b.bindDistinct(items, tree)
		if err != nil {
			return nil, err
		}
	}

	// Final projection (skip when the items already are the full schema,
	// which happens for SELECT * and for pure aggregations).
	if !identityItems(items, tree) {
		projs := make([]plan.NamedExpr, len(items))
		for i, it := range items {
			name := it.Alias
			if name == "" {
				if c, ok := it.E.(*expr.Col); ok {
					name = c.Name
				} else {
					name = fmt.Sprintf("col%d", i+1)
				}
			}
			projs[i] = plan.NamedExpr{E: it.E, Name: name}
		}
		tree = plan.NewProject(tree, projs)
	}

	// ORDER BY / LIMIT. Keys resolve against the output schema; when a
	// key references a column hidden by the final projection (SQL allows
	// ordering by underlying columns), the sort moves below it.
	if len(stmt.OrderBy) > 0 {
		keys := make([]plan.SortKey, len(stmt.OrderBy))
		outputOK := true
		for i, o := range stmt.OrderBy {
			resolved, err := b.resolveColumns(o.E, tree)
			if err != nil {
				outputOK = false
				break
			}
			keys[i] = plan.SortKey{E: resolved, Desc: o.Desc}
		}
		switch {
		case outputOK:
			tree = plan.NewSort(tree, keys)
		case tree.Kind == plan.Project:
			inner := tree.Children[0]
			for i, o := range stmt.OrderBy {
				resolved, err := b.resolveColumns(o.E, inner)
				if err != nil {
					return nil, err
				}
				keys[i] = plan.SortKey{E: resolved, Desc: o.Desc}
			}
			tree.Children[0] = plan.NewSort(inner, keys)
		default:
			if _, err := b.resolveColumns(stmt.OrderBy[0].E, tree); err != nil {
				return nil, err
			}
		}
	}
	if stmt.Limit >= 0 {
		tree = plan.NewLimit(tree, stmt.Limit)
	}
	return tree, nil
}

func (b *binder) bindTableRef(ref TableRef) (*plan.Node, error) {
	alias := ref.Alias
	if ref.Sub != nil {
		sub, err := b.bindSelect(ref.Sub)
		if err != nil {
			return nil, err
		}
		if dup := b.claimAlias(alias); dup != nil {
			return nil, dup
		}
		return plan.NewRename(sub, alias), nil
	}
	tab, ok := b.cat.Table(ref.Name)
	if !ok {
		return nil, fmt.Errorf("sqlparse: unknown table %q", ref.Name)
	}
	if alias == "" {
		alias = tab.Name
	}
	if dup := b.claimAlias(alias); dup != nil {
		return nil, dup
	}
	return plan.NewScan(tab, alias, -1), nil
}

func (b *binder) claimAlias(alias string) error {
	key := strings.ToLower(alias)
	if b.aliases[key] {
		return fmt.Errorf("sqlparse: duplicate table alias %q", alias)
	}
	b.aliases[key] = true
	return nil
}

// resolveColumns qualifies every unqualified column reference against the
// scope's output schema and verifies qualified references exist.
func (b *binder) resolveColumns(e expr.Expr, scope *plan.Node) (expr.Expr, error) {
	var resolveErr error
	out := expr.Transform(e, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.Col)
		if !ok || resolveErr != nil {
			return n
		}
		idx := scope.ColIndex(c)
		if idx < 0 {
			if resolveErr == nil {
				resolveErr = fmt.Errorf("sqlparse: cannot resolve column %s", c.Key())
			}
			return n
		}
		cr := scope.Cols[idx]
		return &expr.Col{Table: cr.Table, Name: cr.Name, Index: -1}
	})
	if resolveErr != nil {
		return nil, resolveErr
	}
	return out, nil
}

// expandItems expands * / t.* items and resolves column references.
func (b *binder) expandItems(items []SelectItem, scope *plan.Node) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if it.Star {
			matched := false
			for _, c := range scope.Cols {
				if it.StarTable == "" || strings.EqualFold(c.Table, it.StarTable) {
					out = append(out, SelectItem{E: c.Col()})
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("sqlparse: %s.* matches no columns", it.StarTable)
			}
			continue
		}
		resolved, err := b.resolveColumns(it.E, scope)
		if err != nil {
			return nil, err
		}
		out = append(out, SelectItem{E: resolved, Alias: it.Alias})
	}
	return out, nil
}

// bindAggregate builds the Aggregate operator: it extracts aggregate
// calls out of the select items (and the HAVING clause), validates that
// non-aggregated items are grouping columns, and rewrites items to
// reference aggregate outputs. The returned predicate is the HAVING
// condition expressed over the aggregate's output schema (nil if
// absent).
func (b *binder) bindAggregate(stmt *SelectStmt, items []SelectItem, tree *plan.Node) (*plan.Node, []SelectItem, expr.Expr, error) {
	// Group-by items may be computed expressions (GROUP BY YEAR(d)):
	// materialize them in a projection below the aggregate and group by
	// the synthesized column.
	groupBy := make([]*expr.Col, len(stmt.GroupBy))
	type computedGroup struct {
		e   expr.Expr // resolved source expression
		col *expr.Col // synthesized reference
	}
	var computed []computedGroup
	var synth []plan.NamedExpr
	for i, g := range stmt.GroupBy {
		resolved, err := b.resolveColumns(g, tree)
		if err != nil {
			return nil, nil, nil, err
		}
		if c, ok := resolved.(*expr.Col); ok {
			groupBy[i] = c
			continue
		}
		name := fmt.Sprintf("_g%d", len(computed))
		ref := expr.NewCol("", name)
		computed = append(computed, computedGroup{e: resolved, col: ref})
		synth = append(synth, plan.NamedExpr{E: resolved, Name: name})
		groupBy[i] = ref
	}
	if len(synth) > 0 {
		projs := make([]plan.NamedExpr, 0, len(tree.Cols)+len(synth))
		for _, c := range tree.Cols {
			projs = append(projs, plan.NamedExpr{E: c.Col(), Name: c.Name, Type: c.Type})
		}
		projs = append(projs, synth...)
		tree = plan.NewProject(tree, projs)
	}
	// matchComputed replaces a select-item expression that structurally
	// equals a computed group expression with its synthesized column.
	matchComputed := func(e expr.Expr) (*expr.Col, bool) {
		for _, cg := range computed {
			if cg.e.Equal(e) {
				return cg.col, true
			}
		}
		return nil, false
	}

	var aggs []plan.NamedAgg
	// findOrAdd returns the output name of an equivalent aggregate.
	findOrAdd := func(a *expr.Agg, preferred string) string {
		for _, existing := range aggs {
			same := existing.Fn == a.Fn &&
				((existing.Arg == nil && a.Arg == nil) || (existing.Arg != nil && a.Arg != nil && existing.Arg.Equal(a.Arg)))
			if same {
				return existing.Name
			}
		}
		name := preferred
		if name == "" {
			name = fmt.Sprintf("agg_%d", b.aggSeq)
			b.aggSeq++
		}
		aggs = append(aggs, plan.NamedAgg{Fn: a.Fn, Arg: a.Arg, Name: name})
		return name
	}

	isGroupCol := func(c *expr.Col) bool {
		for _, g := range groupBy {
			if g.Equal(c) {
				return true
			}
		}
		return false
	}

	outItems := make([]SelectItem, len(items))
	needPost := false
	for i, it := range items {
		switch e := it.E.(type) {
		case *expr.Agg:
			name := findOrAdd(e, it.Alias)
			outItems[i] = SelectItem{E: expr.NewCol("", name), Alias: it.Alias}
			if it.Alias == "" {
				outItems[i].Alias = name
			}
		case *expr.Col:
			if !isGroupCol(e) {
				return nil, nil, nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY or inside an aggregate", e.Key())
			}
			outItems[i] = it
		default:
			// A computed expression matching a computed group key refers
			// to the synthesized column.
			if ref, ok := matchComputed(it.E); ok {
				alias := it.Alias
				if alias == "" {
					alias = ref.Name
				}
				outItems[i] = SelectItem{E: ref, Alias: alias}
				continue
			}
			// Mixed expression: replace embedded aggregates with refs.
			if !expr.ContainsAgg(it.E) {
				return nil, nil, nil, fmt.Errorf("sqlparse: expression %s must aggregate or group", it.E)
			}
			replaced, err := b.extractAggs(it.E, findOrAdd, isGroupCol)
			if err != nil {
				return nil, nil, nil, err
			}
			outItems[i] = SelectItem{E: replaced, Alias: it.Alias}
			needPost = true
		}
	}
	_ = needPost
	// HAVING: resolve against the pre-aggregation scope, extract its
	// aggregate calls, and validate remaining columns group.
	var having expr.Expr
	if stmt.Having != nil {
		resolved, err := b.resolveColumns(stmt.Having, tree)
		if err != nil {
			return nil, nil, nil, err
		}
		having, err = b.extractAggs(resolved, findOrAdd, isGroupCol)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	agg := plan.NewAggregate(tree, groupBy, aggs)
	return agg, outItems, having, nil
}

// extractAggs replaces aggregate calls inside an expression with
// references to (possibly newly added) aggregate outputs, and validates
// that every remaining bare column is a grouping column.
func (b *binder) extractAggs(e expr.Expr, findOrAdd func(*expr.Agg, string) string, isGroupCol func(*expr.Col) bool) (expr.Expr, error) {
	replaced := expr.Transform(e, func(n expr.Expr) expr.Expr {
		if a, ok := n.(*expr.Agg); ok {
			return expr.NewCol("", findOrAdd(a, ""))
		}
		return n
	})
	var badCol *expr.Col
	expr.Walk(replaced, func(n expr.Expr) bool {
		if c, ok := n.(*expr.Col); ok && c.Table != "" && !isGroupCol(c) {
			badCol = c
			return false
		}
		return true
	})
	if badCol != nil {
		return nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY or inside an aggregate", badCol.Key())
	}
	return replaced, nil
}

// bindDistinct rewrites SELECT DISTINCT items into a grouping aggregate
// over every output expression. Non-column items are first materialized
// by a projection so the group-by keys are plain columns.
func (b *binder) bindDistinct(items []SelectItem, tree *plan.Node) (*plan.Node, []SelectItem, error) {
	needProj := false
	for _, it := range items {
		if _, ok := it.E.(*expr.Col); !ok {
			needProj = true
		}
	}
	if needProj {
		projs := make([]plan.NamedExpr, len(items))
		for i, it := range items {
			name := it.Alias
			if name == "" {
				if c, ok := it.E.(*expr.Col); ok {
					name = c.Name
				} else {
					name = fmt.Sprintf("col%d", i+1)
				}
			}
			projs[i] = plan.NamedExpr{E: it.E, Name: name}
		}
		tree = plan.NewProject(tree, projs)
		items = make([]SelectItem, len(tree.Cols))
		for i, c := range tree.Cols {
			items[i] = SelectItem{E: c.Col(), Alias: c.Name}
		}
	}
	groupBy := make([]*expr.Col, len(items))
	for i, it := range items {
		groupBy[i] = it.E.(*expr.Col)
	}
	return plan.NewAggregate(tree, groupBy, nil), items, nil
}

// identityItems reports whether the items are exactly the scope's columns
// in order (so the final projection can be skipped).
func identityItems(items []SelectItem, scope *plan.Node) bool {
	if len(items) != len(scope.Cols) {
		return false
	}
	for i, it := range items {
		c, ok := it.E.(*expr.Col)
		if !ok {
			return false
		}
		cr := scope.Cols[i]
		if !strings.EqualFold(c.Name, cr.Name) {
			return false
		}
		if c.Table != "" && !strings.EqualFold(c.Table, cr.Table) {
			return false
		}
		if it.Alias != "" && !strings.EqualFold(it.Alias, cr.Name) {
			return false
		}
	}
	return true
}
