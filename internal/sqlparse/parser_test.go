package sqlparse

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x >= 10.5 AND s = 'it''s' -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", ">=", "10.5", "AND", "s", "=", "it's", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("a ? b"); err == nil {
		t.Error("unknown character should fail")
	}
}

func TestParseSimpleQuery(t *testing.T) {
	q, err := ParseQuery("SELECT C.name, C.acctbal FROM Customer AS C WHERE C.acctbal > 100 AND C.name LIKE 'A%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 2 || q.Items[0].E.String() != "C.name" {
		t.Errorf("items: %+v", q.Items)
	}
	if len(q.From) != 1 || q.From[0].Name != "Customer" || q.From[0].Alias != "C" {
		t.Errorf("from: %+v", q.From)
	}
	if q.Where == nil || !strings.Contains(q.Where.String(), "C.acctbal > 100") {
		t.Errorf("where: %v", q.Where)
	}
	if q.Limit != -1 {
		t.Errorf("limit: %d", q.Limit)
	}
}

func TestParseAggregateQuery(t *testing.T) {
	q, err := ParseQuery(`
		SELECT C.name, SUM(O.totprice) AS total, COUNT(*) cnt
		FROM Customer C, Orders O
		WHERE C.custkey = O.custkey
		GROUP BY C.name
		ORDER BY total DESC, C.name
		LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items: %d", len(q.Items))
	}
	if a, ok := q.Items[1].E.(*expr.Agg); !ok || a.Fn != expr.AggSum || q.Items[1].Alias != "total" {
		t.Errorf("item1: %+v", q.Items[1])
	}
	if a, ok := q.Items[2].E.(*expr.Agg); !ok || a.Fn != expr.AggCount || a.Arg != nil || q.Items[2].Alias != "cnt" {
		t.Errorf("item2: %+v", q.Items[2])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "C.name" {
		t.Errorf("group by: %v", q.GroupBy)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by: %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit: %d", q.Limit)
	}
}

func TestParseJoinOnSyntax(t *testing.T) {
	q, err := ParseQuery(`SELECT * FROM Customer C JOIN Orders O ON C.custkey = O.custkey INNER JOIN Lineitem L ON O.orderkey = L.orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 3 {
		t.Fatalf("from: %d", len(q.From))
	}
	// Both ON conditions folded into WHERE.
	conj := expr.Conjuncts(q.Where)
	if len(conj) != 2 {
		t.Errorf("folded conditions: %v", q.Where)
	}
	if !q.Items[0].Star {
		t.Error("star item")
	}
}

func TestParseDerivedTable(t *testing.T) {
	q, err := ParseQuery(`SELECT X.total FROM (SELECT SUM(totprice) AS total FROM Orders GROUP BY custkey) AS X WHERE X.total > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 || q.From[0].Sub == nil || q.From[0].Alias != "X" {
		t.Fatalf("derived table: %+v", q.From)
	}
	if len(q.From[0].Sub.Items) != 1 {
		t.Error("subquery items")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct{ in, out string }{
		{"SELECT a FROM t WHERE a IN (1, 2, 3)", "t.a IN (1, 2, 3)"},
		{"SELECT a FROM t WHERE a NOT IN (1)", "t.a NOT IN (1)"},
		{"SELECT a FROM t WHERE a BETWEEN 1 AND 5", "t.a BETWEEN 1 AND 5"},
		{"SELECT a FROM t WHERE a IS NULL", "t.a IS NULL"},
		{"SELECT a FROM t WHERE a IS NOT NULL", "t.a IS NOT NULL"},
		{"SELECT a FROM t WHERE NOT a = 1", "NOT (t.a = 1)"},
		{"SELECT a FROM t WHERE s NOT LIKE 'x%'", "t.s NOT LIKE 'x%'"},
		{"SELECT a FROM t WHERE a + 1 * 2 = 3", "(t.a + (1 * 2)) = 3"},
		{"SELECT a FROM t WHERE (a + 1) * 2 = 3", "((t.a + 1) * 2) = 3"},
		{"SELECT a FROM t WHERE d >= DATE '1995-01-01'", "t.d >= DATE '1995-01-01'"},
		{"SELECT a FROM t WHERE a = -5", "t.a = (0 - 5)"},
		{"SELECT a FROM t WHERE b = TRUE OR b = FALSE", "(t.b = TRUE OR t.b = FALSE)"},
	}
	for _, c := range cases {
		// Parse and bind the where clause textually (resolution tested in
		// bind_test; here only shape matters, so fake the qualifier).
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		got := expr.Transform(q.Where, func(n expr.Expr) expr.Expr {
			if col, ok := n.(*expr.Col); ok && col.Table == "" {
				return expr.NewCol("t", col.Name)
			}
			return n
		}).String()
		if got != c.out {
			t.Errorf("%s:\n got %s\nwant %s", c.in, got, c.out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM (SELECT b FROM u)",    // derived table needs alias
		"SELECT a FROM t trailing garbage (", // trailing input
		"SELECT SUM(*) FROM t",               // SUM(*) invalid
		"SELECT a FROM t WHERE a LIKE 5",     // LIKE needs string
		"SELECT a FROM t WHERE a IN 1",       // IN needs parens
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParsePolicyBasic(t *testing.T) {
	p, err := ParsePolicy("ship custkey, name from Customer C to Asia, Europe")
	if err != nil {
		t.Fatal(err)
	}
	if p.IsAggregate() {
		t.Error("basic expression misclassified")
	}
	if len(p.Attrs) != 2 || p.Attrs[0] != "custkey" || p.Attrs[1] != "name" {
		t.Errorf("attrs: %v", p.Attrs)
	}
	if p.Table != "customer" || p.DB != "" {
		t.Errorf("table: %q db %q", p.Table, p.DB)
	}
	if len(p.To) != 2 || p.To[0] != "Asia" || p.To[1] != "Europe" {
		t.Errorf("to: %v", p.To)
	}
}

func TestParsePolicyWithWhere(t *testing.T) {
	p, err := ParsePolicy("ship mktseg, region from Customer to Europe where mktseg = 'commercial'")
	if err != nil {
		t.Fatal(err)
	}
	if p.Where == nil || !strings.Contains(p.Where.String(), "mktseg = 'commercial'") {
		t.Errorf("where: %v", p.Where)
	}
}

func TestParsePolicyAggregate(t *testing.T) {
	p, err := ParsePolicy("ship acctbal as aggregates sum, avg from Customer C to * group by mktseg, region")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAggregate() {
		t.Error("aggregate expression misclassified")
	}
	if len(p.AggFns) != 2 || p.AggFns[0] != expr.AggSum || p.AggFns[1] != expr.AggAvg {
		t.Errorf("agg fns: %v", p.AggFns)
	}
	if !p.ToAll || len(p.To) != 0 {
		t.Errorf("to *: %+v", p)
	}
	if len(p.GroupBy) != 2 || p.GroupBy[0] != "mktseg" {
		t.Errorf("group by: %v", p.GroupBy)
	}
}

func TestParsePolicyQualifiedAndWildcards(t *testing.T) {
	p, err := ParsePolicy("ship * from db-5.nation to *")
	if err != nil {
		t.Fatal(err)
	}
	if !p.AllAttrs || !p.ToAll {
		t.Errorf("wildcards: %+v", p)
	}
	if p.DB != "db-5" || p.Table != "nation" {
		t.Errorf("qualified table: db=%q table=%q", p.DB, p.Table)
	}

	// Table 3's e4: locations with hyphens, OR predicates.
	p, err = ParsePolicy("ship partkey, mfgr, size, type, name from db-3.part to L4 where size > 40 OR type LIKE '%COPPER%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Attrs) != 5 || p.To[0] != "L4" {
		t.Errorf("e4: %+v", p)
	}
	if _, ok := p.Where.(*expr.Or); !ok {
		t.Errorf("e4 where: %v", p.Where)
	}

	// Table 3's e5: group by after to, no where.
	p, err = ParsePolicy("ship extendedprice, discount as aggregates sum from db-4.lineitem to L1 group by suppkey, orderkey")
	if err != nil {
		t.Fatal(err)
	}
	if p.DB != "db-4" || len(p.GroupBy) != 2 || p.Where != nil {
		t.Errorf("e5: %+v", p)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"",
		"ship",
		"ship a",
		"ship a from t",
		"ship * as aggregates sum from t to *", // * with aggregates
		"ship a from t to * group by x",        // group by without aggregates
		"ship a from t to * where a = 1 where b=2", // duplicate where
		"ship a as aggregates median from t to *",  // unknown aggregate
		"ship a from t to * garbage",
	}
	for _, src := range bad {
		if _, err := ParsePolicy(src); err == nil {
			t.Errorf("expected policy parse error for %q", src)
		}
	}
}
