package sqlparse

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

func TestParseCaseExpression(t *testing.T) {
	q, err := ParseQuery(`SELECT CASE WHEN a > 1 THEN 'x' WHEN a > 0 THEN 'y' ELSE 'z' END AS c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := q.Items[0].E.(*expr.Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case: %+v", q.Items[0].E)
	}
	if q.Items[0].Alias != "c" {
		t.Errorf("alias: %q", q.Items[0].Alias)
	}
	// CASE without ELSE.
	q2, err := ParseQuery(`SELECT CASE WHEN a = 1 THEN 2 END AS c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Items[0].E.(*expr.Case).Else != nil {
		t.Error("else should be nil")
	}
	// Errors.
	for _, bad := range []string{
		"SELECT CASE END FROM t",           // no WHEN
		"SELECT CASE WHEN a THEN 1 FROM t", // missing END
		"SELECT CASE WHEN a 1 END FROM t",  // missing THEN
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("expected error: %s", bad)
		}
	}
}

func TestParseScalarFunctions(t *testing.T) {
	q, err := ParseQuery(`SELECT YEAR(o.orderdate) AS y, ABS(o.x) FROM o WHERE MONTH(o.orderdate) = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := q.Items[0].E.(*expr.Call); !ok || c.Fn != expr.FnYear {
		t.Errorf("item0: %+v", q.Items[0].E)
	}
	if c, ok := q.Items[1].E.(*expr.Call); !ok || c.Fn != expr.FnAbs {
		t.Errorf("item1: %+v", q.Items[1].E)
	}
	if !strings.Contains(q.Where.String(), "MONTH(o.orderdate) = 3") {
		t.Errorf("where: %v", q.Where)
	}
}

func TestBindGroupByComputed(t *testing.T) {
	n := mustBind(t, `
		SELECT O.ordkey + 0 AS bucket, COUNT(*) AS cnt
		FROM Orders O
		GROUP BY O.ordkey + 0`)
	// A synthesized projection materializes the computed key.
	var agg *plan.Node
	n.Walk(func(x *plan.Node) bool {
		if x.Kind == plan.Aggregate {
			agg = x
		}
		return true
	})
	if agg == nil {
		t.Fatalf("no aggregate:\n%s", n)
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0].Name != "_g0" {
		t.Fatalf("synthesized group key: %v", agg.GroupBy)
	}
	proj := agg.Children[0]
	if proj.Kind != plan.Project {
		t.Fatalf("projection below aggregate:\n%s", n)
	}
	found := false
	for _, p := range proj.Projs {
		if p.Name == "_g0" && strings.Contains(p.E.String(), "O.ordkey + 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("computed key not materialized: %v", proj.Projs)
	}
	// The select item reuses the synthesized column under its alias.
	if n.Cols[0].Name != "bucket" {
		t.Errorf("output: %v", n.Cols)
	}
	// A select item NOT matching any group expression still fails.
	if _, err := ParseAndBind(`SELECT O.ordkey + 1 AS b FROM Orders O GROUP BY O.ordkey + 0`, testCatalog()); err == nil {
		t.Error("mismatched computed item must fail")
	}
}
