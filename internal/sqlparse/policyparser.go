package sqlparse

import (
	"fmt"
	"strings"

	"cgdqp/internal/expr"
)

// ParsePolicy parses a policy expression (Section 4):
//
//	SHIP attr_list FROM table TO location_list [WHERE cond]           (basic)
//	SHIP attr_list AS AGGREGATES fn_list FROM table TO location_list
//	     [WHERE cond] [GROUP BY attr_list]                        (aggregate)
//	DENY attr_list FROM table TO location_list                     (negative)
//
// attr_list and location_list may be `*`. The table may be qualified with
// its database ("db-4.lineitem"). WHERE and GROUP BY may appear in either
// order.
func ParsePolicy(src string) (*PolicyStmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmt := &PolicyStmt{}
	if p.acceptKeyword("deny") {
		stmt.Deny = true
	} else if err := p.expectKeyword("ship"); err != nil {
		return nil, err
	}
	// Attribute list or *. Attributes may be alias-qualified for
	// multi-table expressions ("c.custkey").
	if p.acceptSymbol("*") {
		stmt.AllAttrs = true
	} else {
		for {
			a, err := p.parsePolicyAttr()
			if err != nil {
				return nil, err
			}
			stmt.Attrs = append(stmt.Attrs, a)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// AS AGGREGATES fn_list.
	if stmt.Deny && p.peekKeyword("as") {
		return nil, fmt.Errorf("sqlparse: deny expressions cannot carry aggregates")
	}
	if p.acceptKeyword("as") {
		if err := p.expectKeyword("aggregates"); err != nil {
			return nil, err
		}
		if stmt.AllAttrs {
			return nil, fmt.Errorf("sqlparse: aggregate policy expressions require explicit attributes, not *")
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn, err := expr.ParseAggFn(name)
			if err != nil {
				return nil, err
			}
			stmt.AggFns = append(stmt.AggFns, fn)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// FROM table list (footnote 4 allows joins of base tables from one
	// database).
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		var db, table string
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			db, table = name[:dot], name[dot+1:]
		} else {
			table = name
		}
		if db != "" {
			if stmt.DB != "" && !strings.EqualFold(stmt.DB, db) {
				return nil, fmt.Errorf("sqlparse: policy expression spans databases %s and %s", stmt.DB, db)
			}
			stmt.DB = db
		}
		pt := PolicyTable{Name: strings.ToLower(table)}
		// Optional table alias, as in the paper's "from Customer C".
		if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
			pt.Alias = strings.ToLower(p.cur().text)
			p.advance()
		}
		stmt.Tables = append(stmt.Tables, pt)
		if !p.acceptSymbol(",") {
			break
		}
	}
	stmt.Table = stmt.Tables[0].Name
	if stmt.Deny && len(stmt.Tables) > 1 {
		return nil, fmt.Errorf("sqlparse: denials cover a single table")
	}
	// TO locations.
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		stmt.ToAll = true
	} else {
		for {
			l, err := p.parseHyphenIdent()
			if err != nil {
				return nil, err
			}
			stmt.To = append(stmt.To, l)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// WHERE / GROUP BY in either order.
	for {
		switch {
		case p.acceptKeyword("where"):
			if stmt.Where != nil {
				return nil, fmt.Errorf("sqlparse: duplicate WHERE clause in policy expression")
			}
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Where = w
		case p.acceptKeyword("group"):
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			if !stmt.IsAggregate() {
				return nil, fmt.Errorf("sqlparse: GROUP BY is only valid in aggregate policy expressions")
			}
			for {
				a, err := p.parsePolicyAttr()
				if err != nil {
					return nil, err
				}
				stmt.GroupBy = append(stmt.GroupBy, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
		default:
			p.acceptSymbol(";")
			if !p.atEOF() {
				return nil, fmt.Errorf("sqlparse: trailing input in policy expression at offset %d: %q", p.cur().pos, p.cur().text)
			}
			return stmt, nil
		}
	}
}

// parsePolicyAttr parses an attribute reference in a policy expression:
// a bare name or an alias-qualified "alias.name", lowercased.
func (p *parser) parsePolicyAttr() (string, error) {
	a, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptSymbol(".") {
		b, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		return strings.ToLower(a) + "." + strings.ToLower(b), nil
	}
	return strings.ToLower(a), nil
}
