package sqlparse

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	cat.MustAddTable(schema.NewTable("Customer", "db-1", "N", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktseg", Type: expr.TString},
	))
	cat.MustAddTable(schema.NewTable("Orders", "db-2", "E", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	))
	cat.MustAddTable(schema.NewTable("Supply", "db-3", "A", 40000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extprice", Type: expr.TFloat},
	))
	return cat
}

func mustBind(t *testing.T, sql string) *plan.Node {
	t.Helper()
	node, err := ParseAndBind(sql, testCatalog())
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return node
}

func TestBindSimpleSelect(t *testing.T) {
	n := mustBind(t, "SELECT C.name FROM Customer AS C WHERE C.acctbal > 100")
	if n.Kind != plan.Project {
		t.Fatalf("root kind: %v", n.Kind)
	}
	if len(n.Cols) != 1 || n.Cols[0].Key() != "C.name" {
		t.Errorf("cols: %v", n.Cols)
	}
	f := n.Children[0]
	if f.Kind != plan.Filter || !strings.Contains(f.Pred.String(), "C.acctbal > 100") {
		t.Errorf("filter: %v", f)
	}
	if f.Children[0].Kind != plan.Scan {
		t.Error("scan under filter")
	}
}

func TestBindSelectStar(t *testing.T) {
	n := mustBind(t, "SELECT * FROM Customer")
	// SELECT * over one table needs no projection.
	if n.Kind != plan.Scan {
		t.Fatalf("root: %v", n.Kind)
	}
	if len(n.Cols) != 4 {
		t.Errorf("cols: %d", len(n.Cols))
	}
	// Qualified star.
	n = mustBind(t, "SELECT O.* FROM Customer C, Orders O")
	if n.Kind != plan.Project || len(n.Cols) != 3 || n.Cols[0].Key() != "O.custkey" {
		t.Errorf("qualified star: %v", n.Cols)
	}
}

func TestBindUnqualifiedResolution(t *testing.T) {
	// name appears only in Customer: resolvable; the binder qualifies it.
	n := mustBind(t, "SELECT name FROM Customer C, Orders O WHERE acctbal > 0")
	if n.Cols[0].Key() != "C.name" {
		t.Errorf("resolved: %v", n.Cols[0].Key())
	}
	// custkey is ambiguous across C and O.
	if _, err := ParseAndBind("SELECT custkey FROM Customer C, Orders O", testCatalog()); err == nil {
		t.Error("ambiguous column must fail")
	}
	if _, err := ParseAndBind("SELECT ghost FROM Customer", testCatalog()); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := ParseAndBind("SELECT name FROM Ghost", testCatalog()); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := ParseAndBind("SELECT name FROM Customer C, Orders C", testCatalog()); err == nil {
		t.Error("duplicate alias must fail")
	}
}

func TestBindJoinTree(t *testing.T) {
	n := mustBind(t, `SELECT C.name FROM Customer C, Orders O, Supply S
		WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey`)
	// Project -> Filter -> Join(Join(C,O),S)
	f := n.Children[0]
	j := f.Children[0]
	if j.Kind != plan.Join || j.Children[0].Kind != plan.Join {
		t.Fatalf("left-deep join tree:\n%s", n)
	}
	if len(j.Cols) != 10 {
		t.Errorf("join cols: %d", len(j.Cols))
	}
}

func TestBindAggregate(t *testing.T) {
	n := mustBind(t, `SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
		FROM Customer C, Orders O, Supply S
		WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
		GROUP BY C.name`)
	// Pure aggregation: root is the Aggregate itself.
	if n.Kind != plan.Aggregate {
		t.Fatalf("root:\n%s", n)
	}
	if len(n.GroupBy) != 1 || n.GroupBy[0].Key() != "C.name" {
		t.Errorf("group by: %v", n.GroupBy)
	}
	if len(n.Aggs) != 2 || n.Aggs[0].Name != "total" || n.Aggs[1].Name != "qty" {
		t.Errorf("aggs: %v", n.Aggs)
	}
	if n.Cols[0].Key() != "C.name" || n.Cols[1].Key() != "total" {
		t.Errorf("schema: %v", n.Cols)
	}
}

func TestBindAggregateExpressions(t *testing.T) {
	// Aggregate inside arithmetic requires a post-projection.
	n := mustBind(t, `SELECT SUM(O.totprice) / COUNT(*) AS avg_price FROM Orders O`)
	if n.Kind != plan.Project {
		t.Fatalf("root: %v\n%s", n.Kind, n)
	}
	agg := n.Children[0]
	if agg.Kind != plan.Aggregate || len(agg.Aggs) != 2 {
		t.Fatalf("agg: %v", agg)
	}
	if len(agg.GroupBy) != 0 {
		t.Error("global aggregation has no group by")
	}
	if n.Cols[0].Key() != "avg_price" {
		t.Errorf("output: %v", n.Cols)
	}
	// Duplicate aggregates are shared.
	n2 := mustBind(t, `SELECT SUM(O.totprice) AS a, SUM(O.totprice) * 2 AS b FROM Orders O`)
	agg2 := n2.Children[0]
	if len(agg2.Aggs) != 1 {
		t.Errorf("aggregate dedup: %v", agg2.Aggs)
	}
}

func TestBindAggregateValidation(t *testing.T) {
	cat := testCatalog()
	// Non-grouped column in select list.
	if _, err := ParseAndBind("SELECT C.name, SUM(C.acctbal) FROM Customer C GROUP BY C.mktseg", cat); err == nil {
		t.Error("non-grouped column must fail")
	}
	// Expression over non-grouped column.
	if _, err := ParseAndBind("SELECT C.acctbal + SUM(C.custkey) FROM Customer C GROUP BY C.mktseg", cat); err == nil {
		t.Error("expression over non-grouped column must fail")
	}
	// Plain expression with no aggregate alongside GROUP BY context is fine
	// when it is a group column.
	if _, err := ParseAndBind("SELECT C.mktseg FROM Customer C GROUP BY C.mktseg", cat); err != nil {
		t.Errorf("group column select: %v", err)
	}
}

func TestBindDerivedTable(t *testing.T) {
	n := mustBind(t, `SELECT X.total FROM (SELECT O.custkey, SUM(O.totprice) AS total FROM Orders O GROUP BY O.custkey) AS X WHERE X.total > 1000`)
	if n.Kind != plan.Project || n.Cols[0].Key() != "X.total" {
		t.Fatalf("root: %v\n%s", n.Cols, n)
	}
	// Filter over the renamed subquery.
	f := n.Children[0]
	if f.Kind != plan.Filter || !strings.Contains(f.Pred.String(), "X.total > 1000") {
		t.Errorf("filter: %v", f.Pred)
	}
	// Rename project present with alias X.
	ren := f.Children[0]
	if ren.Kind != plan.Project || ren.Cols[0].Key() != "X.custkey" {
		t.Errorf("rename: %v", ren.Cols)
	}
	if ren.Children[0].Kind != plan.Aggregate {
		t.Errorf("subquery agg:\n%s", n)
	}
}

func TestBindDerivedTableJoin(t *testing.T) {
	n := mustBind(t, `SELECT C.name, X.total
		FROM Customer C, (SELECT O.custkey AS ck, SUM(O.totprice) AS total FROM Orders O GROUP BY O.custkey) X
		WHERE C.custkey = X.ck`)
	if len(n.Cols) != 2 || n.Cols[1].Key() != "X.total" {
		t.Fatalf("cols: %v", n.Cols)
	}
}

func TestBindOrderByLimit(t *testing.T) {
	n := mustBind(t, "SELECT C.name FROM Customer C ORDER BY C.name DESC LIMIT 5")
	if n.Kind != plan.Limit || n.LimitN != 5 {
		t.Fatalf("limit root: %v", n.Kind)
	}
	s := n.Children[0]
	if s.Kind != plan.Sort || !s.SortKeys[0].Desc {
		t.Errorf("sort: %+v", s.SortKeys)
	}
	// Order by output alias.
	n = mustBind(t, "SELECT SUM(O.totprice) AS total FROM Orders O ORDER BY total")
	if n.Kind != plan.Sort {
		t.Fatalf("root: %v", n.Kind)
	}
}

func TestBindNoFrom(t *testing.T) {
	if _, err := ParseAndBind("SELECT 1 FROM", testCatalog()); err == nil {
		t.Error("missing FROM must fail")
	}
}
