package expr

import (
	"testing"
	"testing/quick"
)

func col(name string) *Col                { return NewCol("T", name) }
func cint(v int64) *Const                 { return NewConst(NewInt(v)) }
func cstr(s string) *Const                { return NewConst(NewString(s)) }
func cmp(op CmpOp, c string, v Expr) *Cmp { return NewCmp(op, col(c), v) }

func TestImpliesBasics(t *testing.T) {
	bGT15 := cmp(GT, "B", cint(15))
	bGT10 := cmp(GT, "B", cint(10))

	// Nil policy predicate (TRUE) is implied by everything.
	if !Implies(bGT15, nil) {
		t.Error("anything ⇒ TRUE")
	}
	// Nil query predicate implies only TRUE.
	if Implies(nil, bGT10) {
		t.Error("TRUE ⇏ B > 10")
	}
	if !Implies(nil, NewConst(NewBool(true))) {
		t.Error("TRUE ⇒ TRUE")
	}
	// Structural match.
	if !Implies(bGT10, bGT10) {
		t.Error("p ⇒ p")
	}
	// Range subsumption: B > 15 ⇒ B > 10 (the paper's e3 example).
	if !Implies(bGT15, bGT10) {
		t.Error("B>15 ⇒ B>10")
	}
	// But not the converse.
	if Implies(bGT10, bGT15) {
		t.Error("B>10 ⇏ B>15")
	}
}

func TestImpliesRangeOperators(t *testing.T) {
	cases := []struct {
		q, e Expr
		want bool
	}{
		{cmp(EQ, "A", cint(5)), cmp(GE, "A", cint(5)), true},
		{cmp(EQ, "A", cint(5)), cmp(GT, "A", cint(4)), true},
		{cmp(EQ, "A", cint(5)), cmp(GT, "A", cint(5)), false},
		{cmp(EQ, "A", cint(5)), cmp(LE, "A", cint(5)), true},
		{cmp(EQ, "A", cint(5)), cmp(NE, "A", cint(6)), true},
		{cmp(EQ, "A", cint(5)), cmp(NE, "A", cint(5)), false},
		{cmp(GE, "A", cint(5)), cmp(GT, "A", cint(4)), true},
		{cmp(GE, "A", cint(5)), cmp(GE, "A", cint(5)), true},
		{cmp(GT, "A", cint(5)), cmp(GE, "A", cint(5)), true},
		{cmp(GT, "A", cint(5)), cmp(GT, "A", cint(5)), true},
		{cmp(LT, "A", cint(5)), cmp(LE, "A", cint(5)), true},
		{cmp(LE, "A", cint(5)), cmp(LT, "A", cint(5)), false},
		{cmp(LT, "A", cint(5)), cmp(NE, "A", cint(5)), true},
		{cmp(GT, "A", cint(5)), cmp(NE, "A", cint(5)), true},
		{cmp(GT, "A", cint(4)), cmp(NE, "A", cint(5)), false},
		// Interval from two conjuncts.
		{NewAnd(cmp(GE, "A", cint(3)), cmp(LE, "A", cint(4))), NewBetween(col("A"), NewInt(1), NewInt(5)), true},
		{NewBetween(col("A"), NewInt(3), NewInt(4)), cmp(GT, "A", cint(2)), true},
		{NewBetween(col("A"), NewInt(3), NewInt(4)), cmp(GT, "A", cint(3)), false},
		// Equality pinning implies BETWEEN.
		{cmp(EQ, "A", cint(3)), NewBetween(col("A"), NewInt(1), NewInt(5)), true},
		// Flipped comparisons (const on the left).
		{NewCmp(LT, cint(10), col("A")), cmp(GT, "A", cint(5)), true},
	}
	for i, c := range cases {
		if got := Implies(c.q, c.e); got != c.want {
			t.Errorf("case %d: Implies(%s, %s) = %v, want %v", i, c.q, c.e, got, c.want)
		}
	}
}

func TestImpliesInAndLike(t *testing.T) {
	// eq value within IN list.
	if !Implies(cmp(EQ, "S", cstr("AUTO")), NewIn(col("S"), []Value{NewString("AUTO"), NewString("BUILDING")})) {
		t.Error("S='AUTO' ⇒ S IN ('AUTO','BUILDING')")
	}
	if Implies(cmp(EQ, "S", cstr("SHIP")), NewIn(col("S"), []Value{NewString("AUTO")})) {
		t.Error("S='SHIP' ⇏ S IN ('AUTO')")
	}
	// IN subset.
	if !Implies(NewIn(col("S"), []Value{NewString("A")}), NewIn(col("S"), []Value{NewString("A"), NewString("B")})) {
		t.Error("IN subset")
	}
	if Implies(NewIn(col("S"), []Value{NewString("A"), NewString("C")}), NewIn(col("S"), []Value{NewString("A"), NewString("B")})) {
		t.Error("IN non-subset")
	}
	// Equality satisfying LIKE.
	if !Implies(cmp(EQ, "S", cstr("COPPER TUBE")), NewLike(col("S"), "%COPPER%")) {
		t.Error("S='COPPER TUBE' ⇒ S LIKE '%COPPER%'")
	}
	if Implies(cmp(EQ, "S", cstr("BRASS")), NewLike(col("S"), "%COPPER%")) {
		t.Error("S='BRASS' ⇏ LIKE COPPER")
	}
	// Identical LIKE is a structural match.
	l := NewLike(col("S"), "%COPPER%")
	if !Implies(l, NewLike(col("S"), "%COPPER%")) {
		t.Error("LIKE self-implication")
	}
	// Different LIKE patterns are conservatively rejected.
	if Implies(NewLike(col("S"), "%COPPER PLATED%"), NewLike(col("S"), "%COPPER%")) {
		t.Error("pattern subsumption is out of scope (sound incompleteness)")
	}
}

func TestImpliesDisjunction(t *testing.T) {
	sizeGT40 := cmp(GT, "size", cint(40))
	copper := NewLike(col("type"), "%COPPER%")
	pe := NewOr(sizeGT40, copper) // e4's predicate from Table 3

	// Query pinning size > 50 implies the disjunction.
	if !Implies(cmp(GT, "size", cint(50)), pe) {
		t.Error("size>50 ⇒ size>40 OR type LIKE COPPER")
	}
	// Query with the LIKE conjunct implies it too.
	if !Implies(NewAnd(copper, cmp(EQ, "size", cint(1))), pe) {
		t.Error("type LIKE COPPER ⇒ disjunction")
	}
	// A query that guarantees neither does not imply it.
	if Implies(cmp(EQ, "size", cint(10)), pe) {
		t.Error("size=10 ⇏ disjunction")
	}
	// Disjunctive query predicate: every disjunct implies some disjunct.
	q := NewOr(cmp(GT, "size", cint(50)), cmp(EQ, "type", cstr("COPPER ROD")))
	if !Implies(q, pe) {
		t.Error("case-split disjunction implication")
	}
	q2 := NewOr(cmp(GT, "size", cint(50)), cmp(EQ, "type", cstr("BRASS ROD")))
	if Implies(q2, pe) {
		t.Error("one failing disjunct kills case split")
	}
}

func TestImpliesSoundIncompleteness(t *testing.T) {
	// The paper's example: Pq ≡ (A = 5 ∧ B = 3), Pe ≡ A + B = 8 fails.
	pq := NewAnd(cmp(EQ, "A", cint(5)), cmp(EQ, "B", cint(3)))
	pe := NewCmp(EQ, NewArith(Add, col("A"), col("B")), cint(8))
	if Implies(pq, pe) {
		t.Error("implication over arithmetic must (soundly) fail")
	}
}

func TestImpliesMultiConjunct(t *testing.T) {
	pq := AndAll(cmp(GT, "B", cint(15)), cmp(EQ, "mktseg", cstr("commercial")), cmp(LT, "B", cint(20)))
	pe := AndAll(cmp(GT, "B", cint(10)), cmp(EQ, "mktseg", cstr("commercial")))
	if !Implies(pq, pe) {
		t.Error("multi-conjunct implication")
	}
	pe2 := AndAll(cmp(GT, "B", cint(10)), cmp(EQ, "mktseg", cstr("retail")))
	if Implies(pq, pe2) {
		t.Error("mismatched equality must fail")
	}
}

func TestImpliesIsNotNull(t *testing.T) {
	// Any range constraint on a column implies IS NOT NULL.
	if !Implies(cmp(GT, "A", cint(1)), &IsNull{E: col("A"), Negated: true}) {
		t.Error("A>1 ⇒ A IS NOT NULL")
	}
	if Implies(cmp(GT, "B", cint(1)), &IsNull{E: col("A"), Negated: true}) {
		t.Error("B>1 ⇏ A IS NOT NULL")
	}
}

func TestImpliesUnsatisfiableQuery(t *testing.T) {
	// A contradictory query predicate implies anything (vacuous truth).
	pq := NewAnd(NewIn(col("A"), []Value{NewInt(1)}), NewIn(col("A"), []Value{NewInt(2)}))
	if !Implies(pq, cmp(EQ, "A", cint(99))) {
		t.Error("empty range implies anything")
	}
}

func TestImpliesSyntacticMode(t *testing.T) {
	bGT15 := cmp(GT, "B", cint(15))
	bGT10 := cmp(GT, "B", cint(10))
	if !ImpliesMode(bGT15, bGT15, ImplicationSyntactic) {
		t.Error("syntactic self-implication")
	}
	if ImpliesMode(bGT15, bGT10, ImplicationSyntactic) {
		t.Error("syntactic mode must not do range reasoning")
	}
	// Flipped structural match still allowed.
	if !ImpliesMode(NewCmp(LT, cint(15), col("B")), bGT15, ImplicationSyntactic) {
		t.Error("flipped structural match")
	}
}

// Property: soundness spot-check. If Implies(pq, pe) holds for randomly
// generated single-column integer range predicates, then every integer
// satisfying pq also satisfies pe.
func TestImpliesSoundnessProperty(t *testing.T) {
	mkPred := func(opSel uint8, v int8) Expr {
		ops := []CmpOp{EQ, LT, LE, GT, GE}
		return cmp(ops[int(opSel)%len(ops)], "A", cint(int64(v)))
	}
	f := func(op1, op2 uint8, v1, v2 int8, probe int8) bool {
		pq := mkPred(op1, v1)
		pe := mkPred(op2, v2)
		if !Implies(pq, pe) {
			return true // nothing to verify
		}
		row := Row{NewInt(int64(probe))}
		res := SliceResolver([]string{"T.A"})
		bq := MustBind(Clone(pq), res)
		be := MustBind(Clone(pe), res)
		qOK, _ := EvalBool(bq, row)
		eOK, _ := EvalBool(be, row)
		return !qOK || eOK // pq(x) → pe(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: conjoining extra conjuncts to the query predicate never
// breaks an implication (monotonicity).
func TestImpliesMonotonicityProperty(t *testing.T) {
	f := func(v1, v2, v3 int8) bool {
		pq := cmp(GT, "A", cint(int64(v1)))
		pe := cmp(GT, "A", cint(int64(v2)))
		if !Implies(pq, pe) {
			return true
		}
		stronger := NewAnd(pq, cmp(LT, "B", cint(int64(v3))))
		return Implies(stronger, pe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
