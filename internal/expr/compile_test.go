package expr

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// sliceSource adapts a plain row slice to the VecSource interface,
// building column vectors lazily like the executor's batch source does.
type sliceSource struct {
	rows  []Row
	types []Type
	vecs  []*Vec
	state []int8 // 0 unknown, 1 built, 2 not lane-pure
}

func (s *sliceSource) ColVec(idx int) (*Vec, bool) {
	if idx < 0 || idx >= len(s.types) {
		return nil, false
	}
	if s.vecs == nil {
		s.vecs = make([]*Vec, len(s.types))
		s.state = make([]int8, len(s.types))
	}
	switch s.state[idx] {
	case 1:
		return s.vecs[idx], true
	case 2:
		return nil, false
	}
	v := &Vec{}
	if !BuildColVec(s.rows, idx, s.types[idx], v) {
		s.state[idx] = 2
		return nil, false
	}
	s.vecs[idx] = v
	s.state[idx] = 1
	return v, true
}

func (s *sliceSource) Row(i int) Row { return s.rows[i] }
func (s *sliceSource) Len() int      { return len(s.rows) }

// valuesIdentical compares values structurally, with floats compared by
// bit pattern so NaN payloads and signed zeros must coincide too.
func valuesIdentical(a, b Value) bool {
	return a.T == b.T && a.Null == b.Null && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

var parityStrings = []string{"", "a", "abc", "bcd", "aabc", "zzz", "abcabc", "BRASS", "xbry"}

var parityPatterns = []string{"abc", "%b%", "a%", "%c", "%", "a_c", "_b_", "", "%ab%c%", "%BRASS", "ab%"}

func genValue(rng *rand.Rand, t Type) Value {
	if rng.Intn(10) == 0 {
		if rng.Intn(2) == 0 {
			return NullValue()
		}
		return TypedNull(t)
	}
	switch t {
	case TInt:
		return NewInt(int64(rng.Intn(20) - 10))
	case TFloat:
		switch rng.Intn(12) {
		case 0:
			return NewFloat(0)
		case 1:
			return NewFloat(math.Copysign(0, -1))
		case 2:
			return NewFloat(math.NaN())
		case 3:
			return NewFloat(math.Inf(1))
		default:
			return NewFloat(float64(rng.Intn(200)-100) / 4)
		}
	case TString:
		return NewString(parityStrings[rng.Intn(len(parityStrings))])
	case TBool:
		return NewBool(rng.Intn(2) == 0)
	case TDate:
		return NewDate(int64(rng.Intn(100000) - 50000))
	}
	return NullValue()
}

func genRows(rng *rand.Rand, types []Type, n int, impure bool) []Row {
	rows := make([]Row, n)
	for i := range rows {
		r := make(Row, len(types))
		for j, t := range types {
			if impure && rng.Intn(40) == 0 {
				// Break lane purity with a value of a different type.
				other := Type(1 + rng.Intn(5))
				r[j] = genValue(rng, other)
			} else {
				r[j] = genValue(rng, t)
			}
		}
		rows[i] = r
	}
	return rows
}

// exprGen builds random bound expressions over a column schema.
type exprGen struct {
	rng   *rand.Rand
	types []Type
}

func (g *exprGen) col() Expr {
	i := g.rng.Intn(len(g.types))
	return &Col{Table: "t", Name: fmt.Sprintf("c%d", i), Index: i}
}

func (g *exprGen) leaf() Expr {
	if g.rng.Intn(2) == 0 {
		return g.col()
	}
	t := Type(1 + g.rng.Intn(5))
	return NewConst(genValue(g.rng, t))
}

func (g *exprGen) anyExpr(d int) Expr {
	if d <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		return NewArith(ArithOp(g.rng.Intn(4)), g.anyExpr(d-1), g.anyExpr(d-1))
	case 2:
		return NewCall(ScalarFn(g.rng.Intn(4)), g.anyExpr(d-1))
	case 3:
		whens := []When{{Cond: g.boolExpr(d - 1), Result: g.anyExpr(d - 1)}}
		var els Expr
		if g.rng.Intn(2) == 0 {
			els = g.anyExpr(d - 1)
		}
		return NewCase(whens, els)
	case 4, 5, 6:
		return g.boolExpr(d)
	case 7:
		return NewConcat(g.anyExpr(d-1), g.anyExpr(d-1))
	}
	return g.leaf()
}

func (g *exprGen) boolExpr(d int) Expr {
	if d <= 0 {
		return NewCmp(EQ, g.leaf(), g.leaf())
	}
	switch g.rng.Intn(9) {
	case 0, 1:
		return NewCmp(CmpOp(g.rng.Intn(6)), g.anyExpr(d-1), g.anyExpr(d-1))
	case 2:
		return NewAnd(g.boolExpr(d-1), g.boolExpr(d-1))
	case 3:
		return NewOr(g.boolExpr(d-1), g.boolExpr(d-1))
	case 4:
		return NewNot(g.boolExpr(d - 1))
	case 5:
		l := &Like{E: g.anyExpr(d - 1), Pattern: parityPatterns[g.rng.Intn(len(parityPatterns))],
			Negated: g.rng.Intn(2) == 0}
		return l
	case 6:
		list := make([]Value, g.rng.Intn(4))
		for i := range list {
			list[i] = genValue(g.rng, Type(1+g.rng.Intn(5)))
		}
		return &In{E: g.anyExpr(d - 1), List: list, Negated: g.rng.Intn(2) == 0}
	case 7:
		t := Type(1 + g.rng.Intn(5))
		return NewBetween(g.anyExpr(d-1), genValue(g.rng, t), genValue(g.rng, t))
	}
	return &IsNull{E: g.anyExpr(d - 1), Negated: g.rng.Intn(2) == 0}
}

// checkKernelParity generates a random schema, batch and expressions from
// the seed and requires kernel evaluation to agree with the interpreter
// on every value and every null bit.
func checkKernelParity(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nCols := 1 + rng.Intn(5)
	types := make([]Type, nCols)
	for i := range types {
		types[i] = Type(1 + rng.Intn(5))
	}
	n := rng.Intn(150)
	impure := rng.Intn(8) == 0
	rows := genRows(rng, types, n, impure)
	g := &exprGen{rng: rng, types: types}

	for round := 0; round < 6; round++ {
		e := g.anyExpr(3)
		kern, ok := Compile(e, types)
		if ok {
			src := &sliceSource{rows: rows, types: types}
			vec, err := kern.EvalVec(src, nil)
			var iErr error
			want := make([]Value, len(rows))
			for i, r := range rows {
				v, verr := Eval(e, r)
				if verr != nil {
					iErr = verr
					break
				}
				want[i] = v
			}
			switch {
			case errors.Is(err, ErrNotVectorizable):
				// Batch not lane-pure: the caller re-runs the interpreter.
			case iErr != nil:
				if err == nil {
					t.Fatalf("seed %d: interpreter failed (%v) but kernel succeeded for %s", seed, iErr, e)
				}
			case err != nil:
				// Kernels evaluate eagerly, so they may surface an error the
				// interpreter's short-circuit evaluation skipped. Acceptable.
			default:
				for i := range rows {
					got := vec.Value(i)
					if !valuesIdentical(got, want[i]) {
						t.Fatalf("seed %d row %d: kernel %#v, interpreter %#v for %s",
							seed, i, got, want[i], e)
					}
					if gk, wk := vec.AppendKeyAt(nil, i), AppendKey(nil, want[i]); !bytes.Equal(gk, wk) {
						t.Fatalf("seed %d row %d: key encodings differ (%x vs %x) for %s",
							seed, i, gk, wk, e)
					}
					if gh, wh := vec.HashAt(i), want[i].Hash(); gh != wh {
						t.Fatalf("seed %d row %d: hash %d vs %d for %s", seed, i, gh, wh, e)
					}
				}
			}
		}

		p := g.boolExpr(3)
		pk, ok := CompilePred(p, types)
		if !ok {
			continue
		}
		var want []int32
		interpOK := true
		for i, r := range rows {
			keep, verr := EvalBool(p, r)
			if verr != nil {
				interpOK = false
				break
			}
			if keep {
				want = append(want, int32(i))
			}
		}
		if !interpOK {
			continue
		}
		src := &sliceSource{rows: rows, types: types}
		got, err := pk.Select(src, nil, make([]int32, len(rows)))
		if err != nil {
			// Lane-impure batch or an eagerly-surfaced error; the engine
			// falls back to the interpreter in both cases.
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: Select kept %d rows, interpreter %d for %s", seed, len(got), len(want), p)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: Select row %d = %d, want %d for %s", seed, i, got[i], want[i], p)
			}
		}
		// Selection-vector input: filtering a subset must equal the
		// subset-filtered interpreter verdicts, compacted in place.
		if len(rows) > 1 {
			var sub []int32
			for i := range rows {
				if rng.Intn(2) == 0 {
					sub = append(sub, int32(i))
				}
			}
			var wantSub []int32
			for _, si := range sub {
				keep, verr := EvalBool(p, rows[si])
				if verr == nil && keep {
					wantSub = append(wantSub, si)
				}
			}
			src2 := &sliceSource{rows: rows, types: types}
			// The copy must stay non-nil when the subset is empty: a
			// nil selection means "all rows", an empty one means none.
			subCopy := make([]int32, len(sub))
			copy(subCopy, sub)
			gotSub, err := pk.Select(src2, subCopy, nil)
			if err != nil {
				continue
			}
			if len(gotSub) != len(wantSub) {
				t.Logf("sub=%v", sub)
				t.Logf("gotSub=%v", gotSub)
				t.Logf("wantSub=%v", wantSub)
				for _, si := range sub {
					v, verr := Eval(p, rows[si])
					t.Logf("row %d: %v (err %v) row=%v", si, v, verr, rows[si])
				}
				t.Fatalf("seed %d: subset Select kept %d rows, want %d for %s",
					seed, len(gotSub), len(wantSub), p)
			}
			for i := range gotSub {
				if gotSub[i] != wantSub[i] {
					t.Fatalf("seed %d: subset Select row %d = %d, want %d for %s",
						seed, i, gotSub[i], wantSub[i], p)
				}
			}
		}
	}
}

// TestKernelParityRandom runs the parity check over a fixed spread of
// seeds on every test run; FuzzKernelParity explores further.
func TestKernelParityRandom(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		checkKernelParity(t, seed)
	}
}

// FuzzKernelParity is the satellite fuzz target: kernel and interpreter
// must agree (value and null-ness) on randomized expressions & batches.
func FuzzKernelParity(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkKernelParity(t, seed)
	})
}

// TestKernelKleeneLogic pins the three-valued logic tables through the
// kernel path: NULL AND FALSE = FALSE, NULL OR TRUE = TRUE, etc.
func TestKernelKleeneLogic(t *testing.T) {
	types := []Type{TBool, TBool}
	rows := []Row{
		{NewBool(true), NewBool(true)},
		{NewBool(true), NewBool(false)},
		{NewBool(true), TypedNull(TBool)},
		{NewBool(false), NewBool(false)},
		{NewBool(false), TypedNull(TBool)},
		{TypedNull(TBool), TypedNull(TBool)},
	}
	a := &Col{Name: "a", Index: 0}
	b := &Col{Name: "b", Index: 1}
	for _, e := range []Expr{NewAnd(a, b), NewOr(a, b), NewNot(a)} {
		kern, ok := Compile(e, types)
		if !ok {
			t.Fatalf("Compile(%s) not vectorized", e)
		}
		src := &sliceSource{rows: rows, types: types}
		vec, err := kern.EvalVec(src, nil)
		if err != nil {
			t.Fatalf("EvalVec(%s): %v", e, err)
		}
		for i, r := range rows {
			want, err := Eval(e, r)
			if err != nil {
				t.Fatal(err)
			}
			if got := vec.Value(i); !valuesIdentical(got, want) {
				t.Fatalf("%s row %d: kernel %#v, interpreter %#v", e, i, got, want)
			}
		}
	}
}

// TestKernelFallbackImpureBatch checks that a batch holding values
// outside the declared column type reports ErrNotVectorizable instead
// of producing wrong results.
func TestKernelFallbackImpureBatch(t *testing.T) {
	types := []Type{TInt}
	rows := []Row{{NewInt(1)}, {NewString("oops")}, {NewInt(3)}}
	e := NewCmp(GT, &Col{Name: "c0", Index: 0}, NewConst(NewInt(1)))
	kern, ok := Compile(e, types)
	if !ok {
		t.Fatal("Compile not vectorized")
	}
	src := &sliceSource{rows: rows, types: types}
	if _, err := kern.EvalVec(src, nil); !errors.Is(err, ErrNotVectorizable) {
		t.Fatalf("EvalVec error = %v, want ErrNotVectorizable", err)
	}
}

// TestKernelDivisionByZero pins x/0 -> NULL through the kernel.
func TestKernelDivisionByZero(t *testing.T) {
	types := []Type{TFloat, TFloat}
	rows := []Row{{NewFloat(4), NewFloat(2)}, {NewFloat(4), NewFloat(0)}, {NewFloat(4), NewFloat(math.Copysign(0, -1))}}
	e := NewArith(Div, &Col{Name: "a", Index: 0}, &Col{Name: "b", Index: 1})
	kern, ok := Compile(e, types)
	if !ok {
		t.Fatal("Compile not vectorized")
	}
	src := &sliceSource{rows: rows, types: types}
	vec, err := kern.EvalVec(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := vec.Value(0); !valuesIdentical(got, NewFloat(2)) {
		t.Fatalf("4/2 = %#v", got)
	}
	for i := 1; i < 3; i++ {
		if got := vec.Value(i); !valuesIdentical(got, TypedNull(TFloat)) {
			t.Fatalf("4/0 row %d = %#v, want NULL::float", i, got)
		}
	}
}
