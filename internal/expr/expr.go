package expr

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression tree node. Expressions are immutable once
// built; rewrites (such as column binding) return new trees.
type Expr interface {
	// String renders the expression in SQL-ish syntax.
	String() string
	// Children returns the direct scalar sub-expressions.
	Children() []Expr
	// Equal reports structural equality.
	Equal(Expr) bool
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator (e.g. < becomes >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

// Flip returns the operator with sides exchanged (a < b  ==  b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// AggFn enumerates aggregate functions.
type AggFn int

// Aggregate functions supported by the engine and by aggregate policy
// expressions (Section 4.2).
const (
	AggSum AggFn = iota
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate function.
func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "?"
}

// ParseAggFn resolves an aggregate function name (case-insensitive).
func ParseAggFn(name string) (AggFn, error) {
	switch strings.ToUpper(name) {
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "COUNT":
		return AggCount, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	}
	return 0, fmt.Errorf("expr: unknown aggregate function %q", name)
}

// Col is a column reference. Table holds the (possibly aliased) qualifier
// and Name the column name. Index is the position of the column in the
// input row; it is -1 until the expression is bound to a schema.
type Col struct {
	Table string
	Name  string
	Index int
}

// NewCol returns an unbound column reference.
func NewCol(table, name string) *Col { return &Col{Table: table, Name: name, Index: -1} }

// String renders the qualified column name.
func (c *Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Children returns no children; columns are leaves.
func (c *Col) Children() []Expr { return nil }

// Equal reports structural equality. Binding indexes are ignored so that a
// bound and an unbound reference to the same column compare equal.
func (c *Col) Equal(o Expr) bool {
	oc, ok := o.(*Col)
	return ok && oc.Table == c.Table && oc.Name == c.Name
}

// Key returns the qualified name used for schema resolution.
func (c *Col) Key() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Const is a literal value.
type Const struct{ Val Value }

// NewConst wraps a value as a literal expression.
func NewConst(v Value) *Const { return &Const{Val: v} }

// String renders the literal.
func (c *Const) String() string { return c.Val.String() }

// Children returns no children; literals are leaves.
func (c *Const) Children() []Expr { return nil }

// Equal reports structural equality.
func (c *Const) Equal(o Expr) bool {
	oc, ok := o.(*Const)
	return ok && oc.Val.Equal(c.Val)
}

// Cmp is a binary comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison node.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// String renders the comparison.
func (c *Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }

// Children returns both operands.
func (c *Cmp) Children() []Expr { return []Expr{c.L, c.R} }

// Equal reports structural equality (no commutative normalization).
func (c *Cmp) Equal(o Expr) bool {
	oc, ok := o.(*Cmp)
	return ok && oc.Op == c.Op && oc.L.Equal(c.L) && oc.R.Equal(c.R)
}

// And is a binary conjunction.
type And struct{ L, R Expr }

// NewAnd builds a conjunction node.
func NewAnd(l, r Expr) *And { return &And{L: l, R: r} }

// String renders the conjunction.
func (a *And) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }

// Children returns both conjuncts.
func (a *And) Children() []Expr { return []Expr{a.L, a.R} }

// Equal reports structural equality.
func (a *And) Equal(o Expr) bool {
	oa, ok := o.(*And)
	return ok && oa.L.Equal(a.L) && oa.R.Equal(a.R)
}

// Or is a binary disjunction.
type Or struct{ L, R Expr }

// NewOr builds a disjunction node.
func NewOr(l, r Expr) *Or { return &Or{L: l, R: r} }

// String renders the disjunction.
func (a *Or) String() string { return fmt.Sprintf("(%s OR %s)", a.L, a.R) }

// Children returns both disjuncts.
func (a *Or) Children() []Expr { return []Expr{a.L, a.R} }

// Equal reports structural equality.
func (a *Or) Equal(o Expr) bool {
	oa, ok := o.(*Or)
	return ok && oa.L.Equal(a.L) && oa.R.Equal(a.R)
}

// Not is a logical negation.
type Not struct{ E Expr }

// NewNot builds a negation node.
func NewNot(e Expr) *Not { return &Not{E: e} }

// String renders the negation.
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Children returns the negated expression.
func (n *Not) Children() []Expr { return []Expr{n.E} }

// Equal reports structural equality.
func (n *Not) Equal(o Expr) bool {
	on, ok := o.(*Not)
	return ok && on.E.Equal(n.E)
}

// Arith is a binary arithmetic expression L op R.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// String renders the arithmetic expression.
func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Children returns both operands.
func (a *Arith) Children() []Expr { return []Expr{a.L, a.R} }

// Equal reports structural equality.
func (a *Arith) Equal(o Expr) bool {
	oa, ok := o.(*Arith)
	return ok && oa.Op == a.Op && oa.L.Equal(a.L) && oa.R.Equal(a.R)
}

// Concat is string concatenation L || R. Both operands must evaluate
// to strings; a NULL operand yields a NULL result.
type Concat struct{ L, R Expr }

// NewConcat builds a concatenation node.
func NewConcat(l, r Expr) *Concat { return &Concat{L: l, R: r} }

// String renders the concatenation.
func (c *Concat) String() string { return fmt.Sprintf("(%s || %s)", c.L, c.R) }

// Children returns both operands.
func (c *Concat) Children() []Expr { return []Expr{c.L, c.R} }

// Equal reports structural equality.
func (c *Concat) Equal(o Expr) bool {
	oc, ok := o.(*Concat)
	return ok && oc.L.Equal(c.L) && oc.R.Equal(c.R)
}

// Like is a SQL LIKE predicate with % and _ wildcards (no escapes).
type Like struct {
	E       Expr
	Pattern string
	Negated bool
}

// NewLike builds a LIKE predicate.
func NewLike(e Expr, pattern string) *Like { return &Like{E: e, Pattern: pattern} }

// String renders the predicate.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negated {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.E, op, l.Pattern)
}

// Children returns the matched expression.
func (l *Like) Children() []Expr { return []Expr{l.E} }

// Equal reports structural equality.
func (l *Like) Equal(o Expr) bool {
	ol, ok := o.(*Like)
	return ok && ol.Pattern == l.Pattern && ol.Negated == l.Negated && ol.E.Equal(l.E)
}

// In is a SQL IN (value list) predicate.
type In struct {
	E       Expr
	List    []Value
	Negated bool
}

// NewIn builds an IN predicate.
func NewIn(e Expr, list []Value) *In { return &In{E: e, List: list} }

// String renders the predicate.
func (i *In) String() string {
	parts := make([]string, len(i.List))
	for k, v := range i.List {
		parts[k] = v.String()
	}
	op := "IN"
	if i.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", i.E, op, strings.Join(parts, ", "))
}

// Children returns the tested expression.
func (i *In) Children() []Expr { return []Expr{i.E} }

// Equal reports structural equality.
func (i *In) Equal(o Expr) bool {
	oi, ok := o.(*In)
	if !ok || oi.Negated != i.Negated || len(oi.List) != len(i.List) || !oi.E.Equal(i.E) {
		return false
	}
	for k := range i.List {
		if !oi.List[k].Equal(i.List[k]) {
			return false
		}
	}
	return true
}

// Between is a SQL BETWEEN predicate (inclusive bounds).
type Between struct {
	E      Expr
	Lo, Hi Value
}

// NewBetween builds a BETWEEN predicate.
func NewBetween(e Expr, lo, hi Value) *Between { return &Between{E: e, Lo: lo, Hi: hi} }

// String renders the predicate.
func (b *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.E, b.Lo, b.Hi)
}

// Children returns the tested expression.
func (b *Between) Children() []Expr { return []Expr{b.E} }

// Equal reports structural equality.
func (b *Between) Equal(o Expr) bool {
	ob, ok := o.(*Between)
	return ok && ob.Lo.Equal(b.Lo) && ob.Hi.Equal(b.Hi) && ob.E.Equal(b.E)
}

// IsNull is a SQL IS [NOT] NULL predicate.
type IsNull struct {
	E       Expr
	Negated bool
}

// NewIsNull builds an IS NULL predicate.
func NewIsNull(e Expr) *IsNull { return &IsNull{E: e} }

// String renders the predicate.
func (n *IsNull) String() string {
	if n.Negated {
		return fmt.Sprintf("%s IS NOT NULL", n.E)
	}
	return fmt.Sprintf("%s IS NULL", n.E)
}

// Children returns the tested expression.
func (n *IsNull) Children() []Expr { return []Expr{n.E} }

// Equal reports structural equality.
func (n *IsNull) Equal(o Expr) bool {
	on, ok := o.(*IsNull)
	return ok && on.Negated == n.Negated && on.E.Equal(n.E)
}

// Agg is an aggregate call such as SUM(extendedprice * (1 - discount)).
// Agg nodes appear only in aggregate operator definitions and in the
// output lists of aggregating queries, never below a comparison.
type Agg struct {
	Fn  AggFn
	Arg Expr // nil for COUNT(*)
}

// NewAgg builds an aggregate call.
func NewAgg(fn AggFn, arg Expr) *Agg { return &Agg{Fn: fn, Arg: arg} }

// String renders the aggregate call.
func (a *Agg) String() string {
	if a.Arg == nil {
		return a.Fn.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Fn, a.Arg)
}

// Children returns the aggregated expression, if any.
func (a *Agg) Children() []Expr {
	if a.Arg == nil {
		return nil
	}
	return []Expr{a.Arg}
}

// Equal reports structural equality.
func (a *Agg) Equal(o Expr) bool {
	oa, ok := o.(*Agg)
	if !ok || oa.Fn != a.Fn {
		return false
	}
	if (a.Arg == nil) != (oa.Arg == nil) {
		return false
	}
	return a.Arg == nil || oa.Arg.Equal(a.Arg)
}

// AndAll folds a slice of predicates into a conjunction; nil for empty.
func AndAll(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = NewAnd(out, p)
		}
	}
	return out
}

// Conjuncts flattens nested ANDs into a conjunct list. A nil expression
// yields no conjuncts (i.e. TRUE).
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// Disjuncts flattens nested ORs into a disjunct list.
func Disjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if o, ok := e.(*Or); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Expr{e}
}

// Walk calls fn for every node in the expression tree (pre-order). fn
// returning false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Columns returns the distinct column references in the expression, in
// first-appearance order.
func Columns(e Expr) []*Col {
	var out []*Col
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*Col); ok && !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
		return true
	})
	return out
}

// ContainsAgg reports whether the expression contains an aggregate call.
func ContainsAgg(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if _, ok := n.(*Agg); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// Transform rebuilds the expression bottom-up, applying fn to every node.
// fn receives a node whose children have already been transformed and
// returns its replacement.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Col:
		cp := *n
		return fn(&cp)
	case *Const:
		cp := *n
		return fn(&cp)
	case *Cmp:
		return fn(&Cmp{Op: n.Op, L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *And:
		return fn(&And{L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Or:
		return fn(&Or{L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Not:
		return fn(&Not{E: Transform(n.E, fn)})
	case *Arith:
		return fn(&Arith{Op: n.Op, L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Concat:
		return fn(&Concat{L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Like:
		return fn(&Like{E: Transform(n.E, fn), Pattern: n.Pattern, Negated: n.Negated})
	case *In:
		return fn(&In{E: Transform(n.E, fn), List: n.List, Negated: n.Negated})
	case *Between:
		return fn(&Between{E: Transform(n.E, fn), Lo: n.Lo, Hi: n.Hi})
	case *IsNull:
		return fn(&IsNull{E: Transform(n.E, fn), Negated: n.Negated})
	case *Agg:
		return fn(&Agg{Fn: n.Fn, Arg: Transform(n.Arg, fn)})
	case *Call:
		return fn(&Call{Fn: n.Fn, Arg: Transform(n.Arg, fn)})
	case *Case:
		whens := make([]When, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = When{Cond: Transform(w.Cond, fn), Result: Transform(w.Result, fn)}
		}
		var els Expr
		if n.Else != nil {
			els = Transform(n.Else, fn)
		}
		return fn(&Case{Whens: whens, Else: els})
	}
	return fn(e)
}

// Clone deep-copies the expression tree.
func Clone(e Expr) Expr { return Transform(e, func(n Expr) Expr { return n }) }
