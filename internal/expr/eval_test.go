package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

// testRow builds a row and a resolver over the given column keys.
func testRow(keys []string, vals ...Value) (Row, Resolver) {
	return Row(vals), SliceResolver(keys)
}

func mustEval(t *testing.T, e Expr, row Row) Value {
	t.Helper()
	v, err := Eval(e, row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestEvalColAndConst(t *testing.T) {
	row, res := testRow([]string{"t.a", "t.b"}, NewInt(10), NewString("x"))
	e := MustBind(NewCol("t", "a"), res)
	if v := mustEval(t, e, row); v.Int() != 10 {
		t.Errorf("col eval: %v", v)
	}
	if v := mustEval(t, NewConst(NewInt(7)), row); v.Int() != 7 {
		t.Errorf("const eval: %v", v)
	}
}

func TestEvalComparisonsAllOps(t *testing.T) {
	row, res := testRow([]string{"t.a"}, NewInt(5))
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 4, false},
		{NE, 4, true}, {NE, 5, false},
		{LT, 6, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 4, false},
		{GT, 4, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 6, false},
	}
	for _, c := range cases {
		e := MustBind(NewCmp(c.op, NewCol("t", "a"), NewConst(NewInt(c.rhs))), res)
		if got := mustEval(t, e, row).Bool(); got != c.want {
			t.Errorf("5 %s %d = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestEvalNullSemantics(t *testing.T) {
	row, res := testRow([]string{"t.a", "t.b"}, TypedNull(TInt), NewBool(true))
	// NULL = 5 is NULL.
	e := MustBind(NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(5))), res)
	if v := mustEval(t, e, row); !v.IsNull() {
		t.Errorf("NULL = 5 should be NULL, got %v", v)
	}
	// NULL AND FALSE is FALSE.
	f := MustBind(NewAnd(NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(5))), NewConst(NewBool(false))), res)
	if v := mustEval(t, f, row); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND FALSE should be FALSE, got %v", v)
	}
	// NULL OR TRUE is TRUE.
	g := MustBind(NewOr(NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(5))), NewConst(NewBool(true))), res)
	if v := mustEval(t, g, row); !v.Bool() {
		t.Errorf("NULL OR TRUE should be TRUE, got %v", v)
	}
	// NOT NULL is NULL.
	h := MustBind(NewNot(NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(5)))), res)
	if v := mustEval(t, h, row); !v.IsNull() {
		t.Errorf("NOT NULL should be NULL, got %v", v)
	}
	// EvalBool collapses NULL to false.
	ok, err := EvalBool(e, row)
	if err != nil || ok {
		t.Errorf("EvalBool(NULL) = %v, %v", ok, err)
	}
	// IS NULL / IS NOT NULL.
	in := MustBind(NewIsNull(NewCol("t", "a")), res)
	if !mustEval(t, in, row).Bool() {
		t.Error("IS NULL on NULL should be TRUE")
	}
	inn := MustBind(&IsNull{E: NewCol("t", "a"), Negated: true}, res)
	if mustEval(t, inn, row).Bool() {
		t.Error("IS NOT NULL on NULL should be FALSE")
	}
}

func TestEvalArithmetic(t *testing.T) {
	row, res := testRow([]string{"t.a", "t.b"}, NewInt(6), NewFloat(1.5))
	cases := []struct {
		e    Expr
		want float64
	}{
		{NewArith(Add, NewCol("t", "a"), NewConst(NewInt(2))), 8},
		{NewArith(Sub, NewCol("t", "a"), NewConst(NewInt(2))), 4},
		{NewArith(Mul, NewCol("t", "a"), NewConst(NewInt(2))), 12},
		{NewArith(Div, NewCol("t", "a"), NewConst(NewInt(2))), 3},
		{NewArith(Mul, NewCol("t", "b"), NewConst(NewInt(4))), 6},
		{NewArith(Mul, NewCol("t", "a"), NewArith(Sub, NewConst(NewInt(1)), NewCol("t", "b"))), -3},
	}
	for _, c := range cases {
		e := MustBind(c.e, res)
		if got := mustEval(t, e, row).Float(); got != c.want {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
	// Integer ops stay integral.
	e := MustBind(NewArith(Add, NewCol("t", "a"), NewConst(NewInt(1))), res)
	if v := mustEval(t, e, row); v.T != TInt || v.Int() != 7 {
		t.Errorf("int add: %v", v)
	}
	// Division by zero yields NULL.
	z := MustBind(NewArith(Div, NewCol("t", "a"), NewConst(NewInt(0))), res)
	if v := mustEval(t, z, row); !v.IsNull() {
		t.Errorf("div by zero should be NULL, got %v", v)
	}
}

func TestEvalLike(t *testing.T) {
	row, res := testRow([]string{"t.s"}, NewString("COPPER PLATED"))
	cases := []struct {
		pat  string
		want bool
	}{
		{"%COPPER%", true},
		{"COPPER%", true},
		{"%PLATED", true},
		{"COPPER PLATED", true},
		{"C_PPER%", true},
		{"%BRASS%", false},
		{"copper%", false}, // case-sensitive
		{"%", true},
		{"", false},
	}
	for _, c := range cases {
		e := MustBind(NewLike(NewCol("t", "s"), c.pat), res)
		if got := mustEval(t, e, row).Bool(); got != c.want {
			t.Errorf("LIKE %q = %v, want %v", c.pat, got, c.want)
		}
	}
	neg := MustBind(&Like{E: NewCol("t", "s"), Pattern: "%BRASS%", Negated: true}, res)
	if !mustEval(t, neg, row).Bool() {
		t.Error("NOT LIKE should be TRUE")
	}
}

func TestMatchLikeEdgeCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"a", "_", true},
		{"ab", "_", false},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abcd", "a%c", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%pi", true},
		{"mississippi", "%iss%pz", false},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: a string always matches itself and pattern "%"+s+"%".
func TestMatchLikeSelfProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true // wildcards in the value change semantics; skip
		}
		return MatchLike(s, s) && MatchLike(s, "%"+s+"%") && MatchLike("x"+s+"y", "%"+s+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalInBetween(t *testing.T) {
	row, res := testRow([]string{"t.a"}, NewInt(5))
	in := MustBind(NewIn(NewCol("t", "a"), []Value{NewInt(1), NewInt(5)}), res)
	if !mustEval(t, in, row).Bool() {
		t.Error("5 IN (1,5)")
	}
	nin := MustBind(&In{E: NewCol("t", "a"), List: []Value{NewInt(1)}, Negated: true}, res)
	if !mustEval(t, nin, row).Bool() {
		t.Error("5 NOT IN (1)")
	}
	bt := MustBind(NewBetween(NewCol("t", "a"), NewInt(1), NewInt(5)), res)
	if !mustEval(t, bt, row).Bool() {
		t.Error("5 BETWEEN 1 AND 5")
	}
	bt2 := MustBind(NewBetween(NewCol("t", "a"), NewInt(6), NewInt(9)), res)
	if mustEval(t, bt2, row).Bool() {
		t.Error("5 BETWEEN 6 AND 9 should be FALSE")
	}
}

func TestBindErrors(t *testing.T) {
	_, res := testRow([]string{"t.a"}, NewInt(1))
	if _, err := Bind(NewCol("t", "missing"), res); err == nil {
		t.Error("expected bind error for unknown column")
	}
	if _, err := Bind(NewCol("u", "a"), res); err == nil {
		t.Error("expected bind error for unknown qualifier")
	}
	// Unqualified resolution works when unambiguous.
	e, err := Bind(NewCol("", "a"), res)
	if err != nil {
		t.Fatalf("unqualified bind: %v", err)
	}
	if e.(*Col).Index != 0 {
		t.Errorf("unqualified bind index = %d", e.(*Col).Index)
	}
	// Ambiguous unqualified reference fails.
	res2 := SliceResolver([]string{"t.a", "u.a"})
	if _, err := Bind(NewCol("", "a"), res2); err == nil {
		t.Error("expected ambiguity error")
	}
}

func TestEvalAggregateErrors(t *testing.T) {
	row := Row{NewInt(1)}
	if _, err := Eval(NewAgg(AggSum, &Col{Name: "a", Index: 0}), row); err == nil {
		t.Error("aggregates must not evaluate row-wise")
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	a := NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(1)))
	b := NewCmp(EQ, NewCol("t", "b"), NewConst(NewInt(2)))
	c := NewCmp(EQ, NewCol("t", "c"), NewConst(NewInt(3)))
	and := NewAnd(NewAnd(a, b), c)
	if got := Conjuncts(and); len(got) != 3 {
		t.Errorf("Conjuncts: %d", len(got))
	}
	or := NewOr(a, NewOr(b, c))
	if got := Disjuncts(or); len(got) != 3 {
		t.Errorf("Disjuncts: %d", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil)")
	}
	if AndAll() != nil {
		t.Error("AndAll() should be nil")
	}
	if !AndAll(a).Equal(a) {
		t.Error("AndAll(a) = a")
	}
	if _, ok := AndAll(a, b).(*And); !ok {
		t.Error("AndAll(a,b) should be And")
	}
}

func TestColumnsAndWalk(t *testing.T) {
	e := NewAnd(
		NewCmp(EQ, NewCol("t", "a"), NewCol("u", "b")),
		NewCmp(GT, NewCol("t", "a"), NewConst(NewInt(1))),
	)
	cols := Columns(e)
	if len(cols) != 2 {
		t.Fatalf("Columns: got %d, want 2", len(cols))
	}
	if cols[0].Key() != "t.a" || cols[1].Key() != "u.b" {
		t.Errorf("Columns order: %v, %v", cols[0].Key(), cols[1].Key())
	}
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	if count != 7 {
		t.Errorf("Walk visited %d nodes, want 7", count)
	}
}

func TestContainsAgg(t *testing.T) {
	plain := NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(1)))
	if ContainsAgg(plain) {
		t.Error("plain expr has no agg")
	}
	agg := NewArith(Mul, NewAgg(AggSum, NewCol("t", "a")), NewConst(NewInt(2)))
	if !ContainsAgg(agg) {
		t.Error("agg expr should report true")
	}
}

func TestTransformAndClone(t *testing.T) {
	orig := NewAnd(
		NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(1))),
		NewLike(NewCol("t", "s"), "x%"),
	)
	cl := Clone(orig)
	if !cl.Equal(orig) {
		t.Error("clone not equal")
	}
	// Mutating the clone's columns must not affect the original.
	cl.(*And).L.(*Cmp).L.(*Col).Index = 99
	if orig.L.(*Cmp).L.(*Col).Index == 99 {
		t.Error("clone aliases original")
	}
	// Transform replaces constants.
	doubled := Transform(orig, func(n Expr) Expr {
		if c, ok := n.(*Const); ok && c.Val.T == TInt {
			return NewConst(NewInt(c.Val.Int() * 2))
		}
		return n
	})
	if doubled.(*And).L.(*Cmp).R.(*Const).Val.Int() != 2 {
		t.Error("transform did not double constant")
	}
}

func TestExprStringRendering(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, NewCol("o", "total"), NewConst(NewFloat(100))),
		NewOr(NewLike(NewCol("c", "name"), "A%"), NewIn(NewCol("c", "seg"), []Value{NewString("AUTO")})),
	)
	s := e.String()
	for _, want := range []string{"o.total > 100", "c.name LIKE 'A%'", "c.seg IN ('AUTO')", "AND", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	a := NewAgg(AggSum, NewArith(Mul, NewCol("l", "price"), NewArith(Sub, NewConst(NewInt(1)), NewCol("l", "disc"))))
	if got := a.String(); got != "SUM((l.price * (1 - l.disc)))" {
		t.Errorf("agg string: %q", got)
	}
	if NewAgg(AggCount, nil).String() != "COUNT(*)" {
		t.Error("COUNT(*) rendering")
	}
}

func TestTypeOf(t *testing.T) {
	ct := func(c *Col) Type {
		if c.Name == "f" {
			return TFloat
		}
		return TInt
	}
	if TypeOf(NewArith(Add, NewCol("t", "a"), NewCol("t", "b")), ct) != TInt {
		t.Error("int + int = int")
	}
	if TypeOf(NewArith(Add, NewCol("t", "a"), NewCol("t", "f")), ct) != TFloat {
		t.Error("int + float = float")
	}
	if TypeOf(NewArith(Div, NewCol("t", "a"), NewCol("t", "b")), ct) != TFloat {
		t.Error("div = float")
	}
	if TypeOf(NewAgg(AggCount, nil), ct) != TInt {
		t.Error("count = int")
	}
	if TypeOf(NewAgg(AggAvg, NewCol("t", "a")), ct) != TFloat {
		t.Error("avg = float")
	}
	if TypeOf(NewAgg(AggMin, NewCol("t", "f")), ct) != TFloat {
		t.Error("min preserves type")
	}
	if TypeOf(NewCmp(EQ, NewCol("t", "a"), NewConst(NewInt(1))), ct) != TBool {
		t.Error("cmp = bool")
	}
}

func TestParseAggFn(t *testing.T) {
	for name, want := range map[string]AggFn{"sum": AggSum, "AVG": AggAvg, "Count": AggCount, "min": AggMin, "max": AggMax} {
		got, err := ParseAggFn(name)
		if err != nil || got != want {
			t.Errorf("ParseAggFn(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAggFn("median"); err == nil {
		t.Error("expected error for unknown aggregate")
	}
}

func TestCmpOpHelpers(t *testing.T) {
	if LT.Negate() != GE || EQ.Negate() != NE || GT.Negate() != LE {
		t.Error("Negate")
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Error("Flip")
	}
}

// Property: EvalBool(p AND q) == EvalBool(p) && EvalBool(q) for non-NULL rows.
func TestAndConjunctionProperty(t *testing.T) {
	f := func(a, b int8, ta, tb int8) bool {
		row, res := testRow([]string{"t.a", "t.b"}, NewInt(int64(a)), NewInt(int64(b)))
		p := MustBind(NewCmp(GT, NewCol("t", "a"), NewConst(NewInt(int64(ta)))), res)
		q := MustBind(NewCmp(LE, NewCol("t", "b"), NewConst(NewInt(int64(tb)))), res)
		pq := NewAnd(p, q)
		x, _ := EvalBool(pq, row)
		y1, _ := EvalBool(p, row)
		y2, _ := EvalBool(q, row)
		return x == (y1 && y2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
