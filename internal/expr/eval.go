package expr

import (
	"fmt"
	"strings"
)

// Row is a tuple of scalar values produced by an operator.
type Row []Value

// Width returns the estimated encoded width of the row in bytes.
func (r Row) Width() int {
	w := 0
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Resolver maps a column reference to an index in the input row. ok is
// false when the column cannot be resolved.
type Resolver func(table, name string) (int, bool)

// Bind returns a copy of e with every column reference's Index resolved
// through the resolver. It fails when any column cannot be resolved.
func Bind(e Expr, resolve Resolver) (Expr, error) {
	var bindErr error
	out := Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Col); ok {
			idx, found := resolve(c.Table, c.Name)
			if !found {
				if bindErr == nil {
					bindErr = fmt.Errorf("expr: cannot resolve column %s", c.Key())
				}
				return c
			}
			c.Index = idx
			return c
		}
		return n
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}

// MustBind binds e and panics on failure; for statically known schemas.
func MustBind(e Expr, resolve Resolver) Expr {
	b, err := Bind(e, resolve)
	if err != nil {
		panic(err)
	}
	return b
}

// SliceResolver builds a resolver over a slice of qualified column keys
// ("table.name" or bare "name"). A bare reference matches any qualifier
// when unambiguous.
func SliceResolver(keys []string) Resolver {
	exact := make(map[string]int, len(keys))
	byName := make(map[string][]int)
	for i, k := range keys {
		exact[strings.ToLower(k)] = i
		name := k
		if dot := strings.LastIndexByte(k, '.'); dot >= 0 {
			name = k[dot+1:]
		}
		byName[strings.ToLower(name)] = append(byName[strings.ToLower(name)], i)
	}
	return func(table, name string) (int, bool) {
		if table != "" {
			if i, ok := exact[strings.ToLower(table+"."+name)]; ok {
				return i, true
			}
			return 0, false
		}
		if i, ok := exact[strings.ToLower(name)]; ok {
			return i, true
		}
		if idxs := byName[strings.ToLower(name)]; len(idxs) == 1 {
			return idxs[0], true
		}
		return 0, false
	}
}

// Eval evaluates a bound expression against a row. Aggregate nodes cannot
// be evaluated directly; the executor materializes them first.
func Eval(e Expr, row Row) (Value, error) {
	switch n := e.(type) {
	case *Col:
		if n.Index < 0 || n.Index >= len(row) {
			return NullValue(), fmt.Errorf("expr: unbound column %s (index %d, row width %d)", n.Key(), n.Index, len(row))
		}
		return row[n.Index], nil
	case *Const:
		return n.Val, nil
	case *Cmp:
		return evalCmp(n, row)
	case *And:
		return evalAnd(n, row)
	case *Or:
		return evalOr(n, row)
	case *Not:
		v, err := Eval(n.E, row)
		if err != nil {
			return NullValue(), err
		}
		if v.IsNull() {
			return TypedNull(TBool), nil
		}
		return NewBool(!v.Bool()), nil
	case *Arith:
		return evalArith(n, row)
	case *Concat:
		return evalConcat(n, row)
	case *Like:
		v, err := Eval(n.E, row)
		if err != nil {
			return NullValue(), err
		}
		if v.IsNull() {
			return TypedNull(TBool), nil
		}
		m := MatchLike(v.Str(), n.Pattern)
		if n.Negated {
			m = !m
		}
		return NewBool(m), nil
	case *In:
		return evalIn(n, row)
	case *Between:
		v, err := Eval(n.E, row)
		if err != nil {
			return NullValue(), err
		}
		if v.IsNull() {
			return TypedNull(TBool), nil
		}
		lo, err := v.Compare(n.Lo)
		if err != nil {
			return NullValue(), err
		}
		hi, err := v.Compare(n.Hi)
		if err != nil {
			return NullValue(), err
		}
		return NewBool(lo >= 0 && hi <= 0), nil
	case *IsNull:
		v, err := Eval(n.E, row)
		if err != nil {
			return NullValue(), err
		}
		res := v.IsNull()
		if n.Negated {
			res = !res
		}
		return NewBool(res), nil
	case *Call:
		return evalCall(n, row)
	case *Case:
		return evalCase(n, row)
	case *Agg:
		return NullValue(), fmt.Errorf("expr: aggregate %s cannot be evaluated row-wise", n)
	}
	return NullValue(), fmt.Errorf("expr: unknown expression node %T", e)
}

// EvalBool evaluates a predicate; SQL three-valued logic collapses NULL to
// false (a WHERE clause keeps only rows for which the predicate is TRUE).
func EvalBool(e Expr, row Row) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := Eval(e, row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}

func evalCmp(n *Cmp, row Row) (Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return NullValue(), err
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return NullValue(), err
	}
	if l.IsNull() || r.IsNull() {
		return TypedNull(TBool), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return NullValue(), err
	}
	switch n.Op {
	case EQ:
		return NewBool(c == 0), nil
	case NE:
		return NewBool(c != 0), nil
	case LT:
		return NewBool(c < 0), nil
	case LE:
		return NewBool(c <= 0), nil
	case GT:
		return NewBool(c > 0), nil
	case GE:
		return NewBool(c >= 0), nil
	}
	return NullValue(), fmt.Errorf("expr: unknown comparison %v", n.Op)
}

func evalAnd(n *And, row Row) (Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return NullValue(), err
	}
	if !l.IsNull() && !l.Bool() {
		return NewBool(false), nil
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return NullValue(), err
	}
	if !r.IsNull() && !r.Bool() {
		return NewBool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return TypedNull(TBool), nil
	}
	return NewBool(true), nil
}

func evalOr(n *Or, row Row) (Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return NullValue(), err
	}
	if !l.IsNull() && l.Bool() {
		return NewBool(true), nil
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return NullValue(), err
	}
	if !r.IsNull() && r.Bool() {
		return NewBool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return TypedNull(TBool), nil
	}
	return NewBool(false), nil
}

func evalArith(n *Arith, row Row) (Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return NullValue(), err
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return NullValue(), err
	}
	if l.IsNull() || r.IsNull() {
		return TypedNull(TFloat), nil
	}
	if !l.T.Numeric() && l.T != TBool || !r.T.Numeric() && r.T != TBool {
		return NullValue(), fmt.Errorf("expr: arithmetic on non-numeric types %s, %s", l.T, r.T)
	}
	// Integer arithmetic stays integral except for division.
	if l.T == TInt && r.T == TInt && n.Op != Div {
		switch n.Op {
		case Add:
			return NewInt(l.I + r.I), nil
		case Sub:
			return NewInt(l.I - r.I), nil
		case Mul:
			return NewInt(l.I * r.I), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch n.Op {
	case Add:
		return NewFloat(a + b), nil
	case Sub:
		return NewFloat(a - b), nil
	case Mul:
		return NewFloat(a * b), nil
	case Div:
		if b == 0 {
			return TypedNull(TFloat), nil
		}
		return NewFloat(a / b), nil
	}
	return NullValue(), fmt.Errorf("expr: unknown arithmetic op %v", n.Op)
}

func evalConcat(n *Concat, row Row) (Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return NullValue(), err
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return NullValue(), err
	}
	if l.IsNull() || r.IsNull() {
		return TypedNull(TString), nil
	}
	if l.T != TString || r.T != TString {
		return NullValue(), fmt.Errorf("expr: concat on non-string types %s, %s", l.T, r.T)
	}
	return NewString(l.S + r.S), nil
}

func evalIn(n *In, row Row) (Value, error) {
	v, err := Eval(n.E, row)
	if err != nil {
		return NullValue(), err
	}
	if v.IsNull() {
		return TypedNull(TBool), nil
	}
	found := false
	for _, item := range n.List {
		if item.IsNull() {
			continue
		}
		if c, err := v.Compare(item); err == nil && c == 0 {
			found = true
			break
		}
	}
	if n.Negated {
		found = !found
	}
	return NewBool(found), nil
}

// MatchLike implements SQL LIKE semantics with % (any run) and _ (any
// single byte) wildcards and no escape character. Matching is
// case-sensitive, as in most SQL dialects.
func MatchLike(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on the last %.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// TypeOf infers the result type of a bound or unbound expression given a
// column-type resolver. Unresolvable columns yield TNull.
func TypeOf(e Expr, colType func(*Col) Type) Type {
	switch n := e.(type) {
	case *Col:
		if colType == nil {
			return TNull
		}
		return colType(n)
	case *Const:
		return n.Val.T
	case *Cmp, *And, *Or, *Not, *Like, *In, *Between, *IsNull:
		return TBool
	case *Arith:
		lt := TypeOf(n.L, colType)
		rt := TypeOf(n.R, colType)
		if n.Op == Div || lt == TFloat || rt == TFloat {
			return TFloat
		}
		return TInt
	case *Concat:
		return TString
	case *Agg:
		switch n.Fn {
		case AggCount:
			return TInt
		case AggAvg:
			return TFloat
		case AggSum:
			if TypeOf(n.Arg, colType) == TInt {
				return TInt
			}
			return TFloat
		default:
			return TypeOf(n.Arg, colType)
		}
	case *Call:
		if n.Fn == FnAbs {
			return TypeOf(n.Arg, colType)
		}
		return TInt
	case *Case:
		for _, w := range n.Whens {
			if t := TypeOf(w.Result, colType); t != TNull {
				return t
			}
		}
		if n.Else != nil {
			return TypeOf(n.Else, colType)
		}
		return TNull
	}
	return TNull
}
