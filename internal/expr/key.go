package expr

import (
	"encoding/binary"
	"math"
)

// Binary grouping keys. Hash aggregation (in both engines) identifies a
// group by the concatenated AppendKey encodings of its key values. The
// encoding is type-tagged and length-prefixed, so distinct value lists
// can never collide, and the vectorized AppendKeyAt produces byte-for-
// byte the same encoding from a column vector that AppendKey produces
// from the materialized Value — grouping identity is independent of the
// evaluation path. All NULLs encode identically regardless of their
// type tag, preserving SQL's NULL-groups-together rule.

const (
	keyNull   = 0x00
	keyInt    = 0x01
	keyFloat  = 0x02
	keyString = 0x03
	keyBool   = 0x04
	keyDate   = 0x05
)

// AppendKey appends the grouping-key encoding of v to dst.
func AppendKey(dst []byte, v Value) []byte {
	if v.IsNull() {
		return append(dst, keyNull)
	}
	switch v.T {
	case TInt:
		dst = append(dst, keyInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case TFloat:
		dst = append(dst, keyFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case TString:
		dst = append(dst, keyString)
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	case TBool:
		b := byte(0)
		if v.I != 0 {
			b = 1
		}
		return append(dst, keyBool, b)
	case TDate:
		dst = append(dst, keyDate)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	}
	return append(dst, keyNull)
}

// AppendKeyAt appends the grouping-key encoding of element i of the
// vector to dst, identical to AppendKey(dst, v.Value(i)).
func (v *Vec) AppendKeyAt(dst []byte, i int) []byte {
	if v.IsNullAt(i) {
		return append(dst, keyNull)
	}
	switch v.T {
	case TInt:
		dst = append(dst, keyInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.I[i]))
	case TFloat:
		dst = append(dst, keyFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F[i]))
	case TString:
		dst = append(dst, keyString)
		dst = binary.AppendUvarint(dst, uint64(len(v.S[i])))
		return append(dst, v.S[i]...)
	case TBool:
		b := byte(0)
		if v.B.Get(i) {
			b = 1
		}
		return append(dst, keyBool, b)
	case TDate:
		dst = append(dst, keyDate)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.I[i]))
	}
	return append(dst, keyNull)
}

// HashAt returns Value.Hash of element i of the vector without
// materializing the Value: identical bytes feed the same FNV-1a mix.
func (v *Vec) HashAt(i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if v.IsNullAt(i) {
		return (h ^ 0xff) * prime64
	}
	switch v.T {
	case TString:
		s := v.S[i]
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * prime64
		}
	case TBool:
		b := uint64(0)
		if v.B.Get(i) {
			b = 1
		}
		h = (h ^ b) * prime64
	default:
		var f float64
		if v.T == TFloat {
			f = v.F[i]
		} else {
			f = float64(v.I[i])
		}
		bits := math.Float64bits(f)
		for j := 0; j < 8; j++ {
			h = (h ^ uint64(byte(bits>>(8*j)))) * prime64
		}
	}
	return h
}
