package expr

// Columnar value vectors. A Vec is the column-at-a-time counterpart of a
// Row slice: one typed lane (int64/float64/string/bool) plus a null
// bitmap. Vectors are the currency of the compiled expression kernels
// (see compile.go); the executor builds them lazily from row batches and
// caches them per batch so a filter and the projection behind it share
// one row-to-column conversion.

// Bitmap is a fixed-size bitset backed by 64-bit words. Bits beyond the
// logical length may hold garbage; all readers index individual bits.
type Bitmap []uint64

// bitmapWords returns the number of words needed for n bits.
func bitmapWords(n int) int { return (n + 63) / 64 }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// grow returns a zeroed bitmap with capacity for n bits, reusing the
// receiver's storage when possible.
func (b Bitmap) grow(n int) Bitmap {
	w := bitmapWords(n)
	if cap(b) < w {
		return make(Bitmap, w)
	}
	b = b[:w]
	for i := range b {
		b[i] = 0
	}
	return b
}

// word returns word w of the bitmap, treating a nil bitmap as all-zero.
func (b Bitmap) word(w int) uint64 {
	if b == nil {
		return 0
	}
	return b[w]
}

// Vec is a column vector: N values of lane type T. Integer-class values
// (TInt, TDate) live in I, floats in F, strings in S and booleans in B.
// Null is nil when no value is null. NullT is the type that materialized
// NULLs carry (kernels fix it per operator, mirroring the interpreter's
// TypedNull results); it is only meaningful for computed vectors.
type Vec struct {
	T     Type
	NullT Type
	N     int
	I     []int64
	F     []float64
	S     []string
	B     Bitmap
	Null  Bitmap
	// Exact reports that Value(i) reproduces the source value bit for bit
	// for every element. Kernel-computed vectors are always exact (what
	// Value materializes IS the result); vectors built from rows lose
	// exactness when a NULL carried a different type tag than the lane or
	// a value carried payload residue outside its lane. Operators that
	// forward column data without re-evaluating (projection passthrough)
	// require exactness for row/columnar parity.
	Exact bool
}

// reset prepares the vector to hold n values of lane type t, reusing
// existing storage. The null bitmap is cleared (nil).
func (v *Vec) reset(t Type, n int) {
	v.T = t
	v.NullT = t
	v.N = n
	v.Null = nil
	v.Exact = true
	switch t {
	case TInt, TDate:
		if cap(v.I) < n {
			v.I = make([]int64, n)
		} else {
			v.I = v.I[:n]
		}
	case TFloat:
		if cap(v.F) < n {
			v.F = make([]float64, n)
		} else {
			v.F = v.F[:n]
		}
	case TString:
		if cap(v.S) < n {
			v.S = make([]string, n)
		} else {
			v.S = v.S[:n]
		}
	case TBool:
		v.B = v.B.grow(n)
	}
}

// Reset prepares the vector to hold n values of lane type t, reusing
// existing storage; exported for columnar producers outside the package
// (the wire decoder, the executor's columnar projection).
func (v *Vec) Reset(t Type, n int) { v.reset(t, n) }

// EnsureNull makes sure the null bitmap is allocated (and zeroed) for N
// bits, returning it; exported for columnar producers.
func (v *Vec) EnsureNull() Bitmap { return v.ensureNull() }

// ensureNull makes sure the null bitmap is allocated (and zeroed) for N
// bits, returning it.
func (v *Vec) ensureNull() Bitmap {
	if v.Null == nil {
		v.Null = make(Bitmap, bitmapWords(v.N))
	}
	return v.Null
}

// IsNullAt reports whether value i is NULL.
func (v *Vec) IsNullAt(i int) bool { return v.Null != nil && v.Null.Get(i) }

// Value materializes element i. NULLs come back as TypedNull(NullT),
// matching what the row interpreter would have produced for the operator
// that computed the vector.
func (v *Vec) Value(i int) Value {
	if v.IsNullAt(i) {
		if v.NullT == TNull {
			return NullValue()
		}
		return TypedNull(v.NullT)
	}
	switch v.T {
	case TInt:
		return NewInt(v.I[i])
	case TDate:
		return NewDate(v.I[i])
	case TFloat:
		return NewFloat(v.F[i])
	case TString:
		return NewString(v.S[i])
	case TBool:
		return NewBool(v.B.Get(i))
	}
	return NullValue()
}

// BuildColVec converts column idx of rows into a vector with declared
// lane type t. It reports false when the column is not lane-pure: some
// row is too narrow, or a non-NULL value's runtime type differs from t.
// NULL values of any type set the null bit (their payload is ignored by
// every kernel). Callers fall back to the row interpreter for the whole
// batch when conversion fails.
func BuildColVec(rows []Row, idx int, t Type, v *Vec) bool {
	n := len(rows)
	v.reset(t, n)
	v.NullT = t
	exact := true
	var nulls Bitmap
	for i, r := range rows {
		if idx < 0 || idx >= len(r) {
			return false
		}
		val := r[idx]
		if val.IsNull() {
			if nulls == nil {
				nulls = v.ensureNull()
			}
			nulls.Set(i)
			if exact && val != (Value{T: t, Null: true}) {
				exact = false
			}
			continue
		}
		if val.T != t {
			return false
		}
		switch t {
		case TInt, TDate:
			v.I[i] = val.I
			if exact && (val.F != 0 || val.S != "") {
				exact = false
			}
		case TFloat:
			v.F[i] = val.F
			if exact && (val.I != 0 || val.S != "") {
				exact = false
			}
		case TString:
			v.S[i] = val.S
			if exact && (val.I != 0 || val.F != 0) {
				exact = false
			}
		case TBool:
			if val.I != 0 {
				v.B.Set(i)
			}
			if exact && ((val.I != 0 && val.I != 1) || val.F != 0 || val.S != "") {
				exact = false
			}
		}
	}
	v.Exact = exact
	return true
}

// CopyFrom makes v an owned deep copy of src: lane contents, null
// bitmap, null-materialization type and exactness.
func (v *Vec) CopyFrom(src *Vec) {
	v.reset(src.T, src.N)
	v.NullT = src.NullT
	v.Exact = src.Exact
	switch src.T {
	case TInt, TDate:
		copy(v.I, src.I[:src.N])
	case TFloat:
		copy(v.F, src.F[:src.N])
	case TString:
		copy(v.S, src.S[:src.N])
	case TBool:
		copy(v.B, src.B[:bitmapWords(src.N)])
	}
	if src.Null != nil {
		copy(v.ensureNull(), src.Null[:bitmapWords(src.N)])
	}
}

// GatherFrom makes v the selection-ordered gather of src: element j of v
// is element sel[j] of src. A nil selection copies src densely.
func (v *Vec) GatherFrom(src *Vec, sel []int32) {
	if sel == nil {
		v.CopyFrom(src)
		return
	}
	v.reset(src.T, len(sel))
	v.NullT = src.NullT
	v.Exact = src.Exact
	switch src.T {
	case TInt, TDate:
		for j, si := range sel {
			v.I[j] = src.I[si]
		}
	case TFloat:
		for j, si := range sel {
			v.F[j] = src.F[si]
		}
	case TString:
		for j, si := range sel {
			v.S[j] = src.S[si]
		}
	case TBool:
		for j, si := range sel {
			if src.B.Get(int(si)) {
				v.B.Set(j)
			}
		}
	}
	if src.Null != nil {
		var nulls Bitmap
		for j, si := range sel {
			if src.Null.Get(int(si)) {
				if nulls == nil {
					nulls = v.ensureNull()
				}
				nulls.Set(j)
			}
		}
	}
}

// Broadcast fills v with n copies of val. Exactness is computed from
// whether materializing an element reproduces val bit for bit (a NULL
// or bool carrying payload residue canonicalizes, for example).
func (v *Vec) Broadcast(val Value, n int) {
	v.reset(val.T, n)
	v.NullT = val.T
	if val.IsNull() {
		nulls := v.ensureNull()
		for i := range nulls {
			nulls[i] = ^uint64(0)
		}
	} else {
		switch val.T {
		case TInt, TDate:
			for i := range v.I {
				v.I[i] = val.I
			}
		case TFloat:
			for i := range v.F {
				v.F[i] = val.F
			}
		case TString:
			for i := range v.S {
				v.S[i] = val.S
			}
		case TBool:
			if val.I != 0 {
				for i := range v.B {
					v.B[i] = ^uint64(0)
				}
			}
		}
	}
	v.Exact = n == 0 || v.Value(0) == val
}
