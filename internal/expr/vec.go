package expr

// Columnar value vectors. A Vec is the column-at-a-time counterpart of a
// Row slice: one typed lane (int64/float64/string/bool) plus a null
// bitmap. Vectors are the currency of the compiled expression kernels
// (see compile.go); the executor builds them lazily from row batches and
// caches them per batch so a filter and the projection behind it share
// one row-to-column conversion.

// Bitmap is a fixed-size bitset backed by 64-bit words. Bits beyond the
// logical length may hold garbage; all readers index individual bits.
type Bitmap []uint64

// bitmapWords returns the number of words needed for n bits.
func bitmapWords(n int) int { return (n + 63) / 64 }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// grow returns a zeroed bitmap with capacity for n bits, reusing the
// receiver's storage when possible.
func (b Bitmap) grow(n int) Bitmap {
	w := bitmapWords(n)
	if cap(b) < w {
		return make(Bitmap, w)
	}
	b = b[:w]
	for i := range b {
		b[i] = 0
	}
	return b
}

// word returns word w of the bitmap, treating a nil bitmap as all-zero.
func (b Bitmap) word(w int) uint64 {
	if b == nil {
		return 0
	}
	return b[w]
}

// Vec is a column vector: N values of lane type T. Integer-class values
// (TInt, TDate) live in I, floats in F, strings in S and booleans in B.
// Null is nil when no value is null. NullT is the type that materialized
// NULLs carry (kernels fix it per operator, mirroring the interpreter's
// TypedNull results); it is only meaningful for computed vectors.
type Vec struct {
	T     Type
	NullT Type
	N     int
	I     []int64
	F     []float64
	S     []string
	B     Bitmap
	Null  Bitmap
}

// reset prepares the vector to hold n values of lane type t, reusing
// existing storage. The null bitmap is cleared (nil).
func (v *Vec) reset(t Type, n int) {
	v.T = t
	v.NullT = t
	v.N = n
	v.Null = nil
	switch t {
	case TInt, TDate:
		if cap(v.I) < n {
			v.I = make([]int64, n)
		} else {
			v.I = v.I[:n]
		}
	case TFloat:
		if cap(v.F) < n {
			v.F = make([]float64, n)
		} else {
			v.F = v.F[:n]
		}
	case TString:
		if cap(v.S) < n {
			v.S = make([]string, n)
		} else {
			v.S = v.S[:n]
		}
	case TBool:
		v.B = v.B.grow(n)
	}
}

// ensureNull makes sure the null bitmap is allocated (and zeroed) for N
// bits, returning it.
func (v *Vec) ensureNull() Bitmap {
	if v.Null == nil {
		v.Null = make(Bitmap, bitmapWords(v.N))
	}
	return v.Null
}

// IsNullAt reports whether value i is NULL.
func (v *Vec) IsNullAt(i int) bool { return v.Null != nil && v.Null.Get(i) }

// Value materializes element i. NULLs come back as TypedNull(NullT),
// matching what the row interpreter would have produced for the operator
// that computed the vector.
func (v *Vec) Value(i int) Value {
	if v.IsNullAt(i) {
		if v.NullT == TNull {
			return NullValue()
		}
		return TypedNull(v.NullT)
	}
	switch v.T {
	case TInt:
		return NewInt(v.I[i])
	case TDate:
		return NewDate(v.I[i])
	case TFloat:
		return NewFloat(v.F[i])
	case TString:
		return NewString(v.S[i])
	case TBool:
		return NewBool(v.B.Get(i))
	}
	return NullValue()
}

// BuildColVec converts column idx of rows into a vector with declared
// lane type t. It reports false when the column is not lane-pure: some
// row is too narrow, or a non-NULL value's runtime type differs from t.
// NULL values of any type set the null bit (their payload is ignored by
// every kernel). Callers fall back to the row interpreter for the whole
// batch when conversion fails.
func BuildColVec(rows []Row, idx int, t Type, v *Vec) bool {
	n := len(rows)
	v.reset(t, n)
	v.NullT = t
	var nulls Bitmap
	for i, r := range rows {
		if idx < 0 || idx >= len(r) {
			return false
		}
		val := r[idx]
		if val.IsNull() {
			if nulls == nil {
				nulls = v.ensureNull()
			}
			nulls.Set(i)
			continue
		}
		if val.T != t {
			return false
		}
		switch t {
		case TInt, TDate:
			v.I[i] = val.I
		case TFloat:
			v.F[i] = val.F
		case TString:
			v.S[i] = val.S
		case TBool:
			if val.I != 0 {
				v.B.Set(i)
			}
		}
	}
	return true
}
