package expr

import (
	"fmt"
	"strings"
)

// ScalarFn enumerates built-in scalar functions.
type ScalarFn int

// Built-in scalar functions.
const (
	FnYear ScalarFn = iota
	FnMonth
	FnDay
	FnAbs
)

// String returns the SQL spelling of the function.
func (f ScalarFn) String() string {
	switch f {
	case FnYear:
		return "YEAR"
	case FnMonth:
		return "MONTH"
	case FnDay:
		return "DAY"
	case FnAbs:
		return "ABS"
	}
	return "?"
}

// ParseScalarFn resolves a scalar function name (case-insensitive); ok is
// false for unknown names.
func ParseScalarFn(name string) (ScalarFn, bool) {
	switch strings.ToUpper(name) {
	case "YEAR":
		return FnYear, true
	case "MONTH":
		return FnMonth, true
	case "DAY":
		return FnDay, true
	case "ABS":
		return FnAbs, true
	}
	return 0, false
}

// Call is a scalar function application.
type Call struct {
	Fn  ScalarFn
	Arg Expr
}

// NewCall builds a scalar function call.
func NewCall(fn ScalarFn, arg Expr) *Call { return &Call{Fn: fn, Arg: arg} }

// String renders the call.
func (c *Call) String() string { return fmt.Sprintf("%s(%s)", c.Fn, c.Arg) }

// Children returns the argument.
func (c *Call) Children() []Expr { return []Expr{c.Arg} }

// Equal reports structural equality.
func (c *Call) Equal(o Expr) bool {
	oc, ok := o.(*Call)
	return ok && oc.Fn == c.Fn && oc.Arg.Equal(c.Arg)
}

// When is one branch of a CASE expression.
type When struct {
	Cond   Expr
	Result Expr
}

// Case is a searched CASE expression:
//
//	CASE WHEN cond THEN result [WHEN ... THEN ...] [ELSE result] END
type Case struct {
	Whens []When
	Else  Expr // nil = NULL
}

// NewCase builds a CASE expression.
func NewCase(whens []When, els Expr) *Case { return &Case{Whens: whens, Else: els} }

// String renders the CASE.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// Children returns every condition and result (and the ELSE).
func (c *Case) Children() []Expr {
	out := make([]Expr, 0, len(c.Whens)*2+1)
	for _, w := range c.Whens {
		out = append(out, w.Cond, w.Result)
	}
	if c.Else != nil {
		out = append(out, c.Else)
	}
	return out
}

// Equal reports structural equality.
func (c *Case) Equal(o Expr) bool {
	oc, ok := o.(*Case)
	if !ok || len(oc.Whens) != len(c.Whens) {
		return false
	}
	for i := range c.Whens {
		if !oc.Whens[i].Cond.Equal(c.Whens[i].Cond) || !oc.Whens[i].Result.Equal(c.Whens[i].Result) {
			return false
		}
	}
	if (c.Else == nil) != (oc.Else == nil) {
		return false
	}
	return c.Else == nil || oc.Else.Equal(c.Else)
}

// evalCall evaluates a scalar function call.
func evalCall(n *Call, row Row) (Value, error) {
	v, err := Eval(n.Arg, row)
	if err != nil {
		return NullValue(), err
	}
	if v.IsNull() {
		return TypedNull(TInt), nil
	}
	switch n.Fn {
	case FnYear, FnMonth, FnDay:
		if v.T != TDate {
			return NullValue(), fmt.Errorf("expr: %s requires a DATE argument, got %s", n.Fn, v.T)
		}
		t := epoch.AddDate(0, 0, int(v.Int()))
		switch n.Fn {
		case FnYear:
			return NewInt(int64(t.Year())), nil
		case FnMonth:
			return NewInt(int64(t.Month())), nil
		default:
			return NewInt(int64(t.Day())), nil
		}
	case FnAbs:
		if !v.T.Numeric() {
			return NullValue(), fmt.Errorf("expr: ABS requires a numeric argument, got %s", v.T)
		}
		if v.T == TFloat {
			f := v.Float()
			if f < 0 {
				f = -f
			}
			return NewFloat(f), nil
		}
		i := v.Int()
		if i < 0 {
			i = -i
		}
		return NewInt(i), nil
	}
	return NullValue(), fmt.Errorf("expr: unknown scalar function %v", n.Fn)
}

// evalCase evaluates a CASE expression: the first WHEN whose condition is
// TRUE wins; otherwise ELSE (or NULL).
func evalCase(n *Case, row Row) (Value, error) {
	for _, w := range n.Whens {
		ok, err := EvalBool(w.Cond, row)
		if err != nil {
			return NullValue(), err
		}
		if ok {
			return Eval(w.Result, row)
		}
	}
	if n.Else != nil {
		return Eval(n.Else, row)
	}
	return NullValue(), nil
}
