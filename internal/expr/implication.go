package expr

// This file implements the logical implication test P_q ⇒ P_e used by the
// policy evaluation algorithm (Algorithm 1, line 3). Following the paper
// (Section 5, Discussion), the test is in the style of Goldstein & Larson's
// materialized-view matching: it is SOUND (never claims implication that
// does not hold) but INCOMPLETE (e.g. it fails for P_q ≡ A=5 ∧ B=3 and
// P_e ≡ A+B=8).
//
// The approach: both predicates are viewed as conjunctions. P_q ⇒ P_e
// holds when every conjunct of P_e is implied by the conjunction P_q. A
// conjunct is implied when (a) it appears structurally in P_q, (b) it is a
// disjunction with an implied disjunct, or (c) it is a single-column
// range/set predicate subsumed by the column range that P_q pins down.

// ImplicationMode selects the precision of the implication test. The
// ablation benchmarks compare the full range-subsumption test against a
// syntactic-equality-only variant.
type ImplicationMode int

const (
	// ImplicationFull enables range subsumption, IN/LIKE reasoning and
	// disjunction handling. This is the mode the paper's evaluation uses.
	ImplicationFull ImplicationMode = iota
	// ImplicationSyntactic only accepts conjuncts that appear verbatim in
	// the query predicate.
	ImplicationSyntactic
)

// Implies reports whether pq ⇒ pe with the full test.
func Implies(pq, pe Expr) bool { return ImpliesMode(pq, pe, ImplicationFull) }

// ImpliesMode reports whether pq ⇒ pe under the given precision mode.
// A nil pe is the TRUE predicate and is implied by everything. A nil pq
// is TRUE and implies only trivially true predicates.
func ImpliesMode(pq, pe Expr, mode ImplicationMode) bool {
	if pe == nil || isConstTrue(pe) {
		return true
	}
	qs := Conjuncts(pq)
	for _, c := range Conjuncts(pe) {
		if !impliesConjunct(qs, c, mode) {
			return false
		}
	}
	return true
}

func isConstTrue(e Expr) bool {
	c, ok := e.(*Const)
	return ok && !c.Val.IsNull() && c.Val.T == TBool && c.Val.Bool()
}

// impliesConjunct reports whether the conjunction qs implies the single
// conjunct c.
func impliesConjunct(qs []Expr, c Expr, mode ImplicationMode) bool {
	// (a) Structural match.
	for _, q := range qs {
		if q.Equal(c) {
			return true
		}
		// a = b matches b = a.
		if qc, ok := q.(*Cmp); ok {
			if cc, ok2 := c.(*Cmp); ok2 && qc.Op.Flip() == cc.Op && qc.L.Equal(cc.R) && qc.R.Equal(cc.L) {
				return true
			}
		}
	}
	if mode == ImplicationSyntactic {
		return false
	}
	// (b) Disjunctive conjunct: any implied disjunct suffices; or every
	// disjunct of some disjunctive query conjunct implies some disjunct
	// of c (case split).
	if _, ok := c.(*Or); ok {
		ds := Disjuncts(c)
		for _, d := range ds {
			if impliesConjunct(qs, d, mode) {
				return true
			}
		}
		for _, q := range qs {
			if _, ok := q.(*Or); !ok {
				continue
			}
			all := true
			for _, qd := range Disjuncts(q) {
				anyImplied := false
				for _, d := range ds {
					if impliesConjunct([]Expr{qd}, d, mode) {
						anyImplied = true
						break
					}
				}
				if !anyImplied {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	// (c) Single-column subsumption.
	col, ok := predicateColumn(c)
	if !ok {
		return false
	}
	r := deriveRange(qs, col)
	return r.satisfies(c)
}

// predicateColumn extracts the single column a conjunct constrains, if it
// has exactly that shape (column vs. constant).
func predicateColumn(c Expr) (*Col, bool) {
	switch n := c.(type) {
	case *Cmp:
		if col, ok := n.L.(*Col); ok {
			if _, ok2 := n.R.(*Const); ok2 {
				return col, true
			}
		}
		if col, ok := n.R.(*Col); ok {
			if _, ok2 := n.L.(*Const); ok2 {
				return col, true
			}
		}
	case *Between:
		if col, ok := n.E.(*Col); ok {
			return col, true
		}
	case *In:
		if col, ok := n.E.(*Col); ok && !n.Negated {
			return col, true
		}
	case *Like:
		if col, ok := n.E.(*Col); ok && !n.Negated {
			return col, true
		}
	case *IsNull:
		if col, ok := n.E.(*Col); ok && n.Negated {
			return col, true
		}
	}
	return nil, false
}

// colRange is the set of values a column may take under a conjunction of
// predicates: an interval, optionally a finite equality set, and a
// not-null flag. A nil eqSet means "no finite restriction".
type colRange struct {
	hasLo, hasHi   bool
	loOpen, hiOpen bool
	lo, hi         Value
	eqSet          []Value // non-nil: column restricted to these values
	empty          bool    // contradictory constraints: implies anything
	notNull        bool
}

// deriveRange accumulates the constraints qs place on col.
func deriveRange(qs []Expr, col *Col) colRange {
	var r colRange
	for _, q := range qs {
		switch n := q.(type) {
		case *Cmp:
			c, v, op, ok := normalizeCmp(n)
			if !ok || !c.Equal(col) {
				continue
			}
			r.notNull = true
			switch op {
			case EQ:
				r.intersectEq([]Value{v})
			case LT:
				r.tightenHi(v, true)
			case LE:
				r.tightenHi(v, false)
			case GT:
				r.tightenLo(v, true)
			case GE:
				r.tightenLo(v, false)
			}
		case *Between:
			if c, ok := n.E.(*Col); ok && c.Equal(col) {
				r.notNull = true
				r.tightenLo(n.Lo, false)
				r.tightenHi(n.Hi, false)
			}
		case *In:
			if c, ok := n.E.(*Col); ok && c.Equal(col) && !n.Negated {
				r.notNull = true
				r.intersectEq(n.List)
			}
		case *Like:
			if c, ok := n.E.(*Col); ok && c.Equal(col) && !n.Negated {
				r.notNull = true
			}
		case *IsNull:
			if c, ok := n.E.(*Col); ok && c.Equal(col) && n.Negated {
				r.notNull = true
			}
		}
	}
	return r
}

// normalizeCmp rewrites a comparison so the column is on the left.
func normalizeCmp(n *Cmp) (*Col, Value, CmpOp, bool) {
	if col, ok := n.L.(*Col); ok {
		if k, ok2 := n.R.(*Const); ok2 && !k.Val.IsNull() {
			return col, k.Val, n.Op, true
		}
	}
	if col, ok := n.R.(*Col); ok {
		if k, ok2 := n.L.(*Const); ok2 && !k.Val.IsNull() {
			return col, k.Val, n.Op.Flip(), true
		}
	}
	return nil, Value{}, 0, false
}

func (r *colRange) tightenLo(v Value, open bool) {
	if !r.hasLo {
		r.hasLo, r.lo, r.loOpen = true, v, open
		return
	}
	c, err := v.Compare(r.lo)
	if err != nil {
		return
	}
	if c > 0 || (c == 0 && open && !r.loOpen) {
		r.lo, r.loOpen = v, open
	}
}

func (r *colRange) tightenHi(v Value, open bool) {
	if !r.hasHi {
		r.hasHi, r.hi, r.hiOpen = true, v, open
		return
	}
	c, err := v.Compare(r.hi)
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && open && !r.hiOpen) {
		r.hi, r.hiOpen = v, open
	}
}

func (r *colRange) intersectEq(vals []Value) {
	if r.eqSet == nil {
		r.eqSet = append([]Value(nil), vals...)
		if len(r.eqSet) == 0 {
			r.empty = true
		}
		return
	}
	var out []Value
	for _, v := range r.eqSet {
		for _, w := range vals {
			if c, err := v.Compare(w); err == nil && c == 0 {
				out = append(out, v)
				break
			}
		}
	}
	r.eqSet = out
	if len(out) == 0 {
		r.empty = true
	}
}

// satisfies reports whether every value permitted by the range satisfies
// the conjunct c. Errors during comparison fail conservatively (false).
func (r colRange) satisfies(c Expr) bool {
	if r.empty {
		return true // unsatisfiable query predicate implies anything
	}
	switch n := c.(type) {
	case *Cmp:
		col, v, op, ok := normalizeCmp(n)
		if !ok {
			return false
		}
		_ = col
		return r.satisfiesCmp(op, v)
	case *Between:
		return r.satisfiesCmp(GE, n.Lo) && r.satisfiesCmp(LE, n.Hi)
	case *In:
		if r.eqSet == nil {
			return false
		}
		for _, v := range r.eqSet {
			found := false
			for _, w := range n.List {
				if cres, err := v.Compare(w); err == nil && cres == 0 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	case *Like:
		if r.eqSet == nil {
			return false
		}
		for _, v := range r.eqSet {
			if v.T != TString || !MatchLike(v.Str(), n.Pattern) {
				return false
			}
		}
		return true
	case *IsNull:
		return n.Negated && r.notNull
	}
	return false
}

func (r colRange) satisfiesCmp(op CmpOp, v Value) bool {
	// With a finite equality set, test each member directly.
	if r.eqSet != nil {
		for _, m := range r.eqSet {
			c, err := m.Compare(v)
			if err != nil {
				return false
			}
			var ok bool
			switch op {
			case EQ:
				ok = c == 0
			case NE:
				ok = c != 0
			case LT:
				ok = c < 0
			case LE:
				ok = c <= 0
			case GT:
				ok = c > 0
			case GE:
				ok = c >= 0
			}
			if !ok {
				return false
			}
		}
		return true
	}
	switch op {
	case GT:
		if !r.hasLo {
			return false
		}
		c, err := r.lo.Compare(v)
		return err == nil && (c > 0 || (c == 0 && r.loOpen))
	case GE:
		if !r.hasLo {
			return false
		}
		c, err := r.lo.Compare(v)
		return err == nil && c >= 0
	case LT:
		if !r.hasHi {
			return false
		}
		c, err := r.hi.Compare(v)
		return err == nil && (c < 0 || (c == 0 && r.hiOpen))
	case LE:
		if !r.hasHi {
			return false
		}
		c, err := r.hi.Compare(v)
		return err == nil && c <= 0
	case EQ:
		if !r.hasLo || !r.hasHi || r.loOpen || r.hiOpen {
			return false
		}
		cl, err1 := r.lo.Compare(v)
		ch, err2 := r.hi.Compare(v)
		return err1 == nil && err2 == nil && cl == 0 && ch == 0
	case NE:
		// The interval must exclude v entirely.
		if r.hasLo {
			if c, err := r.lo.Compare(v); err == nil && (c > 0 || (c == 0 && r.loOpen)) {
				return true
			}
		}
		if r.hasHi {
			if c, err := r.hi.Compare(v); err == nil && (c < 0 || (c == 0 && r.hiOpen)) {
				return true
			}
		}
		return false
	}
	return false
}
