package expr

// Batch is the columnar unit of data flow between executor operators:
// a fixed number of rows presented as column vectors, built at most
// once and cached, with an optional row-major view. A batch is either
//
//   - row-backed: SetRows aliased a []Row (the rows are immutable,
//     owned upstream); column vectors are built lazily per column via
//     BuildColVec and cached, so a filter and the projection behind it
//     share one row-to-column conversion, or
//   - column-backed: a producer (wire decode, columnar projection)
//     filled every column vector directly via StartCols/OwnCol; the
//     row view is materialized lazily into a fresh arena only if some
//     consumer actually needs rows (interpreter fallback, the final
//     result surface).
//
// Column storage is retained across Reset so pooled batches reach a
// zero-allocation steady state. The row arena a column-backed batch
// materializes is never pooled: rows handed out stay valid after the
// container is recycled.
type Batch struct {
	types []Type
	n     int

	rows      []Row
	rowsValid bool

	cols  []Vec
	state []colState
}

// colState tracks one column's vector cache.
type colState uint8

const (
	colUnbuilt colState = iota // row-backed; vector not built yet
	colBuilt                   // vector built from the rows and cached
	colBad                     // rows not lane-pure; vector unavailable
	colOwned                   // producer-filled vector is authoritative
)

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.types) }

// RowBacked reports whether a row-major view already exists (aliased
// or previously materialized); Rows/Row on such a batch is free.
func (b *Batch) RowBacked() bool { return b.rowsValid }

// Bind declares the column lane types the consumer expects. Binding
// the same types again is a cheap no-op that keeps every cached
// vector; binding different types invalidates built vectors (owned
// vectors persist and are lane-checked by ColVec).
func (b *Batch) Bind(types []Type) {
	if typesEqual(b.types, types) {
		return
	}
	b.types = append(b.types[:0], types...)
	b.ensureWidth()
	for i, st := range b.state {
		if st == colBuilt || st == colBad {
			b.state[i] = colUnbuilt
		}
	}
}

// SetRows makes the batch row-backed over rows, aliasing the slice:
// the caller guarantees the rows stay valid and immutable for the
// batch's lifetime. All cached vectors are invalidated.
func (b *Batch) SetRows(rows []Row) {
	b.rows = rows
	b.rowsValid = true
	b.n = len(rows)
	for i := range b.state {
		b.state[i] = colUnbuilt
	}
}

// StartCols prepares the batch to be filled column-wise: width columns
// of n rows, all unset. The producer fills each column through OwnCol
// and finishes with FinishCols.
func (b *Batch) StartCols(width, n int) {
	b.n = n
	b.rows = nil
	b.rowsValid = false
	if cap(b.types) < width {
		b.types = make([]Type, width)
	} else {
		b.types = b.types[:width]
	}
	b.ensureWidth()
	for i := range b.state {
		b.state[i] = colBad
	}
}

// OwnCol returns column idx's vector for the producer to fill (reusing
// its storage) and marks the column owned. Every column must be filled
// before the batch is handed to a consumer.
func (b *Batch) OwnCol(idx int) *Vec {
	b.state[idx] = colOwned
	return &b.cols[idx]
}

// FinishCols records each owned column's lane type as the batch's
// column type. Producers call it once after filling every column.
func (b *Batch) FinishCols() {
	for i := range b.state {
		if b.state[i] == colOwned {
			b.types[i] = b.cols[i].T
		}
	}
}

// ColVec returns the vector for column idx, building and caching it
// from the rows on first use. ok is false when the column cannot be
// served columnar: the rows are not lane-pure for the bound type, or
// an owned vector's lane differs from the bound type — consumers then
// fall back to the row view.
func (b *Batch) ColVec(idx int) (*Vec, bool) {
	if idx < 0 || idx >= len(b.state) {
		return nil, false
	}
	switch b.state[idx] {
	case colOwned:
		v := &b.cols[idx]
		if v.T != b.types[idx] {
			return nil, false
		}
		return v, true
	case colBuilt:
		return &b.cols[idx], true
	case colBad:
		return nil, false
	}
	if !b.rowsValid {
		return nil, false
	}
	if !BuildColVec(b.rows, idx, b.types[idx], &b.cols[idx]) {
		b.state[idx] = colBad
		return nil, false
	}
	b.state[idx] = colBuilt
	return &b.cols[idx], true
}

// Row returns row i, materializing the row view of a column-backed
// batch on first use.
func (b *Batch) Row(i int) Row {
	b.ensureRows()
	return b.rows[i]
}

// Rows returns the full row view, materializing it on first use for a
// column-backed batch. The returned rows outlive the batch container.
func (b *Batch) Rows() []Row {
	b.ensureRows()
	return b.rows
}

// RowValue returns the value at (row i, column col) without forcing a
// whole-batch row materialization on column-backed batches.
func (b *Batch) RowValue(i, col int) Value {
	if b.rowsValid {
		return b.rows[i][col]
	}
	return b.cols[col].Value(i)
}

// Truncate shortens the batch to its first k rows.
func (b *Batch) Truncate(k int) {
	if k >= b.n {
		return
	}
	b.n = k
	if b.rowsValid {
		b.rows = b.rows[:k]
	}
}

// Reset clears the batch for reuse, dropping row references but
// keeping column storage and the bound types so a recycled batch
// reaches steady state without allocating.
func (b *Batch) Reset() {
	b.n = 0
	b.rows = nil
	b.rowsValid = false
	for i := range b.state {
		b.state[i] = colUnbuilt
	}
}

// ensureRows materializes the row view from owned column vectors into
// a fresh arena (one value slab + one header slice; neither is ever
// pooled, so extracted rows stay valid after the container recycles).
func (b *Batch) ensureRows() {
	if b.rowsValid {
		return
	}
	w := len(b.types)
	arena := make([]Value, b.n*w)
	rows := make([]Row, b.n)
	for i := 0; i < b.n; i++ {
		r := arena[:w:w]
		arena = arena[w:]
		for c := 0; c < w; c++ {
			r[c] = b.cols[c].Value(i)
		}
		rows[i] = r
	}
	b.rows = rows
	b.rowsValid = true
}

// ensureWidth sizes the column and state slices to the bound width.
func (b *Batch) ensureWidth() {
	w := len(b.types)
	if cap(b.cols) < w {
		cols := make([]Vec, w)
		copy(cols, b.cols)
		b.cols = cols
		st := make([]colState, w)
		copy(st, b.state)
		b.state = st
		return
	}
	if len(b.cols) < w {
		old := len(b.cols)
		b.cols = b.cols[:w]
		b.state = b.state[:w]
		for i := old; i < w; i++ {
			b.state[i] = colUnbuilt
		}
	} else if len(b.cols) > w {
		b.cols = b.cols[:w]
		b.state = b.state[:w]
	}
}

// typesEqual reports elementwise equality.
func typesEqual(a, b []Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
