// Package expr implements the scalar expression layer of the compliant
// geo-distributed query processor: typed values, expression trees,
// evaluation against rows, and the logical implication test used by the
// policy evaluator (Section 5 of the paper).
package expr

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type identifies the runtime type of a Value.
type Type int

// The supported scalar types. TNull is the type of the SQL NULL literal;
// every other type may still hold a NULL value (IsNull reports it).
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
	TDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DOUBLE"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	case TDate:
		return "DATE"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool { return t == TInt || t == TFloat || t == TDate }

// Value is a scalar runtime value. It is a small tagged union: integers,
// booleans and dates live in I, floats in F, and strings in S. The zero
// Value is NULL.
type Value struct {
	T    Type
	Null bool
	I    int64 // TInt; TBool (0/1); TDate (days since 1970-01-01)
	F    float64
	S    string
}

// Null values and constructors.

// NullValue returns the untyped NULL value.
func NullValue() Value { return Value{T: TNull, Null: true} }

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{T: TInt, I: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{T: TFloat, F: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{T: TString, S: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{T: TBool, I: i}
}

// NewDate returns a DATE value holding days since the Unix epoch.
func NewDate(days int64) Value { return Value{T: TDate, I: days} }

// TypedNull returns a NULL value carrying type information.
func TypedNull(t Type) Value { return Value{T: t, Null: true} }

// epoch is the zero day for DATE values.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate parses a YYYY-MM-DD literal into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NullValue(), fmt.Errorf("expr: invalid date literal %q: %w", s, err)
	}
	return NewDate(int64(t.Sub(epoch).Hours() / 24)), nil
}

// MustDate parses a YYYY-MM-DD literal and panics on failure. Intended for
// tests and statically known literals.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Null || v.T == TNull }

// Bool returns the boolean held by the value. It is only meaningful for
// TBool values.
func (v Value) Bool() bool { return v.T == TBool && !v.Null && v.I != 0 }

// Int returns the integer held by the value.
func (v Value) Int() int64 { return v.I }

// Float returns the value coerced to float64. Integers and dates widen;
// other types return 0.
func (v Value) Float() float64 {
	switch v.T {
	case TFloat:
		return v.F
	case TInt, TDate, TBool:
		return float64(v.I)
	}
	return 0
}

// Str returns the string held by the value.
func (v Value) Str() string { return v.S }

// String renders the value as a SQL literal.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.T {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return "'" + v.S + "'"
	case TBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case TDate:
		return "DATE '" + epoch.AddDate(0, 0, int(v.I)).Format("2006-01-02") + "'"
	}
	return "?"
}

// comparable reports whether two types can be ordered against each other.
func comparable(a, b Type) bool {
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}

// Compare orders two values. It returns -1, 0 or +1, and an error when the
// values are incomparable. NULLs are incomparable; callers must handle
// NULL semantics before ordering.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNull() || o.IsNull() {
		return 0, fmt.Errorf("expr: cannot compare NULL values")
	}
	if !comparable(v.T, o.T) {
		return 0, fmt.Errorf("expr: cannot compare %s with %s", v.T, o.T)
	}
	switch {
	case v.T == TString:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		}
		return 0, nil
	case v.T == TBool:
		switch {
		case v.I < o.I:
			return -1, nil
		case v.I > o.I:
			return 1, nil
		}
		return 0, nil
	case v.T == TFloat || o.T == TFloat:
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	default: // TInt / TDate cross-comparisons stay in integer space
		switch {
		case v.I < o.I:
			return -1, nil
		case v.I > o.I:
			return 1, nil
		}
		return 0, nil
	}
}

// Equal reports deep equality of two values, treating NULL = NULL as true
// (structural equality, not SQL three-valued equality).
func (v Value) Equal(o Value) bool {
	if v.IsNull() && o.IsNull() {
		return true
	}
	if v.IsNull() != o.IsNull() {
		return false
	}
	if !comparable(v.T, o.T) {
		return false
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// Width returns the estimated encoded width of the value in bytes; it
// feeds the shipping-cost accounting of the message cost model.
func (v Value) Width() int {
	switch v.T {
	case TString:
		return len(v.S) + 4
	case TBool:
		return 1
	default:
		return 8
	}
}

// Hash returns a 64-bit hash of the value, used by hash joins and hash
// aggregation. Values that compare equal hash equally (ints, dates and
// integral floats coincide in float space).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	if v.IsNull() {
		mix(0xff)
		return h
	}
	switch v.T {
	case TString:
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case TBool:
		mix(byte(v.I & 1))
	default:
		// Hash numerics through float64 so 1 (int) == 1.0 (float).
		bits := math.Float64bits(v.Float())
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	}
	return h
}
