package expr

import (
	"testing"
	"testing/quick"
)

func TestScalarFnParsing(t *testing.T) {
	for name, want := range map[string]ScalarFn{"year": FnYear, "MONTH": FnMonth, "Day": FnDay, "abs": FnAbs} {
		got, ok := ParseScalarFn(name)
		if !ok || got != want {
			t.Errorf("ParseScalarFn(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseScalarFn("sqrt"); ok {
		t.Error("unknown function should miss")
	}
}

func TestEvalDateFunctions(t *testing.T) {
	row := Row{MustDate("1995-03-15")}
	col := &Col{Name: "d", Index: 0}
	cases := []struct {
		fn   ScalarFn
		want int64
	}{{FnYear, 1995}, {FnMonth, 3}, {FnDay, 15}}
	for _, c := range cases {
		v, err := Eval(NewCall(c.fn, col), row)
		if err != nil || v.Int() != c.want {
			t.Errorf("%s: %v %v", c.fn, v, err)
		}
	}
	// NULL propagates.
	v, err := Eval(NewCall(FnYear, &Col{Name: "d", Index: 0}), Row{TypedNull(TDate)})
	if err != nil || !v.IsNull() {
		t.Errorf("NULL date: %v %v", v, err)
	}
	// Type error on non-dates.
	if _, err := Eval(NewCall(FnYear, NewConst(NewInt(5))), nil); err == nil {
		t.Error("YEAR over int must fail")
	}
}

func TestEvalAbs(t *testing.T) {
	if v, _ := Eval(NewCall(FnAbs, NewConst(NewInt(-7))), nil); v.Int() != 7 {
		t.Errorf("ABS(-7): %v", v)
	}
	if v, _ := Eval(NewCall(FnAbs, NewConst(NewFloat(-2.5))), nil); v.Float() != 2.5 {
		t.Errorf("ABS(-2.5): %v", v)
	}
	if _, err := Eval(NewCall(FnAbs, NewConst(NewString("x"))), nil); err == nil {
		t.Error("ABS over string must fail")
	}
}

func TestEvalCase(t *testing.T) {
	row := Row{NewInt(5)}
	a := &Col{Name: "a", Index: 0}
	c := NewCase([]When{
		{Cond: NewCmp(GT, a, NewConst(NewInt(10))), Result: NewConst(NewString("big"))},
		{Cond: NewCmp(GT, a, NewConst(NewInt(3))), Result: NewConst(NewString("mid"))},
	}, NewConst(NewString("small")))
	if v, err := Eval(c, row); err != nil || v.Str() != "mid" {
		t.Errorf("case: %v %v", v, err)
	}
	if v, _ := Eval(c, Row{NewInt(50)}); v.Str() != "big" {
		t.Errorf("first branch: %v", v)
	}
	if v, _ := Eval(c, Row{NewInt(1)}); v.Str() != "small" {
		t.Errorf("else: %v", v)
	}
	// Without ELSE: NULL.
	noElse := NewCase(c.Whens, nil)
	if v, _ := Eval(noElse, Row{NewInt(1)}); !v.IsNull() {
		t.Errorf("missing else: %v", v)
	}
}

func TestCaseCallStructural(t *testing.T) {
	a := NewCol("t", "a")
	c1 := NewCase([]When{{Cond: NewCmp(GT, a, NewConst(NewInt(1))), Result: NewConst(NewInt(1))}}, NewConst(NewInt(0)))
	c2 := Clone(c1)
	if !c1.Equal(c2) {
		t.Error("clone equality")
	}
	if c1.String() != "CASE WHEN t.a > 1 THEN 1 ELSE 0 END" {
		t.Errorf("String: %s", c1)
	}
	if len(c1.Children()) != 3 {
		t.Errorf("children: %d", len(c1.Children()))
	}
	call := NewCall(FnYear, a)
	if call.String() != "YEAR(t.a)" || !call.Equal(Clone(call)) {
		t.Errorf("call: %s", call)
	}
	// Transform reaches inside CASE.
	doubled := Transform(c1, func(n Expr) Expr {
		if k, ok := n.(*Const); ok && k.Val.T == TInt {
			return NewConst(NewInt(k.Val.Int() + 100))
		}
		return n
	})
	if doubled.(*Case).Else.(*Const).Val.Int() != 100 {
		t.Error("transform into else branch")
	}
	// Columns finds refs inside CASE conditions.
	if cols := Columns(c1); len(cols) != 1 || cols[0].Key() != "t.a" {
		t.Errorf("columns: %v", cols)
	}
	// TypeOf picks the first branch type.
	if TypeOf(c1, nil) != TInt {
		t.Error("case type")
	}
	if TypeOf(NewCall(FnYear, a), nil) != TInt {
		t.Error("year type")
	}
}

// Property: YEAR/MONTH/DAY of a date reassemble into the same date.
func TestDatePartsRoundTripProperty(t *testing.T) {
	f := func(days uint16) bool {
		d := NewDate(int64(days)) // 1970..2149
		y, _ := Eval(NewCall(FnYear, NewConst(d)), nil)
		m, _ := Eval(NewCall(FnMonth, NewConst(d)), nil)
		dd, _ := Eval(NewCall(FnDay, NewConst(d)), nil)
		re := MustDate(renderDate(y.Int(), m.Int(), dd.Int()))
		return re.Int() == d.Int()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func renderDate(y, m, d int64) string {
	two := func(v int64) string {
		if v < 10 {
			return "0" + string(rune('0'+v))
		}
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return itoa(y) + "-" + two(m) + "-" + two(d)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
