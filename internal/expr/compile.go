package expr

// Compiled columnar expression kernels. Compile translates a bound
// expression tree once into a graph of typed vector operators that
// evaluate a whole batch per call, using the static column types of the
// operator's input schema to pick int64/float64/string/bool lanes. Any
// node the compiler cannot type statically (CASE, aggregates, mixed or
// incomparable operand types, unresolved columns) becomes a fallback
// node that calls the row interpreter, so a compiled kernel always
// produces exactly the values Eval would — including the type tags of
// NULL results — or reports ErrNotVectorizable when a batch turns out
// not to be lane-pure at runtime, in which case the caller re-evaluates
// the whole batch with the interpreter.

import (
	"errors"
	"strings"
)

// ErrNotVectorizable reports that a batch cannot be evaluated by the
// compiled kernel — a column is not lane-pure, or a fallback node
// produced a value outside its static type. It is a per-batch verdict,
// not an error: callers must re-evaluate the batch with the interpreter.
var ErrNotVectorizable = errors.New("expr: batch not vectorizable")

// VecSource is the columnar view a kernel evaluates against: a batch of
// rows exposing per-column vectors (built lazily and cached by the
// executor) plus row access for fallback nodes. ColVec reports false
// when the column cannot be converted (out of range, or not lane-pure).
type VecSource interface {
	ColVec(idx int) (*Vec, bool)
	Row(i int) Row
	Len() int
}

// kNode is one compiled operator: it evaluates the rows chosen by sel
// (all src rows when sel is nil) into a dense vector of length n.
// Nodes own their output scratch, so a kernel is not safe for
// concurrent use; each executor operator compiles its own instance.
type kNode interface {
	eval(src VecSource, sel []int32, n int) (*Vec, error)
}

// Kernel is a compiled scalar expression.
type Kernel struct{ root kNode }

// Compile compiles a bound expression against the static column types
// of the input schema (indexed by Col.Index). It reports false when
// nothing would be gained: the whole tree is a fallback, or the
// expression is a bare column or literal (callers handle those leaves
// directly and exactly).
func Compile(e Expr, types []Type) (*Kernel, bool) {
	if e == nil {
		return nil, false
	}
	switch e.(type) {
	case *Col, *Const:
		return nil, false
	}
	c := compiler{types: types}
	node := c.compile(e)
	if isFallback(node) {
		return nil, false
	}
	return &Kernel{root: node}, true
}

// EvalVec evaluates the kernel over the selected rows of src, returning
// a dense vector of len(sel) results (src.Len() when sel is nil).
func (k *Kernel) EvalVec(src VecSource, sel []int32) (*Vec, error) {
	n := len(sel)
	if sel == nil {
		n = src.Len()
	}
	return k.root.eval(src, sel, n)
}

// predConj is one conjunct of a compiled predicate: vectorized when k is
// non-nil, interpreted row-by-row otherwise.
type predConj struct {
	k *Kernel
	e Expr
}

// PredKernel is a compiled filter predicate evaluated conjunct at a
// time: each conjunct shrinks the selection before the next runs, so
// later conjuncts only touch surviving rows. Rows are kept only when
// every conjunct is TRUE (SQL WHERE semantics: NULL drops the row),
// which matches the interpreter's short-circuit conjunction exactly.
type PredKernel struct{ conjs []predConj }

// CompilePred compiles a filter predicate. It reports false when no
// conjunct vectorizes (the caller should keep the plain interpreter).
func CompilePred(e Expr, types []Type) (*PredKernel, bool) {
	if e == nil {
		return nil, false
	}
	c := compiler{types: types}
	cs := Conjuncts(e)
	out := &PredKernel{conjs: make([]predConj, 0, len(cs))}
	vectorized := false
	for _, cj := range cs {
		if c.staticType(cj) == TBool {
			if k, ok := Compile(cj, types); ok {
				out.conjs = append(out.conjs, predConj{k: k})
				vectorized = true
				continue
			}
		}
		out.conjs = append(out.conjs, predConj{e: cj})
	}
	if !vectorized {
		return nil, false
	}
	return out, true
}

// emptySel is the canonical non-nil empty selection: Select must never
// return nil for "no rows", because callers treat a nil selection as
// "all rows".
var emptySel = make([]int32, 0)

// Select filters sel through the predicate and returns the surviving
// row indexes. A nil sel means all of src's rows (an empty non-nil sel
// selects nothing); the result is then built in buf. A non-nil sel is
// compacted in place. The returned selection is never nil.
func (p *PredKernel) Select(src VecSource, sel []int32, buf []int32) ([]int32, error) {
	cur, dense := sel, sel == nil
	for _, cj := range p.conjs {
		if cj.k != nil {
			var pass *Vec
			var err error
			if dense {
				pass, err = cj.k.EvalVec(src, nil)
			} else {
				pass, err = cj.k.EvalVec(src, cur)
			}
			if err != nil {
				return nil, err
			}
			if dense {
				n := src.Len()
				out := buf[:0]
				for i := 0; i < n; i++ {
					if pass.B.Get(i) && !pass.IsNullAt(i) {
						out = append(out, int32(i))
					}
				}
				cur, dense = out, false
			} else {
				w := 0
				for j, si := range cur {
					if pass.B.Get(j) && !pass.IsNullAt(j) {
						cur[w] = si
						w++
					}
				}
				cur = cur[:w]
			}
		} else if dense {
			n := src.Len()
			out := buf[:0]
			for i := 0; i < n; i++ {
				ok, err := EvalBool(cj.e, src.Row(i))
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, int32(i))
				}
			}
			cur, dense = out, false
		} else {
			w := 0
			for _, si := range cur {
				ok, err := EvalBool(cj.e, src.Row(int(si)))
				if err != nil {
					return nil, err
				}
				if ok {
					cur[w] = si
					w++
				}
			}
			cur = cur[:w]
		}
		if len(cur) == 0 {
			return emptySel, nil
		}
	}
	if cur == nil {
		// Unreachable with CompilePred's >=1-conjunct guarantee, but a
		// conjunct-free predicate passes everything.
		out := buf[:0]
		for i, n := 0, src.Len(); i < n; i++ {
			out = append(out, int32(i))
		}
		if out == nil {
			out = emptySel
		}
		cur = out
	}
	return cur, nil
}

// compiler carries the static input-column types through compilation.
type compiler struct{ types []Type }

func (c compiler) colType(col *Col) Type {
	if col.Index < 0 || col.Index >= len(c.types) {
		return TNull
	}
	return c.types[col.Index]
}

// staticType mirrors the interpreter's *runtime* result types, which
// differ from TypeOf's estimates in two ways that matter for lane
// selection: arithmetic stays integral only when BOTH operands are
// exactly TInt (a date+int lands on the float lane, like evalArith),
// and a NULL literal is TNull no matter which type tag it carries.
func (c compiler) staticType(e Expr) Type {
	switch n := e.(type) {
	case *Col:
		return c.colType(n)
	case *Const:
		if n.Val.IsNull() {
			return TNull
		}
		return n.Val.T
	case *Cmp, *And, *Or, *Not, *Like, *In, *Between, *IsNull:
		return TBool
	case *Arith:
		lt, rt := c.staticType(n.L), c.staticType(n.R)
		if n.Op != Div && lt == TInt && rt == TInt {
			return TInt
		}
		return TFloat
	case *Concat:
		return TString
	case *Call:
		// evalCall's ABS returns TFloat for a float argument and TInt for
		// every other numeric one (including dates); YEAR/MONTH/DAY are TInt.
		if n.Fn == FnAbs && c.staticType(n.Arg) == TFloat {
			return TFloat
		}
		return TInt
	case *Case:
		for _, w := range n.Whens {
			if t := c.staticType(w.Result); t != TNull {
				return t
			}
		}
		if n.Else != nil {
			return c.staticType(n.Else)
		}
		return TNull
	case *Agg:
		return TypeOf(e, c.colType)
	}
	return TNull
}

func (c compiler) fallback(e Expr) kNode {
	return &kFallback{e: e, t: c.staticType(e)}
}

func isFallback(n kNode) bool {
	_, ok := n.(*kFallback)
	return ok
}

func intClass(t Type) bool { return t == TInt || t == TDate }

func (c compiler) compile(e Expr) kNode {
	switch n := e.(type) {
	case *Col:
		return &kCol{idx: n.Index, t: c.colType(n)}
	case *Const:
		return &kConst{v: n.Val}
	case *Cmp:
		return c.compileCmp(n)
	case *And:
		l, r, ok := c.compileBoolPair(n.L, n.R)
		if !ok || (isFallback(l) && isFallback(r)) {
			return c.fallback(e)
		}
		return &kAnd{l: l, r: r}
	case *Or:
		l, r, ok := c.compileBoolPair(n.L, n.R)
		if !ok || (isFallback(l) && isFallback(r)) {
			return c.fallback(e)
		}
		return &kOr{l: l, r: r}
	case *Not:
		switch c.staticType(n.E) {
		case TBool:
			return &kNot{c: c.compile(n.E)}
		case TNull:
			return &kAllNull{children: []kNode{c.compile(n.E)}, t: TBool}
		}
		return c.fallback(e)
	case *Arith:
		return c.compileArith(n)
	case *Concat:
		return c.compileConcat(n)
	case *Like:
		switch c.staticType(n.E) {
		case TString:
			return newKLike(c.compile(n.E), n.Pattern, n.Negated)
		case TNull:
			return &kAllNull{children: []kNode{c.compile(n.E)}, t: TBool}
		}
		return c.fallback(e)
	case *In:
		return c.compileIn(n)
	case *Between:
		return c.compileBetween(n)
	case *IsNull:
		child := c.compile(n.E)
		if isFallback(child) {
			return c.fallback(e)
		}
		return &kIsNull{c: child, negated: n.Negated}
	case *Call:
		return c.compileCall(n)
	}
	// CASE (lazy branch evaluation), aggregates, unknown nodes.
	return c.fallback(e)
}

// compileBoolPair compiles the two operands of a logical connective onto
// bool lanes. Statically NULL operands become all-NULL bool vectors
// (Kleene logic handles them); operands of any other non-bool type make
// the connective fall back (the interpreter treats such operands as
// FALSE-or-NULL, which the kernels do not model).
func (c compiler) compileBoolPair(l, r Expr) (kNode, kNode, bool) {
	boolish := func(t Type) bool { return t == TBool || t == TNull }
	lt, rt := c.staticType(l), c.staticType(r)
	if !boolish(lt) || !boolish(rt) {
		return nil, nil, false
	}
	ln, rn := c.compile(l), c.compile(r)
	if lt == TNull {
		ln = &kAllNull{children: []kNode{ln}, t: TBool}
	}
	if rt == TNull {
		rn = &kAllNull{children: []kNode{rn}, t: TBool}
	}
	return ln, rn, true
}

func (c compiler) compileCmp(n *Cmp) kNode {
	lt, rt := c.staticType(n.L), c.staticType(n.R)
	if lt == TNull || rt == TNull {
		return &kAllNull{children: []kNode{c.compile(n.L), c.compile(n.R)}, t: TBool}
	}
	l, r := c.compile(n.L), c.compile(n.R)
	switch {
	case lt == TString && rt == TString:
		return &kCmp{op: n.Op, lane: TString, l: l, r: r}
	case lt == TBool && rt == TBool:
		return &kCmp{op: n.Op, lane: TInt, l: &kCastInt{c: l}, r: &kCastInt{c: r}}
	case intClass(lt) && intClass(rt):
		return &kCmp{op: n.Op, lane: TInt, l: l, r: r}
	case lt.Numeric() && rt.Numeric():
		return &kCmp{op: n.Op, lane: TFloat, l: c.toFloat(l, lt), r: c.toFloat(r, rt)}
	}
	// Incomparable operand types: the interpreter raises a per-row error
	// (unless a side is NULL), so keep its exact behaviour.
	return c.fallback(n)
}

func (c compiler) compileArith(n *Arith) kNode {
	lt, rt := c.staticType(n.L), c.staticType(n.R)
	if lt == TNull || rt == TNull {
		return &kAllNull{children: []kNode{c.compile(n.L), c.compile(n.R)}, t: TFloat}
	}
	arithable := func(t Type) bool { return t.Numeric() || t == TBool }
	if !arithable(lt) || !arithable(rt) {
		return c.fallback(n)
	}
	l, r := c.compile(n.L), c.compile(n.R)
	if lt == TInt && rt == TInt && n.Op != Div {
		return &kArith{op: n.Op, intLane: true, l: l, r: r}
	}
	return &kArith{op: n.Op, l: c.toFloat(l, lt), r: c.toFloat(r, rt)}
}

func (c compiler) compileConcat(n *Concat) kNode {
	lt, rt := c.staticType(n.L), c.staticType(n.R)
	if lt == TNull || rt == TNull {
		return &kAllNull{children: []kNode{c.compile(n.L), c.compile(n.R)}, t: TString}
	}
	if lt != TString || rt != TString {
		// The interpreter raises a per-row type error; keep its behaviour.
		return c.fallback(n)
	}
	return &kConcat{l: c.compile(n.L), r: c.compile(n.R)}
}

func (c compiler) compileIn(n *In) kNode {
	t := c.staticType(n.E)
	if t == TNull {
		return &kAllNull{children: []kNode{c.compile(n.E)}, t: TBool}
	}
	child := c.compile(n.E)
	k := &kIn{c: child, negated: n.Negated, lane: t}
	// Items the child is incomparable with are skipped, exactly as the
	// interpreter skips Compare errors while scanning the list.
	for _, it := range n.List {
		if it.IsNull() {
			continue
		}
		switch {
		case intClass(t):
			if intClass(it.T) {
				k.intItems = append(k.intItems, it.I)
			} else if it.T == TFloat {
				k.fItems = append(k.fItems, it.F)
			}
		case t == TFloat:
			if it.T.Numeric() {
				k.fItems = append(k.fItems, it.Float())
			}
		case t == TString:
			if it.T == TString {
				k.sItems = append(k.sItems, it.S)
			}
		case t == TBool:
			if it.T == TBool {
				k.intItems = append(k.intItems, it.I)
			}
		}
	}
	if t == TBool {
		k.lane = TInt
		k.c = &kCastInt{c: child}
	}
	return k
}

func (c compiler) compileBetween(n *Between) kNode {
	t := c.staticType(n.E)
	if t == TNull {
		return &kAllNull{children: []kNode{c.compile(n.E)}, t: TBool}
	}
	if n.Lo.IsNull() || n.Hi.IsNull() {
		return c.fallback(n) // Compare against NULL bounds errors
	}
	k := &kBetween{c: c.compile(n.E), lane: t}
	switch {
	case t == TString && n.Lo.T == TString && n.Hi.T == TString:
		k.loS, k.hiS = n.Lo.S, n.Hi.S
	case intClass(t) && n.Lo.T.Numeric() && n.Hi.T.Numeric():
		k.lane = TInt
		if n.Lo.T == TFloat {
			k.loFloat, k.loF = true, n.Lo.F
		} else {
			k.loI = n.Lo.I
		}
		if n.Hi.T == TFloat {
			k.hiFloat, k.hiF = true, n.Hi.F
		} else {
			k.hiI = n.Hi.I
		}
	case t == TFloat && n.Lo.T.Numeric() && n.Hi.T.Numeric():
		k.loFloat, k.hiFloat = true, true
		k.loF, k.hiF = n.Lo.Float(), n.Hi.Float()
	default:
		return c.fallback(n)
	}
	return k
}

func (c compiler) compileCall(n *Call) kNode {
	t := c.staticType(n.Arg)
	if t == TNull {
		return &kAllNull{children: []kNode{c.compile(n.Arg)}, t: TInt}
	}
	switch n.Fn {
	case FnYear, FnMonth, FnDay:
		if t == TDate {
			return &kCall{fn: n.Fn, c: c.compile(n.Arg)}
		}
	case FnAbs:
		if t.Numeric() {
			return &kCall{fn: n.Fn, c: c.compile(n.Arg)}
		}
	}
	return c.fallback(n)
}

// toFloat coerces a node of static type t onto the float lane.
func (c compiler) toFloat(n kNode, t Type) kNode {
	if t == TFloat {
		return n
	}
	return &kCastFloat{c: n}
}

// ---- leaf nodes ----

type kCol struct {
	idx int
	t   Type
	out Vec
}

func (k *kCol) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	col, ok := src.ColVec(k.idx)
	if !ok {
		return nil, ErrNotVectorizable
	}
	if sel == nil {
		return col, nil
	}
	k.out.reset(k.t, n)
	switch k.t {
	case TInt, TDate:
		for j, si := range sel {
			k.out.I[j] = col.I[si]
		}
	case TFloat:
		for j, si := range sel {
			k.out.F[j] = col.F[si]
		}
	case TString:
		for j, si := range sel {
			k.out.S[j] = col.S[si]
		}
	case TBool:
		for j, si := range sel {
			if col.B.Get(int(si)) {
				k.out.B.Set(j)
			}
		}
	}
	if col.Null != nil {
		var nulls Bitmap
		for j, si := range sel {
			if col.Null.Get(int(si)) {
				if nulls == nil {
					nulls = k.out.ensureNull()
				}
				nulls.Set(j)
			}
		}
	}
	return &k.out, nil
}

type kConst struct {
	v      Value
	out    Vec
	filled int
}

func (k *kConst) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	if n > k.filled {
		t := k.v.T
		if k.v.IsNull() {
			t = TNull
		}
		k.out.reset(t, n)
		k.out.NullT = k.v.T
		if k.v.IsNull() {
			nulls := k.out.ensureNull()
			for w := range nulls {
				nulls[w] = ^uint64(0)
			}
		} else {
			switch t {
			case TInt, TDate:
				for i := range k.out.I {
					k.out.I[i] = k.v.I
				}
			case TFloat:
				for i := range k.out.F {
					k.out.F[i] = k.v.F
				}
			case TString:
				for i := range k.out.S {
					k.out.S[i] = k.v.S
				}
			case TBool:
				if k.v.I != 0 {
					for w := range k.out.B {
						k.out.B[w] = ^uint64(0)
					}
				}
			}
		}
		k.filled = n
		return &k.out, nil
	}
	// Storage already broadcast wide enough: narrow the view.
	k.out.N = n
	switch k.out.T {
	case TInt, TDate:
		k.out.I = k.out.I[:n]
	case TFloat:
		k.out.F = k.out.F[:n]
	case TString:
		k.out.S = k.out.S[:n]
	}
	return &k.out, nil
}

// ---- cast nodes ----

type kCastFloat struct {
	c   kNode
	out Vec
}

func (k *kCastFloat) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TFloat, n)
	switch cv.T {
	case TInt, TDate:
		for i := 0; i < n; i++ {
			k.out.F[i] = float64(cv.I[i])
		}
	case TBool:
		// reset reuses the lane without zeroing: write every slot.
		for i := 0; i < n; i++ {
			if cv.B.Get(i) {
				k.out.F[i] = 1
			} else {
				k.out.F[i] = 0
			}
		}
	case TFloat:
		copy(k.out.F, cv.F)
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

type kCastInt struct {
	c   kNode
	out Vec
}

func (k *kCastInt) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TInt, n)
	switch cv.T {
	case TBool:
		// reset reuses the lane without zeroing: write every slot.
		for i := 0; i < n; i++ {
			if cv.B.Get(i) {
				k.out.I[i] = 1
			} else {
				k.out.I[i] = 0
			}
		}
	case TInt, TDate:
		copy(k.out.I, cv.I)
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

// ---- comparison ----

type kCmp struct {
	op   CmpOp
	lane Type // TInt (integer space), TFloat, TString
	l, r kNode
	out  Vec
}

func (k *kCmp) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	lv, err := k.l.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	rv, err := k.r.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	switch k.lane {
	case TInt:
		cmpSetBits(k.op, lv.I[:n], rv.I[:n], k.out.B)
	case TFloat:
		cmpSetBits(k.op, lv.F[:n], rv.F[:n], k.out.B)
	case TString:
		cmpSetBits(k.op, lv.S[:n], rv.S[:n], k.out.B)
	}
	unionNulls(&k.out, lv.Null, rv.Null)
	return &k.out, nil
}

// cmpSetBits sets out bit i when a[i] op b[i]. Every operator is spelled
// with < and > only so that float comparisons reproduce Value.Compare
// exactly: NaN is neither less nor greater than anything, so it compares
// "equal" to everything, as the interpreter's three-way compare does.
func cmpSetBits[T int64 | float64 | string](op CmpOp, a, b []T, out Bitmap) {
	switch op {
	case EQ:
		for i := range a {
			if !(a[i] < b[i]) && !(a[i] > b[i]) {
				out.Set(i)
			}
		}
	case NE:
		for i := range a {
			if a[i] < b[i] || a[i] > b[i] {
				out.Set(i)
			}
		}
	case LT:
		for i := range a {
			if a[i] < b[i] {
				out.Set(i)
			}
		}
	case LE:
		for i := range a {
			if !(a[i] > b[i]) {
				out.Set(i)
			}
		}
	case GT:
		for i := range a {
			if a[i] > b[i] {
				out.Set(i)
			}
		}
	case GE:
		for i := range a {
			if !(a[i] < b[i]) {
				out.Set(i)
			}
		}
	}
}

// unionNulls ORs a|b into dst.Null, preserving null bits dst already
// set (e.g. division by zero). Both nil leaves dst.Null untouched.
func unionNulls(dst *Vec, a, b Bitmap) {
	if a == nil && b == nil {
		return
	}
	nulls := dst.ensureNull()
	for w := range nulls {
		nulls[w] |= a.word(w) | b.word(w)
	}
}

// ---- three-valued logic ----

type kAnd struct {
	l, r kNode
	out  Vec
}

func (k *kAnd) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	lv, err := k.l.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	rv, err := k.r.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	nw := bitmapWords(n)
	if lv.Null == nil && rv.Null == nil {
		for w := 0; w < nw; w++ {
			k.out.B[w] = lv.B[w] & rv.B[w]
		}
		return &k.out, nil
	}
	nulls := k.out.ensureNull()
	for w := 0; w < nw; w++ {
		ln, rn := lv.Null.word(w), rv.Null.word(w)
		lt, rt := lv.B[w]&^ln, rv.B[w]&^rn
		lf, rf := ^lv.B[w]&^ln, ^rv.B[w]&^rn
		k.out.B[w] = lt & rt
		nulls[w] = (ln | rn) &^ (lf | rf)
	}
	return &k.out, nil
}

type kOr struct {
	l, r kNode
	out  Vec
}

func (k *kOr) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	lv, err := k.l.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	rv, err := k.r.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	nw := bitmapWords(n)
	if lv.Null == nil && rv.Null == nil {
		for w := 0; w < nw; w++ {
			k.out.B[w] = lv.B[w] | rv.B[w]
		}
		return &k.out, nil
	}
	nulls := k.out.ensureNull()
	for w := 0; w < nw; w++ {
		ln, rn := lv.Null.word(w), rv.Null.word(w)
		lt, rt := lv.B[w]&^ln, rv.B[w]&^rn
		k.out.B[w] = lt | rt
		nulls[w] = (ln | rn) &^ (lt | rt)
	}
	return &k.out, nil
}

type kNot struct {
	c   kNode
	out Vec
}

func (k *kNot) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	nw := bitmapWords(n)
	for w := 0; w < nw; w++ {
		k.out.B[w] = ^cv.B[w] &^ cv.Null.word(w)
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

// ---- arithmetic ----

type kArith struct {
	op      ArithOp
	intLane bool
	l, r    kNode
	out     Vec
}

func (k *kArith) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	lv, err := k.l.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	rv, err := k.r.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	if k.intLane {
		k.out.reset(TInt, n)
		a, b := lv.I[:n], rv.I[:n]
		switch k.op {
		case Add:
			for i := range a {
				k.out.I[i] = a[i] + b[i]
			}
		case Sub:
			for i := range a {
				k.out.I[i] = a[i] - b[i]
			}
		case Mul:
			for i := range a {
				k.out.I[i] = a[i] * b[i]
			}
		}
	} else {
		k.out.reset(TFloat, n)
		a, b := lv.F[:n], rv.F[:n]
		switch k.op {
		case Add:
			for i := range a {
				k.out.F[i] = a[i] + b[i]
			}
		case Sub:
			for i := range a {
				k.out.F[i] = a[i] - b[i]
			}
		case Mul:
			for i := range a {
				k.out.F[i] = a[i] * b[i]
			}
		case Div:
			var nulls Bitmap
			for i := range a {
				if b[i] == 0 {
					if nulls == nil {
						nulls = k.out.ensureNull()
					}
					nulls.Set(i)
					continue
				}
				k.out.F[i] = a[i] / b[i]
			}
		}
	}
	// NULL results of arithmetic are float-typed, even on the int lane.
	unionNulls(&k.out, lv.Null, rv.Null)
	k.out.NullT = TFloat
	return &k.out, nil
}

// ---- range, membership, pattern, null tests ----

type kBetween struct {
	c                kNode
	lane             Type
	loFloat, hiFloat bool
	loI, hiI         int64
	loF, hiF         float64
	loS, hiS         string
	out              Vec
}

func (k *kBetween) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	switch k.lane {
	case TInt:
		for i := 0; i < n; i++ {
			v := cv.I[i]
			ok := true
			if k.loFloat {
				ok = !(float64(v) < k.loF)
			} else {
				ok = v >= k.loI
			}
			if ok {
				if k.hiFloat {
					ok = !(float64(v) > k.hiF)
				} else {
					ok = v <= k.hiI
				}
			}
			if ok {
				k.out.B.Set(i)
			}
		}
	case TFloat:
		for i := 0; i < n; i++ {
			v := cv.F[i]
			if !(v < k.loF) && !(v > k.hiF) {
				k.out.B.Set(i)
			}
		}
	case TString:
		for i := 0; i < n; i++ {
			v := cv.S[i]
			if v >= k.loS && v <= k.hiS {
				k.out.B.Set(i)
			}
		}
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

type kIn struct {
	c        kNode
	negated  bool
	lane     Type
	intItems []int64
	fItems   []float64
	sItems   []string
	out      Vec
}

func (k *kIn) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	switch k.lane {
	case TInt, TDate:
		for i := 0; i < n; i++ {
			v := cv.I[i]
			found := false
			for _, it := range k.intItems {
				if v == it {
					found = true
					break
				}
			}
			if !found && len(k.fItems) > 0 {
				fv := float64(v)
				for _, it := range k.fItems {
					if !(fv < it) && !(fv > it) {
						found = true
						break
					}
				}
			}
			if found != k.negated {
				k.out.B.Set(i)
			}
		}
	case TFloat:
		for i := 0; i < n; i++ {
			v := cv.F[i]
			found := false
			for _, it := range k.fItems {
				if !(v < it) && !(v > it) {
					found = true
					break
				}
			}
			if found != k.negated {
				k.out.B.Set(i)
			}
		}
	case TString:
		for i := 0; i < n; i++ {
			v := cv.S[i]
			found := false
			for _, it := range k.sItems {
				if v == it {
					found = true
					break
				}
			}
			if found != k.negated {
				k.out.B.Set(i)
			}
		}
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

type likeMode int

const (
	likeExact likeMode = iota
	likePrefix
	likeSuffix
	likeContains
	likeGeneral
)

type kLike struct {
	c       kNode
	negated bool
	mode    likeMode
	needle  string
	pattern string
	out     Vec
}

// newKLike classifies the pattern so the common shapes (exact, "abc%",
// "%abc", "%abc%") run as plain string operations instead of the general
// wildcard matcher.
func newKLike(child kNode, pattern string, negated bool) *kLike {
	k := &kLike{c: child, negated: negated, pattern: pattern, mode: likeGeneral}
	plain := func(s string) bool { return !strings.ContainsAny(s, "%_") }
	switch {
	case plain(pattern):
		k.mode, k.needle = likeExact, pattern
	case len(pattern) >= 2 && pattern[0] == '%' && pattern[len(pattern)-1] == '%' &&
		plain(pattern[1:len(pattern)-1]):
		k.mode, k.needle = likeContains, pattern[1:len(pattern)-1]
	case pattern[0] == '%' && plain(pattern[1:]):
		k.mode, k.needle = likeSuffix, pattern[1:]
	case pattern[len(pattern)-1] == '%' && plain(pattern[:len(pattern)-1]):
		k.mode, k.needle = likePrefix, pattern[:len(pattern)-1]
	}
	return k
}

func (k *kLike) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	for i := 0; i < n; i++ {
		var m bool
		switch k.mode {
		case likeExact:
			m = cv.S[i] == k.needle
		case likePrefix:
			m = strings.HasPrefix(cv.S[i], k.needle)
		case likeSuffix:
			m = strings.HasSuffix(cv.S[i], k.needle)
		case likeContains:
			m = strings.Contains(cv.S[i], k.needle)
		default:
			m = MatchLike(cv.S[i], k.pattern)
		}
		if m != k.negated {
			k.out.B.Set(i)
		}
	}
	k.out.Null = cv.Null
	return &k.out, nil
}

type kConcat struct {
	l, r kNode
	out  Vec
}

func (k *kConcat) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	lv, err := k.l.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	rv, err := k.r.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TString, n)
	for i := 0; i < n; i++ {
		k.out.S[i] = lv.S[i] + rv.S[i]
	}
	// NULL results of concat are string-typed (reset already set NullT).
	unionNulls(&k.out, lv.Null, rv.Null)
	return &k.out, nil
}

type kIsNull struct {
	c       kNode
	negated bool
	out     Vec
}

func (k *kIsNull) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	k.out.reset(TBool, n)
	nw := bitmapWords(n)
	for w := 0; w < nw; w++ {
		if k.negated {
			k.out.B[w] = ^cv.Null.word(w)
		} else {
			k.out.B[w] = cv.Null.word(w)
		}
	}
	return &k.out, nil
}

// ---- scalar calls ----

type kCall struct {
	fn  ScalarFn
	c   kNode
	out Vec
}

func (k *kCall) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	cv, err := k.c.eval(src, sel, n)
	if err != nil {
		return nil, err
	}
	switch k.fn {
	case FnAbs:
		if cv.T == TFloat {
			k.out.reset(TFloat, n)
			for i := 0; i < n; i++ {
				f := cv.F[i]
				if f < 0 {
					f = -f
				}
				k.out.F[i] = f
			}
		} else {
			k.out.reset(TInt, n)
			for i := 0; i < n; i++ {
				v := cv.I[i]
				if v < 0 {
					v = -v
				}
				k.out.I[i] = v
			}
		}
	case FnYear:
		k.out.reset(TInt, n)
		for i := 0; i < n; i++ {
			y, _, _ := civilFromDays(cv.I[i])
			k.out.I[i] = y
		}
	case FnMonth:
		k.out.reset(TInt, n)
		for i := 0; i < n; i++ {
			_, m, _ := civilFromDays(cv.I[i])
			k.out.I[i] = int64(m)
		}
	case FnDay:
		k.out.reset(TInt, n)
		for i := 0; i < n; i++ {
			_, _, d := civilFromDays(cv.I[i])
			k.out.I[i] = int64(d)
		}
	}
	// Scalar calls produce int-typed NULLs for every function.
	k.out.Null = cv.Null
	k.out.NullT = TInt
	return &k.out, nil
}

// civilFromDays converts days since 1970-01-01 to a proleptic Gregorian
// (year, month, day), matching time.Time's calendar for the full range
// the interpreter's epoch.AddDate can represent.
func civilFromDays(z int64) (y int64, m, d int) {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		y++
	}
	return
}

// ---- constant-NULL and fallback nodes ----

// kAllNull evaluates its children (so evaluation errors still surface in
// tree order) and produces an all-NULL vector: a comparison, arithmetic
// or predicate with a statically NULL operand is NULL on every row.
type kAllNull struct {
	children []kNode
	t        Type
	out      Vec
}

func (k *kAllNull) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	for _, c := range k.children {
		if _, err := c.eval(src, sel, n); err != nil {
			return nil, err
		}
	}
	k.out.reset(k.t, n)
	k.out.NullT = k.t
	nulls := k.out.ensureNull()
	for w := range nulls {
		nulls[w] = ^uint64(0)
	}
	return &k.out, nil
}

// kFallback evaluates an unsupported subtree with the row interpreter.
// Results must stay within the node's static type; a stray value turns
// the whole batch over to the interpreter via ErrNotVectorizable.
type kFallback struct {
	e   Expr
	t   Type
	out Vec
}

func (k *kFallback) eval(src VecSource, sel []int32, n int) (*Vec, error) {
	k.out.reset(k.t, n)
	var nulls Bitmap
	for j := 0; j < n; j++ {
		ri := j
		if sel != nil {
			ri = int(sel[j])
		}
		v, err := Eval(k.e, src.Row(ri))
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			if nulls == nil {
				nulls = k.out.ensureNull()
			}
			nulls.Set(j)
			continue
		}
		if v.T != k.t {
			return nil, ErrNotVectorizable
		}
		switch k.t {
		case TInt, TDate:
			k.out.I[j] = v.I
		case TFloat:
			k.out.F[j] = v.F
		case TString:
			k.out.S[j] = v.S
		case TBool:
			if v.I != 0 {
				k.out.B.Set(j)
			}
		}
	}
	return &k.out, nil
}
