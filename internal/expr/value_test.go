package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.T != TInt || v.Int() != 42 || v.IsNull() {
		t.Errorf("NewInt: got %+v", v)
	}
	if v := NewFloat(2.5); v.T != TFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: got %+v", v)
	}
	if v := NewString("hi"); v.T != TString || v.Str() != "hi" {
		t.Errorf("NewString: got %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true): got %+v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): got %+v", v)
	}
	if v := NullValue(); !v.IsNull() {
		t.Errorf("NullValue not null: %+v", v)
	}
	if v := TypedNull(TInt); !v.IsNull() || v.T != TInt {
		t.Errorf("TypedNull: got %+v", v)
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1970-01-01")
	if err != nil || v.Int() != 0 {
		t.Fatalf("epoch: %v %v", v, err)
	}
	v, err = ParseDate("1970-01-02")
	if err != nil || v.Int() != 1 {
		t.Fatalf("epoch+1: %v %v", v, err)
	}
	v, err = ParseDate("1995-03-15")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := v.String(); got != "DATE '1995-03-15'" {
		t.Errorf("round-trip: got %s", got)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewDate(10), NewDate(20), -1},
		{NewDate(10), NewInt(10), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareErrors(t *testing.T) {
	if _, err := NewInt(1).Compare(NewString("x")); err == nil {
		t.Error("int vs string should be incomparable")
	}
	if _, err := NullValue().Compare(NewInt(1)); err == nil {
		t.Error("NULL comparison should error")
	}
	if _, err := NewBool(true).Compare(NewInt(1)); err == nil {
		t.Error("bool vs int should be incomparable")
	}
}

func TestValueEqual(t *testing.T) {
	if !NullValue().Equal(TypedNull(TString)) {
		t.Error("NULL should structurally equal NULL")
	}
	if NullValue().Equal(NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !NewInt(5).Equal(NewFloat(5)) {
		t.Error("5 == 5.0 across numeric types")
	}
	if NewString("a").Equal(NewInt(1)) {
		t.Error("string != int")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(7), "7"},
		{NewFloat(2.5), "2.5"},
		{NewString("abc"), "'abc'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NullValue(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueWidth(t *testing.T) {
	if NewInt(1).Width() != 8 {
		t.Error("int width")
	}
	if NewString("abcd").Width() != 8 {
		t.Error("string width = len+4")
	}
	if NewBool(true).Width() != 1 {
		t.Error("bool width")
	}
}

// Property: Compare is antisymmetric over ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := NewInt(a).Compare(NewInt(b))
		y, err2 := NewInt(b).Compare(NewInt(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hashes of equal numerics across int/float agree.
func TestHashNumericCoherenceProperty(t *testing.T) {
	f := func(a int32) bool {
		return NewInt(int64(a)).Hash() == NewFloat(float64(a)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: equal values hash equally for strings.
func TestHashStringProperty(t *testing.T) {
	f := func(s string) bool {
		return NewString(s).Hash() == NewString(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDistinguishes(t *testing.T) {
	// Not a strict requirement, but these common values should not collide.
	vals := []Value{NewInt(0), NewInt(1), NewString(""), NewString("a"), NullValue(), NewBool(true)}
	seen := map[uint64]Value{}
	for _, v := range vals {
		if prev, ok := seen[v.Hash()]; ok && !prev.Equal(v) {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[v.Hash()] = v
	}
}

func TestFloatCoercion(t *testing.T) {
	if NewDate(3).Float() != 3 {
		t.Error("date float coercion")
	}
	if NewBool(true).Float() != 1 {
		t.Error("bool float coercion")
	}
	if !math.IsNaN(NewFloat(math.NaN()).Float()) == false && false {
		t.Error("unreachable")
	}
}
