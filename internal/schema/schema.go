// Package schema implements the geo-distributed catalog: locations,
// databases, tables with per-column statistics, and GAV mappings that
// allow a global table to be horizontally fragmented across locations
// (Section 7.5 of the paper rewrites such tables as unions of per-site
// fragments).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"cgdqp/internal/expr"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type expr.Type
	// AvgWidth is the average encoded width in bytes; 0 means "use the
	// type default" (8 for numerics, 16 for strings).
	AvgWidth int
}

// Width returns the effective average width of the column in bytes.
func (c Column) Width() int {
	if c.AvgWidth > 0 {
		return c.AvgWidth
	}
	if c.Type == expr.TString {
		return 16
	}
	if c.Type == expr.TBool {
		return 1
	}
	return 8
}

// ColStats holds per-column statistics used by the cardinality estimator.
type ColStats struct {
	Distinct int64 // number of distinct values; 0 = unknown
	Min, Max expr.Value
}

// Fragment is one physical placement of (a horizontal slice of) a table.
// A conventional table has exactly one fragment. A fragmented table
// (Section 7.5) has several, each holding RowCount rows at Location
// within database DB.
type Fragment struct {
	DB       string
	Location string
	RowCount int64
}

// Table is a global-schema table together with its GAV mapping onto
// physical fragments and its statistics.
type Table struct {
	Name      string
	Columns   []Column
	Fragments []Fragment
	ColStats  map[string]ColStats
	// SortedBy declares the physical sort order of the stored rows
	// (ascending column names, e.g. the primary key for dbgen-style
	// data). The optimizer uses it as an "interesting property": scans
	// of sorted tables feed merge joins without re-sorting. Loading
	// validates the declared order.
	SortedBy []string
	// Indexes declares which columns carry B+ tree secondary indexes
	// (int64-class or string key types only; others are ignored). Both
	// storage backends maintain the declared indexes, and the optimizer
	// considers IndexScan / IndexLookupJoin alternatives for them.
	// Empty by default: existing catalogs plan exactly as before.
	Indexes []string
}

// Indexed reports whether the named column is declared indexed.
func (t *Table) Indexed(col string) bool {
	for _, c := range t.Indexes {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// NewTable builds a single-fragment table located in db at location.
func NewTable(name, db, location string, rows int64, cols ...Column) *Table {
	return &Table{
		Name:      name,
		Columns:   cols,
		Fragments: []Fragment{{DB: db, Location: location, RowCount: rows}},
		ColStats:  map[string]ColStats{},
	}
}

// RowCount returns the total number of rows across all fragments.
func (t *Table) RowCount() int64 {
	var n int64
	for _, f := range t.Fragments {
		n += f.RowCount
	}
	return n
}

// Column returns the named column, or false when absent. Lookup is
// case-insensitive, matching the SQL front end.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// RowWidth returns the estimated width in bytes of a full row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width()
	}
	return w
}

// Location returns the location of the table's single fragment. For
// fragmented tables it returns the first fragment's location; callers
// that care about fragmentation must inspect Fragments directly.
func (t *Table) Location() string {
	if len(t.Fragments) == 0 {
		return ""
	}
	return t.Fragments[0].Location
}

// DB returns the database of the table's first fragment.
func (t *Table) DB() string {
	if len(t.Fragments) == 0 {
		return ""
	}
	return t.Fragments[0].DB
}

// Fragmented reports whether the table spans more than one location.
func (t *Table) Fragmented() bool { return len(t.Fragments) > 1 }

// SetColStats records statistics for a column.
func (t *Table) SetColStats(col string, s ColStats) {
	if t.ColStats == nil {
		t.ColStats = map[string]ColStats{}
	}
	t.ColStats[strings.ToLower(col)] = s
}

// Stats returns the recorded statistics for a column (zero value when
// unknown).
func (t *Table) Stats(col string) ColStats {
	return t.ColStats[strings.ToLower(col)]
}

// Catalog is the global geo-distributed schema: the set of locations and
// the union of all local schemas (Section 3 assumes the geo-distributed
// schema is the union of local schemas).
type Catalog struct {
	locations []string
	tables    map[string]*Table
	dbAtLoc   map[string]string // location -> database name
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, dbAtLoc: map[string]string{}}
}

// AddLocation registers a location (idempotent). Locations keep
// registration order, which experiments rely on for determinism.
func (c *Catalog) AddLocation(name string) {
	for _, l := range c.locations {
		if l == name {
			return
		}
	}
	c.locations = append(c.locations, name)
}

// Locations returns the registered locations in registration order.
func (c *Catalog) Locations() []string {
	return append([]string(nil), c.locations...)
}

// HasLocation reports whether the location is registered.
func (c *Catalog) HasLocation(name string) bool {
	for _, l := range c.locations {
		if l == name {
			return true
		}
	}
	return false
}

// AddTable registers a table. Each fragment's location is registered as a
// side effect, and the location→database mapping is recorded.
func (c *Catalog) AddTable(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("schema: duplicate table %q", t.Name)
	}
	if len(t.Fragments) == 0 {
		return fmt.Errorf("schema: table %q has no fragments", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %q has no columns", t.Name)
	}
	for _, f := range t.Fragments {
		c.AddLocation(f.Location)
		if f.DB != "" {
			c.dbAtLoc[f.Location] = f.DB
		}
	}
	if t.ColStats == nil {
		t.ColStats = map[string]ColStats{}
	}
	c.tables[key] = t
	return nil
}

// MustAddTable registers a table and panics on error; for static schemas.
func (c *Catalog) MustAddTable(t *Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DatabaseAt returns the database name gateway at a location ("" when the
// location hosts no database).
func (c *Catalog) DatabaseAt(location string) string { return c.dbAtLoc[location] }

// ResolveColumn finds the unique table owning an unqualified column name.
// It returns an error when the name is absent or ambiguous.
func (c *Catalog) ResolveColumn(name string) (*Table, Column, error) {
	var foundT *Table
	var foundC Column
	for _, t := range c.Tables() {
		if col, ok := t.Column(name); ok {
			if foundT != nil {
				return nil, Column{}, fmt.Errorf("schema: ambiguous column %q (in %s and %s)", name, foundT.Name, t.Name)
			}
			foundT, foundC = t, col
		}
	}
	if foundT == nil {
		return nil, Column{}, fmt.Errorf("schema: unknown column %q", name)
	}
	return foundT, foundC, nil
}
