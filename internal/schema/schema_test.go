package schema

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
)

func demoTable() *Table {
	t := NewTable("Customer", "db-1", "L1", 1500,
		Column{Name: "custkey", Type: expr.TInt},
		Column{Name: "name", Type: expr.TString, AvgWidth: 18},
		Column{Name: "acctbal", Type: expr.TFloat},
		Column{Name: "mktsegment", Type: expr.TString},
	)
	t.SetColStats("custkey", ColStats{Distinct: 1500, Min: expr.NewInt(1), Max: expr.NewInt(1500)})
	t.SetColStats("mktsegment", ColStats{Distinct: 5})
	return t
}

func TestTableBasics(t *testing.T) {
	tab := demoTable()
	if tab.RowCount() != 1500 {
		t.Errorf("RowCount = %d", tab.RowCount())
	}
	if tab.Location() != "L1" || tab.DB() != "db-1" {
		t.Errorf("placement: %s %s", tab.Location(), tab.DB())
	}
	if tab.Fragmented() {
		t.Error("single fragment should not be fragmented")
	}
	c, ok := tab.Column("ACCTBAL")
	if !ok || c.Type != expr.TFloat {
		t.Errorf("case-insensitive column lookup: %v %v", c, ok)
	}
	if _, ok := tab.Column("nope"); ok {
		t.Error("unknown column should miss")
	}
	names := tab.ColumnNames()
	if len(names) != 4 || names[0] != "custkey" {
		t.Errorf("ColumnNames: %v", names)
	}
	// Row width: 8 + 18 + 8 + 16 (default string).
	if w := tab.RowWidth(); w != 50 {
		t.Errorf("RowWidth = %d, want 50", w)
	}
	if s := tab.Stats("custkey"); s.Distinct != 1500 {
		t.Errorf("Stats: %+v", s)
	}
	if s := tab.Stats("unknown"); s.Distinct != 0 {
		t.Errorf("unknown stats should be zero: %+v", s)
	}
}

func TestColumnWidthDefaults(t *testing.T) {
	if (Column{Type: expr.TInt}).Width() != 8 {
		t.Error("int width")
	}
	if (Column{Type: expr.TString}).Width() != 16 {
		t.Error("string default width")
	}
	if (Column{Type: expr.TString, AvgWidth: 25}).Width() != 25 {
		t.Error("explicit width")
	}
	if (Column{Type: expr.TBool}).Width() != 1 {
		t.Error("bool width")
	}
}

func TestCatalogAddAndResolve(t *testing.T) {
	c := NewCatalog()
	c.MustAddTable(demoTable())
	c.MustAddTable(NewTable("Orders", "db-2", "L2", 15000,
		Column{Name: "orderkey", Type: expr.TInt},
		Column{Name: "custkey", Type: expr.TInt},
		Column{Name: "totalprice", Type: expr.TFloat},
	))

	if got := c.Locations(); len(got) != 2 || got[0] != "L1" || got[1] != "L2" {
		t.Errorf("Locations: %v", got)
	}
	if !c.HasLocation("L1") || c.HasLocation("L9") {
		t.Error("HasLocation")
	}
	if db := c.DatabaseAt("L2"); db != "db-2" {
		t.Errorf("DatabaseAt: %s", db)
	}
	if db := c.DatabaseAt("L9"); db != "" {
		t.Errorf("DatabaseAt unknown: %q", db)
	}

	tab, ok := c.Table("customer") // case-insensitive
	if !ok || tab.Name != "Customer" {
		t.Errorf("Table lookup: %v %v", tab, ok)
	}
	if _, ok := c.Table("lineitem"); ok {
		t.Error("unknown table should miss")
	}

	tabs := c.Tables()
	if len(tabs) != 2 || tabs[0].Name != "Customer" || tabs[1].Name != "Orders" {
		t.Errorf("Tables sorted: %v", tabs)
	}

	// Unqualified column resolution.
	owner, col, err := c.ResolveColumn("totalprice")
	if err != nil || owner.Name != "Orders" || col.Type != expr.TFloat {
		t.Errorf("ResolveColumn: %v %v %v", owner, col, err)
	}
	if _, _, err := c.ResolveColumn("custkey"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column should error, got %v", err)
	}
	if _, _, err := c.ResolveColumn("ghost"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestCatalogErrors(t *testing.T) {
	c := NewCatalog()
	c.MustAddTable(demoTable())
	if err := c.AddTable(demoTable()); err == nil {
		t.Error("duplicate table should error")
	}
	if err := c.AddTable(&Table{Name: "empty", Columns: []Column{{Name: "a"}}}); err == nil {
		t.Error("table without fragments should error")
	}
	if err := c.AddTable(&Table{Name: "nocols", Fragments: []Fragment{{Location: "L1"}}}); err == nil {
		t.Error("table without columns should error")
	}
}

func TestFragmentedTable(t *testing.T) {
	c := NewCatalog()
	frag := &Table{
		Name:    "Orders",
		Columns: []Column{{Name: "orderkey", Type: expr.TInt}},
		Fragments: []Fragment{
			{DB: "db-1", Location: "L1", RowCount: 500},
			{DB: "db-2", Location: "L2", RowCount: 700},
			{DB: "db-3", Location: "L3", RowCount: 300},
		},
	}
	c.MustAddTable(frag)
	if !frag.Fragmented() {
		t.Error("should be fragmented")
	}
	if frag.RowCount() != 1500 {
		t.Errorf("fragment sum: %d", frag.RowCount())
	}
	if got := c.Locations(); len(got) != 3 {
		t.Errorf("fragment locations registered: %v", got)
	}
}

func TestAddLocationIdempotent(t *testing.T) {
	c := NewCatalog()
	c.AddLocation("L1")
	c.AddLocation("L1")
	c.AddLocation("L2")
	if got := c.Locations(); len(got) != 2 {
		t.Errorf("Locations: %v", got)
	}
	// Mutating the returned slice must not corrupt the catalog.
	got := c.Locations()
	got[0] = "HACKED"
	if c.Locations()[0] != "L1" {
		t.Error("Locations leaked internal slice")
	}
}
