// Package plan defines the query plan representation shared by the
// optimizer, the policy evaluator and the executor: a single Node type
// covering logical and physical operators, output-schema computation,
// site sets for execution/shipping traits, and plan printing.
package plan

import (
	"fmt"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

// Kind identifies a plan operator. Logical kinds are produced by the
// query planner; physical kinds by the optimizer's implementation rules;
// Ship operators are introduced by the site selector (phase 2).
type Kind int

// Plan operator kinds.
const (
	// Logical operators.
	Scan Kind = iota
	Filter
	Project
	Join
	Aggregate
	Union
	Sort
	Limit
	// Physical operators.
	TableScan
	FilterExec
	ProjectExec
	HashJoin
	NLJoin
	HashAgg
	SortExec
	LimitExec
	UnionAll
	Ship
	MergeJoin
	// IndexScan is a physical access path: a B+ tree range scan on an
	// indexed column (IdxCol, bounds IdxLo/IdxHi) with the full original
	// predicate re-applied as a residual — it is Filter(Scan) with the
	// index pre-filtering the rows.
	IndexScan
	// IndexLookupJoin probes the inner table's B+ tree with each outer
	// row's key instead of building a hash table; its second child is the
	// inner TableScan it replaces.
	IndexLookupJoin
)

// String returns the operator name.
func (k Kind) String() string {
	switch k {
	case Scan:
		return "Scan"
	case Filter:
		return "Filter"
	case Project:
		return "Project"
	case Join:
		return "Join"
	case Aggregate:
		return "Aggregate"
	case Union:
		return "Union"
	case Sort:
		return "Sort"
	case Limit:
		return "Limit"
	case TableScan:
		return "TableScan"
	case FilterExec:
		return "FilterExec"
	case ProjectExec:
		return "ProjectExec"
	case HashJoin:
		return "HashJoin"
	case NLJoin:
		return "NLJoin"
	case HashAgg:
		return "HashAgg"
	case SortExec:
		return "SortExec"
	case LimitExec:
		return "LimitExec"
	case UnionAll:
		return "UnionAll"
	case Ship:
		return "Ship"
	case MergeJoin:
		return "MergeJoin"
	case IndexScan:
		return "IndexScan"
	case IndexLookupJoin:
		return "IndexLookupJoin"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Physical reports whether the kind is a physical operator.
func (k Kind) Physical() bool { return k >= TableScan }

// ColRef describes one output column of an operator: its qualifier
// (table alias, empty for computed columns), name, and type.
type ColRef struct {
	Table string
	Name  string
	Type  expr.Type
}

// Key returns the qualified column key.
func (c ColRef) Key() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Col converts the reference into an expression node.
func (c ColRef) Col() *expr.Col { return expr.NewCol(c.Table, c.Name) }

// NamedExpr is a projection item: an expression with an output name.
type NamedExpr struct {
	E    expr.Expr
	Name string
	Type expr.Type
}

// NamedAgg is an aggregate item of an Aggregate operator.
type NamedAgg struct {
	Fn   expr.AggFn
	Arg  expr.Expr // nil for COUNT(*)
	Name string
	Type expr.Type
}

// String renders the aggregate item.
func (a NamedAgg) String() string {
	if a.Arg == nil {
		return fmt.Sprintf("%s(*) AS %s", a.Fn, a.Name)
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Fn, a.Arg, a.Name)
}

// SortKey is one ORDER BY key.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// String renders the key.
func (k SortKey) String() string {
	if k.Desc {
		return k.E.String() + " DESC"
	}
	return k.E.String()
}

// Node is a plan operator. A single struct covers every operator kind;
// the fields used depend on Kind. Nodes built by the memo may share
// subtrees across alternatives, so treat extracted plans as immutable
// until cloned (the site selector clones before assigning locations).
type Node struct {
	Kind     Kind
	Children []*Node
	Cols     []ColRef

	// Operator parameters.
	Table    *schema.Table // Scan/TableScan
	Alias    string        // Scan/TableScan
	FragIdx  int           // fragment index; -1 = whole table
	Pred     expr.Expr     // Filter/FilterExec predicate or Join condition
	Projs    []NamedExpr   // Project/ProjectExec
	GroupBy  []*expr.Col   // Aggregate/HashAgg
	Aggs     []NamedAgg    // Aggregate/HashAgg
	SortKeys []SortKey     // Sort/SortExec
	LimitN   int64         // Limit/LimitExec
	FromLoc  string        // Ship
	ToLoc    string        // Ship

	// Index access-path parameters (IndexScan / IndexLookupJoin).
	IdxCol   string      // indexed column (unqualified) on the accessed table
	IdxLo    *expr.Value // IndexScan lower bound; nil = unbounded
	IdxHi    *expr.Value // IndexScan upper bound; nil = unbounded
	IdxLoInc bool        // lower bound inclusive
	IdxHiInc bool        // upper bound inclusive
	IdxOuter *expr.Col   // IndexLookupJoin outer-side key probed into the index

	// Estimates and annotations.
	Card  float64 // estimated output cardinality
	Cost  float64 // accumulated phase-1 cost of the subtree
	Exec  SiteSet // execution trait ℰ (annotated plans)
	ShipT SiteSet // shipping trait 𝒮 (annotated plans)
	Loc   string  // final execution site (set by the site selector)
}

// NewScan builds a scan of a table fragment. fragIdx -1 scans the whole
// (single-fragment) table; otherwise it scans Fragments[fragIdx].
func NewScan(t *schema.Table, alias string, fragIdx int) *Node {
	if alias == "" {
		alias = t.Name
	}
	cols := make([]ColRef, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = ColRef{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &Node{Kind: Scan, Table: t, Alias: alias, FragIdx: fragIdx, Cols: cols}
}

// NewFilter builds a selection.
func NewFilter(child *Node, pred expr.Expr) *Node {
	return &Node{Kind: Filter, Children: []*Node{child}, Cols: child.Cols, Pred: pred}
}

// NewProject builds a projection. Output types are inferred from the
// child schema.
func NewProject(child *Node, projs []NamedExpr) *Node {
	cols := make([]ColRef, len(projs))
	for i := range projs {
		if projs[i].Type == expr.TNull {
			projs[i].Type = InferType(projs[i].E, child.Cols)
		}
		// A bare column reference keeps its qualifier so that policy
		// evaluation and upstream predicates can still resolve it.
		if c, ok := projs[i].E.(*expr.Col); ok && (projs[i].Name == "" || strings.EqualFold(projs[i].Name, c.Name)) {
			cols[i] = ColRef{Table: c.Table, Name: c.Name, Type: projs[i].Type}
			if projs[i].Name == "" {
				projs[i].Name = c.Name
			}
		} else {
			cols[i] = ColRef{Name: projs[i].Name, Type: projs[i].Type}
		}
	}
	return &Node{Kind: Project, Children: []*Node{child}, Cols: cols, Projs: projs}
}

// NewJoin builds an inner join with the given condition (nil = cross).
func NewJoin(l, r *Node, cond expr.Expr) *Node {
	cols := make([]ColRef, 0, len(l.Cols)+len(r.Cols))
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	return &Node{Kind: Join, Children: []*Node{l, r}, Cols: cols, Pred: cond}
}

// NewAggregate builds a grouping aggregation. Output schema is the
// group-by columns followed by the aggregates.
func NewAggregate(child *Node, groupBy []*expr.Col, aggs []NamedAgg) *Node {
	cols := make([]ColRef, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		cols = append(cols, ColRef{Table: g.Table, Name: g.Name, Type: InferType(g, child.Cols)})
	}
	for i := range aggs {
		if aggs[i].Type == expr.TNull {
			aggs[i].Type = InferType(&expr.Agg{Fn: aggs[i].Fn, Arg: aggs[i].Arg}, child.Cols)
		}
		cols = append(cols, ColRef{Name: aggs[i].Name, Type: aggs[i].Type})
	}
	return &Node{Kind: Aggregate, Children: []*Node{child}, Cols: cols, GroupBy: groupBy, Aggs: aggs}
}

// NewRename wraps a subplan so its output columns are re-qualified under
// a new alias; used for derived tables (FROM (SELECT ...) AS x).
func NewRename(child *Node, alias string) *Node {
	projs := make([]NamedExpr, len(child.Cols))
	cols := make([]ColRef, len(child.Cols))
	for i, c := range child.Cols {
		projs[i] = NamedExpr{E: c.Col(), Name: c.Name, Type: c.Type}
		cols[i] = ColRef{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &Node{Kind: Project, Children: []*Node{child}, Cols: cols, Projs: projs}
}

// NewUnion builds a UNION ALL over children with identical schemas.
func NewUnion(children ...*Node) *Node {
	return &Node{Kind: Union, Children: children, Cols: children[0].Cols}
}

// NewSort builds an ORDER BY.
func NewSort(child *Node, keys []SortKey) *Node {
	return &Node{Kind: Sort, Children: []*Node{child}, Cols: child.Cols, SortKeys: keys}
}

// NewLimit builds a LIMIT.
func NewLimit(child *Node, n int64) *Node {
	return &Node{Kind: Limit, Children: []*Node{child}, Cols: child.Cols, LimitN: n}
}

// NewShip builds a SHIP operator moving the child's output from one
// location to another. Its Loc is the destination.
func NewShip(child *Node, from, to string) *Node {
	return &Node{Kind: Ship, Children: []*Node{child}, Cols: child.Cols,
		FromLoc: from, ToLoc: to, Loc: to, Card: child.Card}
}

// InferType infers an expression's type against an operator schema.
func InferType(e expr.Expr, cols []ColRef) expr.Type {
	return expr.TypeOf(e, func(c *expr.Col) expr.Type {
		for _, cr := range cols {
			if matchCol(c, cr) {
				return cr.Type
			}
		}
		return expr.TNull
	})
}

func matchCol(c *expr.Col, cr ColRef) bool {
	if !strings.EqualFold(c.Name, cr.Name) {
		return false
	}
	return c.Table == "" || strings.EqualFold(c.Table, cr.Table)
}

// Resolver returns an expr.Resolver over the node's output schema.
func (n *Node) Resolver() expr.Resolver {
	keys := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		keys[i] = c.Key()
	}
	return expr.SliceResolver(keys)
}

// ColIndex finds the index of a column reference in the node's output
// schema, or -1.
func (n *Node) ColIndex(c *expr.Col) int {
	idx := -1
	for i, cr := range n.Cols {
		if matchCol(c, cr) {
			if c.Table == "" && idx >= 0 {
				return -1 // ambiguous
			}
			idx = i
			if c.Table != "" {
				return i
			}
		}
	}
	return idx
}

// Clone deep-copies the plan tree (expressions are shared; they are
// immutable by convention, and annotations/locations are per-node).
func (n *Node) Clone() *Node {
	cp := *n
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = c.Clone()
	}
	cp.Cols = append([]ColRef(nil), n.Cols...)
	cp.Projs = append([]NamedExpr(nil), n.Projs...)
	cp.GroupBy = append([]*expr.Col(nil), n.GroupBy...)
	cp.Aggs = append([]NamedAgg(nil), n.Aggs...)
	cp.SortKeys = append([]SortKey(nil), n.SortKeys...)
	return &cp
}

// Walk visits the tree pre-order; fn returning false prunes the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Tables returns the distinct base tables referenced in the subtree, in
// first-appearance (left-to-right) order of their aliases.
func (n *Node) Tables() []*Node {
	var scans []*Node
	n.Walk(func(x *Node) bool {
		if x.Kind == Scan || x.Kind == TableScan || x.Kind == IndexScan {
			scans = append(scans, x)
		}
		return true
	})
	return scans
}

// OpString renders the operator (without children) for plan printing.
func (n *Node) OpString() string {
	switch n.Kind {
	case Scan, TableScan:
		s := fmt.Sprintf("%s(%s", n.Kind, n.Table.Name)
		if !strings.EqualFold(n.Alias, n.Table.Name) {
			s += " AS " + n.Alias
		}
		if n.FragIdx >= 0 && n.Table.Fragmented() {
			s += fmt.Sprintf(" frag %d@%s", n.FragIdx, n.Table.Fragments[n.FragIdx].Location)
		}
		return s + ")"
	case Filter, FilterExec:
		return fmt.Sprintf("%s[%s]", n.Kind, n.Pred)
	case Project, ProjectExec:
		parts := make([]string, len(n.Projs))
		for i, p := range n.Projs {
			if c, ok := p.E.(*expr.Col); ok && strings.EqualFold(c.Name, p.Name) {
				parts[i] = p.E.String()
			} else {
				parts[i] = fmt.Sprintf("%s AS %s", p.E, p.Name)
			}
		}
		return fmt.Sprintf("%s[%s]", n.Kind, strings.Join(parts, ", "))
	case Join, HashJoin, NLJoin, MergeJoin:
		if n.Pred == nil {
			return fmt.Sprintf("%s[cross]", n.Kind)
		}
		return fmt.Sprintf("%s[%s]", n.Kind, n.Pred)
	case Aggregate, HashAgg:
		var gb []string
		for _, g := range n.GroupBy {
			gb = append(gb, g.String())
		}
		var ag []string
		for _, a := range n.Aggs {
			ag = append(ag, a.String())
		}
		return fmt.Sprintf("%s[group by (%s); %s]", n.Kind, strings.Join(gb, ", "), strings.Join(ag, ", "))
	case Sort, SortExec:
		parts := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			parts[i] = k.String()
		}
		return fmt.Sprintf("%s[%s]", n.Kind, strings.Join(parts, ", "))
	case Limit, LimitExec:
		return fmt.Sprintf("%s[%d]", n.Kind, n.LimitN)
	case Ship:
		return fmt.Sprintf("Ship[%s -> %s]", n.FromLoc, n.ToLoc)
	case Union, UnionAll:
		return n.Kind.String()
	case IndexScan:
		s := fmt.Sprintf("IndexScan(%s", n.Table.Name)
		if !strings.EqualFold(n.Alias, n.Table.Name) {
			s += " AS " + n.Alias
		}
		if n.FragIdx >= 0 && n.Table.Fragmented() {
			s += fmt.Sprintf(" frag %d@%s", n.FragIdx, n.Table.Fragments[n.FragIdx].Location)
		}
		s += " ON " + n.IdxCol + " " + n.idxRange() + ")"
		if n.Pred != nil {
			s += fmt.Sprintf("[%s]", n.Pred)
		}
		return s
	case IndexLookupJoin:
		inner := ""
		if len(n.Children) == 2 {
			inner = n.Children[1].Alias + "."
		}
		return fmt.Sprintf("IndexLookupJoin[%s; probe %s%s]", n.Pred, inner, n.IdxCol)
	}
	return n.Kind.String()
}

// idxRange renders the index bounds of an IndexScan.
func (n *Node) idxRange() string {
	lo, hi := "-inf", "+inf"
	lb, hb := "(", ")"
	if n.IdxLo != nil {
		lo = n.IdxLo.String()
		if n.IdxLoInc {
			lb = "["
		}
	}
	if n.IdxHi != nil {
		hi = n.IdxHi.String()
		if n.IdxHiInc {
			hb = "]"
		}
	}
	return lb + lo + ".." + hi + hb
}

// Format pretty-prints the plan tree with one operator per line. Set
// annotations to include traits, locations and cardinalities.
func (n *Node) Format(annotations bool) string {
	var b strings.Builder
	n.format(&b, 0, annotations)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int, ann bool) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.OpString())
	if ann {
		var tags []string
		if n.Loc != "" {
			tags = append(tags, "@"+n.Loc)
		}
		if !n.Exec.Empty() {
			tags = append(tags, "exec="+n.Exec.String())
		}
		if !n.ShipT.Empty() {
			tags = append(tags, "ship="+n.ShipT.String())
		}
		if n.Card > 0 {
			tags = append(tags, fmt.Sprintf("rows=%.0f", n.Card))
		}
		if len(tags) > 0 {
			b.WriteString("  [" + strings.Join(tags, " ") + "]")
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.format(b, depth+1, ann)
	}
}

// String renders the plan without annotations.
func (n *Node) String() string { return n.Format(false) }

// RowWidth estimates the width in bytes of one output row.
func (n *Node) RowWidth() float64 {
	var w float64
	for _, c := range n.Cols {
		switch c.Type {
		case expr.TString:
			w += 16
		case expr.TBool:
			w++
		default:
			w += 8
		}
	}
	// Scans know real column widths from the catalog.
	if (n.Kind == Scan || n.Kind == TableScan || n.Kind == IndexScan) && n.Table != nil {
		return float64(n.Table.RowWidth())
	}
	return w
}

// Digest returns a canonical string identifying the operator together
// with child digests; used for memoization and deduplication.
func (n *Node) Digest() string {
	var b strings.Builder
	n.digest(&b)
	return b.String()
}

func (n *Node) digest(b *strings.Builder) {
	b.WriteString(n.OpDigest())
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.digest(b)
	}
	b.WriteByte(')')
}

// OpDigest returns a canonical string for the operator parameters only
// (no children).
func (n *Node) OpDigest() string {
	switch n.Kind {
	case Scan, TableScan:
		return fmt.Sprintf("%s:%s:%s:%d", n.Kind, n.Table.Name, n.Alias, n.FragIdx)
	case Filter, FilterExec, Join, HashJoin, NLJoin, MergeJoin:
		p := ""
		if n.Pred != nil {
			p = n.Pred.String()
		}
		return fmt.Sprintf("%s:%s", n.Kind, p)
	case Project, ProjectExec:
		parts := make([]string, len(n.Projs))
		for i, pr := range n.Projs {
			parts[i] = pr.E.String() + ">" + pr.Name
		}
		return fmt.Sprintf("%s:%s", n.Kind, strings.Join(parts, "|"))
	case Aggregate, HashAgg:
		var parts []string
		for _, g := range n.GroupBy {
			parts = append(parts, g.String())
		}
		for _, a := range n.Aggs {
			parts = append(parts, a.String())
		}
		return fmt.Sprintf("%s:%s", n.Kind, strings.Join(parts, "|"))
	case Sort, SortExec:
		parts := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			parts[i] = k.String()
		}
		return fmt.Sprintf("%s:%s", n.Kind, strings.Join(parts, "|"))
	case Limit, LimitExec:
		return fmt.Sprintf("%s:%d", n.Kind, n.LimitN)
	case Ship:
		return fmt.Sprintf("Ship:%s>%s", n.FromLoc, n.ToLoc)
	case IndexScan:
		p := ""
		if n.Pred != nil {
			p = n.Pred.String()
		}
		return fmt.Sprintf("IndexScan:%s:%s:%d:%s%s:%s", n.Table.Name, n.Alias, n.FragIdx, n.IdxCol, n.idxRange(), p)
	case IndexLookupJoin:
		p := ""
		if n.Pred != nil {
			p = n.Pred.String()
		}
		return fmt.Sprintf("IndexLookupJoin:%s:probe=%s<=%s", p, n.IdxCol, n.IdxOuter)
	}
	return n.Kind.String()
}
