package plan

import (
	"sync"
	"sync/atomic"
)

// SiteUniverse interns location names into dense bit positions so that
// SiteSet can represent execution and shipping traits as bitsets. The
// deployment's location universe is fixed for the lifetime of a catalog
// (Section 3 assumes a known set of sites), so interning is append-only:
// a name, once assigned a bit, keeps it for the life of the process.
//
// Reads are lock-free (an atomically swapped immutable state); interning
// a new name copies the state under a mutex. Optimizers intern their
// catalog's locations up front, so the hot path — trait algebra inside
// the memo — never takes the write path.
type SiteUniverse struct {
	mu    sync.Mutex // serializes interning
	state atomic.Pointer[universeState]
}

// universeState is an immutable snapshot of the interner.
type universeState struct {
	ids   map[string]int
	names []string
}

// NewSiteUniverse returns an empty interner.
func NewSiteUniverse() *SiteUniverse {
	u := &SiteUniverse{}
	u.state.Store(&universeState{ids: map[string]int{}})
	return u
}

// defaultUniverse is the process-wide interner behind NewSiteSet. All
// catalogs share it: location names map to stable bits regardless of
// which catalog registered them first.
var defaultUniverse = NewSiteUniverse()

// Universe returns the process-wide location interner. Callers that know
// their location universe up front (e.g. the optimizer over a schema
// catalog) should Intern it once so bit assignment is done before any
// concurrent optimization starts.
func Universe() *SiteUniverse { return defaultUniverse }

// Lookup returns the bit assigned to a name, or false when the name has
// never been interned (in which case no SiteSet can contain it).
func (u *SiteUniverse) Lookup(name string) (int, bool) {
	id, ok := u.state.Load().ids[name]
	return id, ok
}

// Len returns the number of interned locations.
func (u *SiteUniverse) Len() int { return len(u.state.Load().names) }

// Intern assigns bits to the given names in order (idempotent).
func (u *SiteUniverse) Intern(names ...string) {
	for _, n := range names {
		u.intern(n)
	}
}

func (u *SiteUniverse) intern(name string) int {
	if id, ok := u.Lookup(name); ok {
		return id
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.state.Load()
	if id, ok := st.ids[name]; ok {
		return id
	}
	next := &universeState{
		ids:   make(map[string]int, len(st.ids)+1),
		names: append(append(make([]string, 0, len(st.names)+1), st.names...), name),
	}
	for k, v := range st.ids {
		next.ids[k] = v
	}
	id := len(st.names)
	next.ids[name] = id
	u.state.Store(next)
	return id
}
