package plan

import (
	"sort"
	"strings"
)

// SiteSet is an immutable set of location names. It implements the
// execution traits (ℰ) and shipping traits (𝒮) of Section 6.1: an
// execution trait lists the sites where an operator may legally run, a
// shipping trait the sites its output may legally be shipped to.
// The zero value is the empty set.
type SiteSet struct {
	sites []string // sorted, deduplicated
}

// NewSiteSet builds a set from the given locations.
func NewSiteSet(locs ...string) SiteSet {
	if len(locs) == 0 {
		return SiteSet{}
	}
	cp := append([]string(nil), locs...)
	sort.Strings(cp)
	out := cp[:0]
	for i, s := range cp {
		if i == 0 || cp[i-1] != s {
			out = append(out, s)
		}
	}
	return SiteSet{sites: out}
}

// Empty reports whether the set has no members.
func (s SiteSet) Empty() bool { return len(s.sites) == 0 }

// Len returns the number of members.
func (s SiteSet) Len() int { return len(s.sites) }

// Contains reports membership.
func (s SiteSet) Contains(loc string) bool {
	i := sort.SearchStrings(s.sites, loc)
	return i < len(s.sites) && s.sites[i] == loc
}

// Slice returns the members in sorted order (a copy).
func (s SiteSet) Slice() []string { return append([]string(nil), s.sites...) }

// Union returns s ∪ o.
func (s SiteSet) Union(o SiteSet) SiteSet {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	return NewSiteSet(append(s.Slice(), o.sites...)...)
}

// Intersect returns s ∩ o.
func (s SiteSet) Intersect(o SiteSet) SiteSet {
	var out []string
	i, j := 0, 0
	for i < len(s.sites) && j < len(o.sites) {
		switch {
		case s.sites[i] == o.sites[j]:
			out = append(out, s.sites[i])
			i++
			j++
		case s.sites[i] < o.sites[j]:
			i++
		default:
			j++
		}
	}
	return SiteSet{sites: out}
}

// SupersetOf reports whether s ⊇ o.
func (s SiteSet) SupersetOf(o SiteSet) bool {
	i := 0
	for _, x := range o.sites {
		for i < len(s.sites) && s.sites[i] < x {
			i++
		}
		if i >= len(s.sites) || s.sites[i] != x {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s SiteSet) Equal(o SiteSet) bool {
	if len(s.sites) != len(o.sites) {
		return false
	}
	for i := range s.sites {
		if s.sites[i] != o.sites[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key.
func (s SiteSet) Key() string { return strings.Join(s.sites, ",") }

// String renders the set like {A, B}.
func (s SiteSet) String() string {
	if s.Empty() {
		return "{}"
	}
	return "{" + strings.Join(s.sites, ", ") + "}"
}
