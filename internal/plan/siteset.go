package plan

import (
	"math/bits"
	"sort"
	"strings"
)

// siteSetWords is the number of inline bitset words: deployments of up
// to 256 distinct locations need no per-set heap allocation. Larger
// universes spill the extra bits into an overflow slice.
const siteSetWords = 4

// SiteSet is an immutable set of location names. It implements the
// execution traits (ℰ) and shipping traits (𝒮) of Section 6.1: an
// execution trait lists the sites where an operator may legally run, a
// shipping trait the sites its output may legally be shipped to.
// The zero value is the empty set.
//
// Sets are backed by bitsets over the process-wide location interner
// (see SiteUniverse), so the set algebra the memo churns through during
// trait annotation (AR1–AR4) — Intersect, Union, SupersetOf — compiles
// down to word operations and allocates nothing for universes of up to
// 256 locations.
type SiteSet struct {
	bits [siteSetWords]uint64
	// ext holds bits ≥ 64*siteSetWords. Invariant: no trailing zero
	// words, so structural comparison of equal sets is well defined.
	// ext may be shared between sets and is never mutated after the
	// owning set is built.
	ext []uint64
}

// NewSiteSet builds a set from the given locations.
func NewSiteSet(locs ...string) SiteSet {
	var s SiteSet
	for _, l := range locs {
		s.setBit(defaultUniverse.intern(l))
	}
	return s
}

// setBit is only used while constructing a fresh set.
func (s *SiteSet) setBit(b int) {
	w, off := b/64, uint(b%64)
	if w < siteSetWords {
		s.bits[w] |= 1 << off
		return
	}
	w -= siteSetWords
	for len(s.ext) <= w {
		s.ext = append(s.ext, 0)
	}
	s.ext[w] |= 1 << off
}

// word returns the i-th 64-bit word of the set (0 beyond the end).
func (s SiteSet) word(i int) uint64 {
	if i < siteSetWords {
		return s.bits[i]
	}
	if j := i - siteSetWords; j < len(s.ext) {
		return s.ext[j]
	}
	return 0
}

// Empty reports whether the set has no members.
func (s SiteSet) Empty() bool {
	if s.bits != [siteSetWords]uint64{} {
		return false
	}
	return len(s.ext) == 0 // invariant: last ext word non-zero
}

// Len returns the number of members.
func (s SiteSet) Len() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	for _, w := range s.ext {
		n += bits.OnesCount64(w)
	}
	return n
}

// Contains reports membership.
func (s SiteSet) Contains(loc string) bool {
	id, ok := defaultUniverse.Lookup(loc)
	if !ok {
		return false
	}
	return s.word(id/64)&(1<<uint(id%64)) != 0
}

// Slice returns the members in sorted order (a fresh slice).
func (s SiteSet) Slice() []string {
	n := s.Len()
	if n == 0 {
		return nil
	}
	names := defaultUniverse.state.Load().names
	out := make([]string, 0, n)
	total := siteSetWords + len(s.ext)
	for wi := 0; wi < total; wi++ {
		w := s.word(wi)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, names[wi*64+b])
			w &= w - 1
		}
	}
	sort.Strings(out)
	return out
}

// Union returns s ∪ o.
func (s SiteSet) Union(o SiteSet) SiteSet {
	out := s
	for i := range out.bits {
		out.bits[i] |= o.bits[i]
	}
	switch {
	case len(o.ext) == 0:
		// out.ext shares s.ext; sets are immutable, sharing is safe.
	case len(s.ext) == 0:
		out.ext = o.ext
	default:
		long, short := s.ext, o.ext
		if len(o.ext) > len(long) {
			long, short = o.ext, s.ext
		}
		ext := append(make([]uint64, 0, len(long)), long...)
		for i, w := range short {
			ext[i] |= w
		}
		out.ext = ext
	}
	return out
}

// Intersect returns s ∩ o.
func (s SiteSet) Intersect(o SiteSet) SiteSet {
	var out SiteSet
	for i := range out.bits {
		out.bits[i] = s.bits[i] & o.bits[i]
	}
	n := len(s.ext)
	if len(o.ext) < n {
		n = len(o.ext)
	}
	for n > 0 && s.ext[n-1]&o.ext[n-1] == 0 {
		n--
	}
	if n > 0 {
		ext := make([]uint64, n)
		for i := range ext {
			ext[i] = s.ext[i] & o.ext[i]
		}
		out.ext = ext
	}
	return out
}

// SupersetOf reports whether s ⊇ o.
func (s SiteSet) SupersetOf(o SiteSet) bool {
	for i := range o.bits {
		if o.bits[i]&^s.bits[i] != 0 {
			return false
		}
	}
	for i, w := range o.ext {
		var sw uint64
		if i < len(s.ext) {
			sw = s.ext[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s SiteSet) Equal(o SiteSet) bool {
	if s.bits != o.bits || len(s.ext) != len(o.ext) {
		return false
	}
	for i := range s.ext {
		if s.ext[i] != o.ext[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key.
func (s SiteSet) Key() string { return strings.Join(s.Slice(), ",") }

// String renders the set like {A, B}.
func (s SiteSet) String() string {
	if s.Empty() {
		return "{}"
	}
	return "{" + strings.Join(s.Slice(), ", ") + "}"
}
