package plan

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

func fragFixture() (*Node, *Node, *Node) {
	c := NewScan(schema.NewTable("C", "db-n", "N", 10,
		schema.Column{Name: "k", Type: expr.TInt}), "C", -1)
	o := NewScan(schema.NewTable("O", "db-e", "E", 10,
		schema.Column{Name: "k", Type: expr.TInt}), "O", -1)
	s := NewScan(schema.NewTable("S", "db-a", "A", 10,
		schema.Column{Name: "k", Type: expr.TInt}), "S", -1)
	return c, o, s
}

func TestSplitFragmentsSingle(t *testing.T) {
	c, _, _ := fragFixture()
	frags := SplitFragments(c)
	if len(frags) != 1 {
		t.Fatalf("fragments: %d, want 1", len(frags))
	}
	f := frags[0]
	if f.Root != c || f.Output != nil || len(f.Inputs) != 0 || !f.Leaf() {
		t.Errorf("unexpected fragment: %+v", f)
	}
	if CountLeafFragments(c) != 1 {
		t.Errorf("leaf count: %d", CountLeafFragments(c))
	}
}

func TestSplitFragmentsMultiShip(t *testing.T) {
	c, o, s := fragFixture()
	shipC := NewShip(c, "N", "E")
	shipS := NewShip(s, "A", "E")
	join := NewJoin(shipC, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "k"), expr.NewCol("O", "k")))
	join2 := NewJoin(join, shipS, expr.NewCmp(expr.EQ, expr.NewCol("O", "k"), expr.NewCol("S", "k")))
	root := NewShip(join2, "E", "N")

	frags := SplitFragments(root)
	if len(frags) != 4 {
		t.Fatalf("fragments: %d, want 4", len(frags))
	}
	// Root fragment is the final Ship itself: a bare receiver at N.
	if frags[0].Root != root || len(frags[0].Inputs) != 1 || frags[0].Inputs[0] != root {
		t.Errorf("root fragment: %+v", frags[0])
	}
	if frags[0].Loc != "N" {
		t.Errorf("root fragment loc: %q", frags[0].Loc)
	}
	// The join fragment executes at E and consumes two exchanges.
	jf := frags[1]
	if jf.Root != join2 || jf.Output != root || len(jf.Inputs) != 2 || jf.Loc != "E" {
		t.Errorf("join fragment: root=%v output=%v inputs=%d loc=%q",
			jf.Root.Kind, jf.Output, len(jf.Inputs), jf.Loc)
	}
	if jf.Leaf() {
		t.Error("join fragment must not be a leaf")
	}
	// The two producer fragments are leaves at their data's sites.
	if frags[2].Root != c || frags[2].Output != shipC || !frags[2].Leaf() || frags[2].Loc != "N" {
		t.Errorf("customer fragment: %+v", frags[2])
	}
	if frags[3].Root != s || frags[3].Output != shipS || !frags[3].Leaf() || frags[3].Loc != "A" {
		t.Errorf("supply fragment: %+v", frags[3])
	}
	if CountLeafFragments(root) != 2 {
		t.Errorf("leaf fragments: %d, want 2", CountLeafFragments(root))
	}
}
