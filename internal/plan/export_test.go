package plan

import (
	"encoding/json"
	"strings"
	"testing"

	"cgdqp/internal/expr"
)

func exportFixture() *Node {
	c := NewScan(custTable(), "C", -1)
	c.Kind = TableScan
	c.Loc = "N"
	c.Card = 1000
	p := NewProject(c, []NamedExpr{{E: expr.NewCol("C", "name")}})
	p.Kind = ProjectExec
	p.Loc = "N"
	p.Card = 1000
	ship := NewShip(p, "N", "E")
	ship.Card = 1000
	o := NewScan(ordTable(), "O", -1)
	o.Kind = TableScan
	o.Loc = "E"
	o.Card = 10000
	j := NewJoin(ship, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "name"), expr.NewCol("O", "ordkey")))
	j.Kind = HashJoin
	j.Loc = "E"
	j.Card = 500
	j.Exec = NewSiteSet("E")
	j.ShipT = NewSiteSet("E", "A")
	return j
}

func TestDotExport(t *testing.T) {
	dot := exportFixture().Dot()
	for _, want := range []string{
		"digraph plan",
		"label=\"N\"", "label=\"E\"", // location clusters
		"Ship[N -> E]",
		"TableScan(Customer AS C)",
		"penwidth=2", // bold ship edges
		"rows≈1000",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
	// Every node id referenced by an edge is declared.
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, "->") {
			parts := strings.Fields(line)
			from := strings.TrimPrefix(parts[0], "n")
			if !strings.Contains(dot, "n"+from+" [label=") {
				t.Errorf("edge references undeclared node %s", parts[0])
			}
		}
	}
}

func TestJSONExport(t *testing.T) {
	out, err := exportFixture().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded["operator"] != "HashJoin" || decoded["location"] != "E" {
		t.Errorf("root: %v", decoded)
	}
	ship, _ := decoded["ship_trait"].([]any)
	if len(ship) != 2 {
		t.Errorf("ship trait: %v", decoded["ship_trait"])
	}
	kids, _ := decoded["children"].([]any)
	if len(kids) != 2 {
		t.Fatalf("children: %v", decoded["children"])
	}
	// MarshalJSON on the node itself matches.
	raw, err := json.Marshal(exportFixture())
	if err != nil || !strings.Contains(string(raw), "\"operator\":\"HashJoin\"") {
		t.Errorf("MarshalJSON: %v %s", err, raw)
	}
}
