package plan

// A Fragment is a maximal Ship-free subtree of a located physical plan:
// the unit of work one site executes between exchanges. Every Ship
// operator is a pipeline breaker — its child subtree belongs to the
// producing site's fragment, its output feeds the consuming fragment —
// so a plan with k Ship operators splits into k+1 fragments. The
// parallel executor runs each fragment on its own goroutine and turns
// every Ship into a channel-backed exchange.
type Fragment struct {
	// Root is the fragment's topmost operator: the plan root for the
	// final fragment, or the child of the Ship that exports it.
	Root *Node
	// Output is the Ship operator exporting this fragment's result to
	// its consumer, or nil for the plan-root fragment.
	Output *Node
	// Inputs are the Ship operators appearing as leaves inside this
	// fragment (each one's child subtree is another fragment).
	Inputs []*Node
	// Loc is the site the fragment executes at ("" when the plan is not
	// located, e.g. before site selection).
	Loc string
}

// Leaf reports whether the fragment consumes no exchanges: its inputs
// are all local scans, so it can start immediately and independently.
func (f *Fragment) Leaf() bool { return len(f.Inputs) == 0 }

// SplitFragments decomposes a located physical plan into its execution
// fragments at Ship boundaries. The plan-root fragment is first; the
// remaining fragments follow in pre-order of their exporting Ship
// operators, so the decomposition is deterministic for a given plan.
func SplitFragments(root *Node) []*Fragment {
	var out []*Fragment
	var build func(fragRoot, output *Node)
	build = func(fragRoot, output *Node) {
		f := &Fragment{Root: fragRoot, Output: output, Loc: fragLoc(fragRoot, output)}
		out = append(out, f)
		var pending []*Node
		fragRoot.Walk(func(n *Node) bool {
			if n.Kind == Ship {
				f.Inputs = append(f.Inputs, n)
				pending = append(pending, n)
				return false // the subtree below belongs to another fragment
			}
			return true
		})
		for _, ship := range pending {
			build(ship.Children[0], ship)
		}
	}
	build(root, nil)
	return out
}

// fragLoc derives the fragment's execution site: the exporting Ship's
// source location when present, otherwise the fragment root's own
// location annotation.
func fragLoc(fragRoot, output *Node) string {
	if output != nil && output.FromLoc != "" {
		return output.FromLoc
	}
	return fragRoot.Loc
}

// CountLeafFragments returns how many fragments of the plan are leaves —
// the plan's degree of immediately available parallelism.
func CountLeafFragments(root *Node) int {
	n := 0
	for _, f := range SplitFragments(root) {
		if f.Leaf() {
			n++
		}
	}
	return n
}
