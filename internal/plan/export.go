package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Dot renders the plan as a Graphviz digraph. Operators are boxes labeled
// with their parameters; nodes are clustered by execution location so the
// geo-distribution of the plan is visible at a glance; SHIP edges are
// drawn bold.
func (n *Node) Dot() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	// Assign ids and bucket nodes per location.
	ids := map[*Node]int{}
	var order []*Node
	n.Walk(func(x *Node) bool {
		ids[x] = len(order)
		order = append(order, x)
		return true
	})
	byLoc := map[string][]*Node{}
	var locs []string
	for _, x := range order {
		loc := x.Loc
		if _, seen := byLoc[loc]; !seen {
			locs = append(locs, loc)
		}
		byLoc[loc] = append(byLoc[loc], x)
	}
	for ci, loc := range locs {
		if loc != "" {
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"%s\";\n    style=dashed;\n", ci, loc)
		}
		for _, x := range byLoc[loc] {
			label := strings.ReplaceAll(x.OpString(), `"`, `\"`)
			if x.Card > 0 {
				label += fmt.Sprintf(`\nrows≈%.0f`, x.Card)
			}
			attrs := ""
			if x.Kind == Ship {
				attrs = ", style=filled, fillcolor=lightyellow"
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\"%s];\n", ids[x], label, attrs)
		}
		if loc != "" {
			b.WriteString("  }\n")
		}
	}
	n.Walk(func(x *Node) bool {
		for _, c := range x.Children {
			style := ""
			if x.Kind == Ship || c.Kind == Ship {
				style = " [penwidth=2]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", ids[c], ids[x], style)
		}
		return true
	})
	b.WriteString("}\n")
	return b.String()
}

// jsonNode is the serialized form of a plan operator.
type jsonNode struct {
	Operator string     `json:"operator"`
	Detail   string     `json:"detail,omitempty"`
	Location string     `json:"location,omitempty"`
	Exec     []string   `json:"exec_trait,omitempty"`
	Ship     []string   `json:"ship_trait,omitempty"`
	Rows     float64    `json:"est_rows,omitempty"`
	Columns  []string   `json:"columns,omitempty"`
	Children []jsonNode `json:"children,omitempty"`
}

func (n *Node) toJSON() jsonNode {
	out := jsonNode{
		Operator: n.Kind.String(),
		Location: n.Loc,
		Rows:     n.Card,
	}
	if detail := n.OpString(); detail != n.Kind.String() {
		out.Detail = detail
	}
	if !n.Exec.Empty() {
		out.Exec = n.Exec.Slice()
	}
	if !n.ShipT.Empty() {
		out.Ship = n.ShipT.Slice()
	}
	for _, c := range n.Cols {
		out.Columns = append(out.Columns, c.Key())
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// MarshalJSON serializes the plan tree (operators, locations, traits,
// estimates) for external tooling.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.toJSON())
}

// JSON renders the plan as indented JSON.
func (n *Node) JSON() (string, error) {
	b, err := json.MarshalIndent(n.toJSON(), "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
