package plan

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
)

func TestCanonFoldsPhysicalKinds(t *testing.T) {
	folds := map[Kind]Kind{
		TableScan:  Scan,
		FilterExec: Filter,
		HashJoin:   Join,
		NLJoin:     Join,
		MergeJoin:  Join,
		HashAgg:    Aggregate,
		SortExec:   Sort,
		LimitExec:  Limit,
		// Logical kinds are fixed points.
		Scan: Scan,
		Join: Join,
		Ship: Ship,
	}
	for k, want := range folds {
		if got := k.Canon(); got != want {
			t.Errorf("Canon(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestSubplanDigestErasesPhysicalChoice: the digest of an executed
// physical tree must match the digest of the logical tree it implements
// — that is the key the feedback store and the memo agree on.
func TestSubplanDigestErasesPhysicalChoice(t *testing.T) {
	logical := func() *Node {
		l := NewScan(custTable(), "C", -1)
		r := NewScan(ordTable(), "O", -1)
		cond := expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey"))
		return NewJoin(l, r, cond)
	}
	base := logical().SubplanDigest()
	for _, k := range []Kind{HashJoin, NLJoin, MergeJoin} {
		p := logical()
		p.Kind = k
		p.Children[0].Kind = TableScan
		p.Children[1].Kind = TableScan
		if got := p.SubplanDigest(); got != base {
			t.Errorf("%v digest %q != logical digest %q", k, got, base)
		}
	}
}

// TestSubplanDigestSkipsShip: a Ship over a subtree must not change its
// digest — shipping moves the stream, not its cardinality.
func TestSubplanDigestSkipsShip(t *testing.T) {
	s := NewScan(custTable(), "C", -1)
	base := s.SubplanDigest()
	shipped := &Node{Kind: Ship, Children: []*Node{s}, Cols: s.Cols, FromLoc: "N", Loc: "E"}
	if got := shipped.SubplanDigest(); got != base {
		t.Errorf("ship-wrapped digest %q != bare digest %q", got, base)
	}
	// Ship inside a larger tree is equally transparent.
	f := &Node{Kind: Filter, Children: []*Node{shipped}, Cols: s.Cols,
		Pred: expr.NewCmp(expr.LT, expr.NewCol("C", "custkey"), expr.NewConst(expr.NewInt(5)))}
	direct := &Node{Kind: Filter, Children: []*Node{s}, Cols: s.Cols, Pred: f.Pred}
	if f.SubplanDigest() != direct.SubplanDigest() {
		t.Error("ship inside a tree changed the enclosing digest")
	}
}

func TestSubplanDigestDistinguishesOperators(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	o := NewScan(ordTable(), "O", -1)
	if c.SubplanDigest() == o.SubplanDigest() {
		t.Error("different tables share a digest")
	}
	f1 := NewFilter(c, expr.NewCmp(expr.LT, expr.NewCol("C", "custkey"), expr.NewConst(expr.NewInt(5))))
	f2 := NewFilter(c, expr.NewCmp(expr.LT, expr.NewCol("C", "custkey"), expr.NewConst(expr.NewInt(9))))
	if f1.SubplanDigest() == f2.SubplanDigest() {
		t.Error("different predicates share a digest")
	}
	if !strings.Contains(f1.SubplanDigest(), c.SubplanDigest()) {
		t.Error("digest does not compose over children")
	}
}

func TestCanonOpDigestLeavesNodeIntact(t *testing.T) {
	s := NewScan(custTable(), "C", -1)
	s.Kind = TableScan
	_ = s.CanonOpDigest()
	if s.Kind != TableScan {
		t.Error("CanonOpDigest mutated the node")
	}
}
