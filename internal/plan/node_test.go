package plan

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

func custTable() *schema.Table {
	return schema.NewTable("Customer", "db-1", "N", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
	)
}

func ordTable() *schema.Table {
	return schema.NewTable("Orders", "db-2", "E", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
}

func TestScanSchema(t *testing.T) {
	s := NewScan(custTable(), "C", -1)
	if len(s.Cols) != 3 {
		t.Fatalf("cols: %d", len(s.Cols))
	}
	if s.Cols[0].Key() != "C.custkey" || s.Cols[0].Type != expr.TInt {
		t.Errorf("col0: %+v", s.Cols[0])
	}
	// Default alias is the table name.
	s2 := NewScan(custTable(), "", -1)
	if s2.Cols[0].Key() != "Customer.custkey" {
		t.Errorf("default alias: %v", s2.Cols[0].Key())
	}
}

func TestProjectSchemaAndTypes(t *testing.T) {
	s := NewScan(custTable(), "C", -1)
	p := NewProject(s, []NamedExpr{
		{E: expr.NewCol("C", "name")},
		{E: expr.NewArith(expr.Mul, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewInt(2))), Name: "dbl"},
	})
	if len(p.Cols) != 2 {
		t.Fatalf("cols: %d", len(p.Cols))
	}
	// Bare column keeps qualifier; name filled in.
	if p.Cols[0].Key() != "C.name" || p.Cols[0].Type != expr.TString {
		t.Errorf("col0: %+v", p.Cols[0])
	}
	if p.Projs[0].Name != "name" {
		t.Errorf("proj name: %q", p.Projs[0].Name)
	}
	// Computed column is unqualified with inferred type.
	if p.Cols[1].Key() != "dbl" || p.Cols[1].Type != expr.TFloat {
		t.Errorf("col1: %+v", p.Cols[1])
	}
}

func TestJoinAggSchema(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	o := NewScan(ordTable(), "O", -1)
	j := NewJoin(c, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	if len(j.Cols) != 6 {
		t.Fatalf("join cols: %d", len(j.Cols))
	}
	g := NewAggregate(j,
		[]*expr.Col{expr.NewCol("C", "name")},
		[]NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("O", "totprice"), Name: "total"}})
	if len(g.Cols) != 2 {
		t.Fatalf("agg cols: %d", len(g.Cols))
	}
	if g.Cols[0].Key() != "C.name" || g.Cols[1].Key() != "total" {
		t.Errorf("agg schema: %v %v", g.Cols[0].Key(), g.Cols[1].Key())
	}
	if g.Cols[1].Type != expr.TFloat {
		t.Errorf("sum(float) type: %v", g.Cols[1].Type)
	}
}

func TestColIndexAndResolver(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	o := NewScan(ordTable(), "O", -1)
	j := NewJoin(c, o, nil)
	if i := j.ColIndex(expr.NewCol("O", "ordkey")); i != 4 {
		t.Errorf("ColIndex(O.ordkey) = %d", i)
	}
	if i := j.ColIndex(expr.NewCol("", "name")); i != 1 {
		t.Errorf("ColIndex(name) = %d", i)
	}
	// custkey appears in both inputs: unqualified is ambiguous.
	if i := j.ColIndex(expr.NewCol("", "custkey")); i != -1 {
		t.Errorf("ambiguous ColIndex = %d", i)
	}
	if i := j.ColIndex(expr.NewCol("X", "name")); i != -1 {
		t.Errorf("unknown qualifier = %d", i)
	}
	// Resolver binds through to evaluation.
	e, err := expr.Bind(expr.NewCol("O", "totprice"), j.Resolver())
	if err != nil || e.(*expr.Col).Index != 5 {
		t.Errorf("Resolver bind: %v %v", e, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	f := NewFilter(c, expr.NewCmp(expr.GT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(0))))
	cl := f.Clone()
	cl.Loc = "X"
	cl.Children[0].Loc = "Y"
	if f.Loc != "" || f.Children[0].Loc != "" {
		t.Error("clone aliases original locations")
	}
	if cl.Digest() != f.Digest() {
		t.Error("clone digest differs")
	}
}

func TestWalkAndTables(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	o := NewScan(ordTable(), "O", -1)
	j := NewJoin(NewFilter(c, nil), o, nil)
	count := 0
	j.Walk(func(*Node) bool { count++; return true })
	if count != 4 {
		t.Errorf("walk count = %d", count)
	}
	tabs := j.Tables()
	if len(tabs) != 2 || tabs[0].Alias != "C" || tabs[1].Alias != "O" {
		t.Errorf("Tables: %v", tabs)
	}
}

func TestFormatAndDigest(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	f := NewFilter(c, expr.NewCmp(expr.GT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(100))))
	p := NewProject(f, []NamedExpr{{E: expr.NewCol("C", "name")}})
	sh := NewShip(p, "N", "E")
	out := sh.Format(false)
	for _, want := range []string{"Ship[N -> E]", "Project[C.name]", "Filter[C.acctbal > 100]", "Scan(Customer AS C)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	// Annotated format shows traits and location.
	p.Exec = NewSiteSet("N")
	p.ShipT = NewSiteSet("N", "E")
	p.Loc = "N"
	p.Card = 42
	annotated := p.Format(true)
	for _, want := range []string{"@N", "exec={N}", "ship={E, N}", "rows=42"} {
		if !strings.Contains(annotated, want) {
			t.Errorf("annotated Format missing %q in:\n%s", want, annotated)
		}
	}
	// Digest distinguishes different predicates and orders.
	f2 := NewFilter(c, expr.NewCmp(expr.GT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(200))))
	if f.Digest() == f2.Digest() {
		t.Error("digests should differ for different predicates")
	}
	o := NewScan(ordTable(), "O", -1)
	j1 := NewJoin(c, o, nil)
	j2 := NewJoin(o, c, nil)
	if j1.Digest() == j2.Digest() {
		t.Error("digests should differ for different child orders")
	}
}

func TestRowWidth(t *testing.T) {
	c := NewScan(custTable(), "C", -1)
	// Scan uses catalog widths: 8 + 16 + 8.
	if w := c.RowWidth(); w != 32 {
		t.Errorf("scan width = %v", w)
	}
	p := NewProject(c, []NamedExpr{{E: expr.NewCol("C", "custkey")}})
	if w := p.RowWidth(); w != 8 {
		t.Errorf("project width = %v", w)
	}
}

func TestUnionSortLimit(t *testing.T) {
	tab := &schema.Table{
		Name:    "Frag",
		Columns: []schema.Column{{Name: "a", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{DB: "db-1", Location: "L1", RowCount: 10},
			{DB: "db-2", Location: "L2", RowCount: 20},
		},
	}
	s1 := NewScan(tab, "F", 0)
	s2 := NewScan(tab, "F", 1)
	u := NewUnion(s1, s2)
	if len(u.Cols) != 1 || u.Cols[0].Key() != "F.a" {
		t.Errorf("union schema: %v", u.Cols)
	}
	if !strings.Contains(s1.OpString(), "frag 0@L1") {
		t.Errorf("fragment rendering: %s", s1.OpString())
	}
	srt := NewSort(u, []SortKey{{E: expr.NewCol("F", "a"), Desc: true}})
	if !strings.Contains(srt.OpString(), "F.a DESC") {
		t.Errorf("sort rendering: %s", srt.OpString())
	}
	lim := NewLimit(srt, 10)
	if lim.LimitN != 10 || lim.Cols[0].Key() != "F.a" {
		t.Error("limit schema")
	}
}

func TestKindHelpers(t *testing.T) {
	if Scan.Physical() || Join.Physical() {
		t.Error("logical kinds must not be physical")
	}
	if !TableScan.Physical() || !Ship.Physical() {
		t.Error("physical kinds")
	}
	if HashJoin.String() != "HashJoin" || Aggregate.String() != "Aggregate" {
		t.Error("Kind.String")
	}
}
