package plan

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSiteSetBasics(t *testing.T) {
	s := NewSiteSet("B", "A", "B", "C")
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Contains("A") || !s.Contains("C") || s.Contains("D") {
		t.Error("Contains")
	}
	if got := s.Slice(); got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Errorf("Slice: %v", got)
	}
	if s.String() != "{A, B, C}" {
		t.Errorf("String: %s", s)
	}
	if s.Key() != "A,B,C" {
		t.Errorf("Key: %s", s.Key())
	}
	var zero SiteSet
	if !zero.Empty() || zero.String() != "{}" {
		t.Error("zero value")
	}
	if NewSiteSet().Len() != 0 {
		t.Error("empty constructor")
	}
}

func TestSiteSetOps(t *testing.T) {
	a := NewSiteSet("A", "B", "C")
	b := NewSiteSet("B", "C", "D")
	if got := a.Intersect(b); got.Key() != "B,C" {
		t.Errorf("Intersect: %s", got)
	}
	if got := a.Union(b); got.Key() != "A,B,C,D" {
		t.Errorf("Union: %s", got)
	}
	if !a.SupersetOf(NewSiteSet("A", "C")) {
		t.Error("SupersetOf true case")
	}
	if a.SupersetOf(b) {
		t.Error("SupersetOf false case")
	}
	if !a.SupersetOf(NewSiteSet()) {
		t.Error("superset of empty")
	}
	if !a.Equal(NewSiteSet("C", "B", "A")) {
		t.Error("Equal")
	}
	if a.Equal(b) {
		t.Error("not Equal")
	}
	var zero SiteSet
	if got := a.Intersect(zero); !got.Empty() {
		t.Error("intersect with empty")
	}
	if got := a.Union(zero); !got.Equal(a) {
		t.Error("union with empty")
	}
	if got := zero.Union(a); !got.Equal(a) {
		t.Error("empty union")
	}
}

// Property: Union/Intersect agree with a reference map implementation.
func TestSiteSetOpsProperty(t *testing.T) {
	names := []string{"L1", "L2", "L3", "L4", "L5"}
	pick := func(mask uint8) []string {
		var out []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				out = append(out, n)
			}
		}
		return out
	}
	f := func(ma, mb uint8) bool {
		a, b := NewSiteSet(pick(ma)...), NewSiteSet(pick(mb)...)
		inter := map[string]bool{}
		uni := map[string]bool{}
		for _, x := range pick(ma) {
			uni[x] = true
		}
		for _, x := range pick(mb) {
			uni[x] = true
			for _, y := range pick(ma) {
				if x == y {
					inter[x] = true
				}
			}
		}
		toKey := func(m map[string]bool) string {
			var ks []string
			for k := range m {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			return NewSiteSet(ks...).Key()
		}
		return a.Intersect(b).Key() == toKey(inter) && a.Union(b).Key() == toKey(uni) &&
			a.Union(b).SupersetOf(a) && a.SupersetOf(a.Intersect(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
