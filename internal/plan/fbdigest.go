package plan

import (
	"fmt"
	"strings"
)

// This file defines the *feedback digest*: a canonical identity for a
// subplan that is stable across the plan's physical implementation and
// its site assignment. The feedback store (internal/feedback) records
// observed cardinalities under these digests from *executed* (located,
// physical) plans, while the optimizer looks them up against *memo
// groups* built from the normalized logical plan — so the digest must
// erase exactly the two dimensions that differ between the two views:
// physical operator choice (HashJoin vs NLJoin vs the logical Join) and
// Ship operators (inserted by the site selector, cardinality-neutral).

// Canon maps a physical operator kind to its logical counterpart; the
// cardinality of a subplan does not depend on which implementation ran
// it. Ship has no logical counterpart and is handled (skipped) by the
// digest walk itself.
func (k Kind) Canon() Kind {
	switch k {
	case TableScan:
		return Scan
	case FilterExec:
		return Filter
	case ProjectExec:
		return Project
	case HashJoin, NLJoin, MergeJoin, IndexLookupJoin:
		return Join
	case HashAgg:
		return Aggregate
	case SortExec:
		return Sort
	case LimitExec:
		return Limit
	case UnionAll:
		return Union
	}
	return k
}

// CanonOpDigest is OpDigest rendered with the canonical (logical) kind,
// so e.g. a HashJoin and the logical Join it implements produce the
// same operator string.
func (n *Node) CanonOpDigest() string {
	ck := n.Kind.Canon()
	if ck == n.Kind {
		return n.OpDigest()
	}
	cp := *n
	cp.Kind = ck
	return cp.OpDigest()
}

// SubplanDigest returns the canonical feedback digest of the subtree:
// canonical operator digests composed over children, with Ship nodes
// skipped (a shipped stream has the producer's cardinality). A memo
// group's feedback digest (first expression's canonical op digest over
// child group digests) equals the SubplanDigest of any tree extracted
// from that group, modulo post-extraction rewrites such as projection
// merging.
func (n *Node) SubplanDigest() string {
	var b strings.Builder
	n.subplanDigest(&b)
	return b.String()
}

func (n *Node) subplanDigest(b *strings.Builder) {
	if n.Kind == Ship && len(n.Children) == 1 {
		n.Children[0].subplanDigest(b)
		return
	}
	if n.Kind == IndexScan {
		// An IndexScan is Filter(Scan) with the index pre-filtering; its
		// output cardinality is that of the filter it implements, so it
		// digests identically (the bounds are derived from the predicate
		// and carry no extra identity).
		b.WriteString(IndexScanFilterDigest(n))
		return
	}
	b.WriteString(n.CanonOpDigest())
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.subplanDigest(b)
	}
	b.WriteByte(')')
}

// IndexScanFilterDigest renders an IndexScan as the canonical digest of
// the Filter-over-Scan it implements.
func IndexScanFilterDigest(n *Node) string {
	p := ""
	if n.Pred != nil {
		p = n.Pred.String()
	}
	return fmt.Sprintf("Filter:%s(Scan:%s:%s:%d())", p, n.Table.Name, n.Alias, n.FragIdx)
}
