package feedback

import (
	"fmt"
	"sync"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{10, 100, 10},
		{100, 10, 10},
		{0, 0, 1},   // floored at 1 row each
		{0, 50, 50}, // empty estimate does not divide by zero
		{50, 0, 50}, // empty actual likewise
		{0.5, 2, 2}, // sub-row estimates floor to 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestHintActivation(t *testing.T) {
	s := NewStore(Options{MinSamples: 2, ActivateQError: 2, EWMAAlpha: 1})
	if _, ok := s.CardHint("d"); ok {
		t.Fatal("hint active before any observation")
	}

	// First observation: q-error 10 but MinSamples not reached.
	s.ObserveOperator("d", 100, 1000)
	if _, ok := s.CardHint("d"); ok {
		t.Fatal("hint active below MinSamples")
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch moved before activation: %d", s.Epoch())
	}

	// Second observation crosses both thresholds.
	s.ObserveOperator("d", 100, 1000)
	hint, ok := s.CardHint("d")
	if !ok || hint != 1000 {
		t.Fatalf("CardHint = (%v, %v), want (1000, true)", hint, ok)
	}
	if s.Epoch() != 1 {
		t.Fatalf("activation should bump the epoch once, got %d", s.Epoch())
	}
}

func TestAccurateEstimateNeverActivates(t *testing.T) {
	s := NewStore(Options{})
	for i := 0; i < 100; i++ {
		s.ObserveOperator("d", 100, 110) // q-error 1.1, below threshold
	}
	if _, ok := s.CardHint("d"); ok {
		t.Fatal("hint activated for an accurate estimate")
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch moved without activation: %d", s.Epoch())
	}
}

// TestNoOscillationAfterReoptimization pins the anti-flap property:
// after re-optimization the planner's estimate IS the hint, so the
// recorded q-error collapses to ~1 — and the hint must stay active (and
// the epoch still) rather than deactivate and re-activate forever.
func TestNoOscillationAfterReoptimization(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1})
	s.ObserveOperator("d", 10, 1000) // activates (q=100)
	if s.Epoch() != 1 {
		t.Fatalf("epoch after activation = %d, want 1", s.Epoch())
	}
	// Post-re-optimization runs: estimate now equals the actual.
	for i := 0; i < 50; i++ {
		s.ObserveOperator("d", 1000, 1000)
	}
	hint, ok := s.CardHint("d")
	if !ok || hint != 1000 {
		t.Fatalf("hint lost after accurate runs: (%v, %v)", hint, ok)
	}
	if s.Epoch() != 1 {
		t.Fatalf("stable hint churned the epoch: %d", s.Epoch())
	}
}

func TestHintDriftBumpsEpoch(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1, HintDrift: 1.5})
	s.ObserveOperator("d", 10, 1000)
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Epoch())
	}
	// Small movement: below drift, no bump.
	s.ObserveOperator("d", 1000, 1100)
	if s.Epoch() != 1 {
		t.Fatalf("sub-drift movement bumped the epoch: %d", s.Epoch())
	}
	// Big movement: the data changed; re-point and re-price.
	s.ObserveOperator("d", 1000, 5000)
	if s.Epoch() != 2 {
		t.Fatalf("drift did not bump the epoch: %d", s.Epoch())
	}
	if hint, _ := s.CardHint("d"); hint != 5000 {
		t.Fatalf("drifted hint = %v, want 5000", hint)
	}
}

func TestBoundedStoreDropsNewDigests(t *testing.T) {
	s := NewStore(Options{MaxSubplans: 4})
	for i := 0; i < 10; i++ {
		s.ObserveOperator(fmt.Sprintf("d%d", i), 10, 1000)
	}
	sum := s.Summary()
	if sum.Tracked != 4 {
		t.Fatalf("tracked = %d, want 4", sum.Tracked)
	}
	if sum.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", sum.Dropped)
	}
	// Existing digests still update at the cap.
	s.ObserveOperator("d0", 10, 1000)
	if s.Summary().Dropped != 6 {
		t.Fatal("update of a tracked digest was dropped")
	}
}

func TestLatencyQuantile(t *testing.T) {
	s := NewStore(Options{LatencyWindow: 8})
	if _, ok := s.LatencyQuantile(0.5); ok {
		t.Fatal("quantile reported with no samples")
	}
	for _, v := range []float64{0.1, 0.2, 0.3, 0.4} {
		s.ObserveQuery(v)
	}
	if p50, ok := s.LatencyQuantile(0.5); !ok || p50 != 0.2 {
		t.Fatalf("p50 = (%v, %v), want (0.2, true)", p50, ok)
	}
	if p100, ok := s.LatencyQuantile(1); !ok || p100 != 0.4 {
		t.Fatalf("p100 = (%v, %v), want (0.4, true)", p100, ok)
	}
	// Overflow the ring: old samples age out, the window stays bounded.
	for i := 0; i < 20; i++ {
		s.ObserveQuery(1.0)
	}
	if p50, _ := s.LatencyQuantile(0.5); p50 != 1.0 {
		t.Fatalf("post-overflow p50 = %v, want 1.0", p50)
	}
	if got := s.Summary().Queries; got != 24 {
		t.Fatalf("query count = %d, want 24", got)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.ObserveOperator("d", 1, 2)
	s.ObserveQuery(0.5)
	s.BumpEpoch()
	s.ArmCalibration(nil, 0)
	s.SetMetrics(nil)
	if _, ok := s.CardHint("d"); ok {
		t.Fatal("nil store returned a hint")
	}
	if _, ok := s.LatencyQuantile(0.5); ok {
		t.Fatal("nil store returned a quantile")
	}
	if s.Epoch() != 0 {
		t.Fatal("nil store epoch moved")
	}
	if s.Calibrator() != nil {
		t.Fatal("nil store returned a calibrator")
	}
	if s.Summary() != (Summary{}) {
		t.Fatal("nil store summary not zero")
	}
}

// TestConcurrentStore exercises the store under the race detector:
// writers, hint readers and latency observers all at once.
func TestConcurrentStore(t *testing.T) {
	s := NewStore(Options{MaxSubplans: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d := fmt.Sprintf("d%d", i%100)
				s.ObserveOperator(d, 10, float64(1000+i))
				s.CardHint(d)
				s.ObserveQuery(float64(i) / 1000)
				s.LatencyQuantile(0.99)
				s.Epoch()
				s.Summary()
			}
		}(g)
	}
	wg.Wait()
	if s.Summary().Tracked > 64 {
		t.Fatalf("tracked %d exceeds bound", s.Summary().Tracked)
	}
}
