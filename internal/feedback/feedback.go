// Package feedback closes the loop between execution telemetry and the
// planner: a concurrent, bounded store of per-operator observed
// cardinalities (keyed by canonical subplan digest, with q-error
// tracking), per-edge wire observations (the PR 6 calibrator, folded
// into a continuously applied model), and per-query end-to-end latency
// samples. Consumers: the optimizer overrides stale statistics with
// high-confidence actuals (guarded by a feedback epoch so plan caches
// invalidate safely), the scheduler adapts admission limits to an SLO
// and weights gang site slots by observed fragment cost, and a
// structured slow-query log explains outliers. Everything is nil-safe:
// a nil *Store ignores writes and returns no hints, so disabled paths
// stay deterministic.
package feedback

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cgdqp/internal/network"
	"cgdqp/internal/obs"
)

// Defaults for Options zero values.
const (
	DefaultMaxSubplans = 4096
	DefaultMinSamples  = 1
	// DefaultActivateQError is the estimate-vs-actual q-error above
	// which an observed cardinality becomes an active hint. Below it the
	// catalog estimate is close enough that overriding would only churn
	// the plan cache.
	DefaultActivateQError = 2.0
	// DefaultHintDrift is the relative movement of an active hint's
	// actual (EWMA) that re-bumps the epoch so cached plans re-price.
	DefaultHintDrift = 1.5
	// DefaultEWMAAlpha weights new samples into the running actual.
	DefaultEWMAAlpha = 0.25
	// DefaultLatencyWindow is the e2e latency ring size.
	DefaultLatencyWindow = 512
	// DefaultAutoApplyFrames is the calibrator auto-apply cadence used
	// by ArmCalibration when everyN <= 0.
	DefaultAutoApplyFrames = 256
	// calibrationDrift is the relative byte-scale movement below which
	// an auto-applied calibration does not bump the epoch (re-pricing
	// every cached plan for a 1% ratio wiggle is all cost, no benefit).
	calibrationDrift = 0.05
)

// Options bound and tune a Store. The zero value uses the defaults.
type Options struct {
	// MaxSubplans caps the number of tracked subplan digests. At the
	// cap, observations for unseen digests are dropped (and counted)
	// rather than evicting hot entries.
	MaxSubplans int
	// MinSamples is the number of observations a digest needs before
	// its actual can become an active hint.
	MinSamples int
	// ActivateQError is the estimate q-error threshold for activation.
	ActivateQError float64
	// HintDrift re-bumps the epoch when an active hint's actual moves
	// by more than this factor (in either direction).
	HintDrift float64
	// EWMAAlpha is the exponential moving-average weight of new samples.
	EWMAAlpha float64
	// LatencyWindow is the size of the e2e latency sample ring.
	LatencyWindow int
}

func (o Options) withDefaults() Options {
	if o.MaxSubplans <= 0 {
		o.MaxSubplans = DefaultMaxSubplans
	}
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.ActivateQError <= 1 {
		o.ActivateQError = DefaultActivateQError
	}
	if o.HintDrift <= 1 {
		o.HintDrift = DefaultHintDrift
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = DefaultEWMAAlpha
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = DefaultLatencyWindow
	}
	return o
}

// cardStat tracks one subplan digest's observed output cardinality.
type cardStat struct {
	n      int64   // observations
	est    float64 // last catalog/planner estimate recorded
	actual float64 // EWMA of observed rows
	qerr   float64 // last q-error of est vs observed
	maxQ   float64 // worst q-error seen
	// hint is the active override (0 = inactive). Once active a hint
	// never deactivates — after re-optimization the recorded estimate
	// IS the hint, so an "estimate now accurate" test would oscillate
	// between activating and deactivating, invalidating the plan cache
	// forever. It only drifts (bumping the epoch past HintDrift).
	hint float64
}

// Store is the telemetry store. All methods are safe for concurrent use
// and safe on a nil receiver.
type Store struct {
	opts  Options
	epoch atomic.Uint64

	mu      sync.RWMutex
	cards   map[string]*cardStat
	dropped int64 // observations dropped at MaxSubplans
	active  int64 // digests with an active hint
	maxQ    float64

	latMu    sync.Mutex
	lat      []float64 // e2e seconds ring
	latIdx   int
	latCount int64

	cal       *network.Calibrator
	lastRatio atomic.Uint64 // last auto-applied byte scale (float bits)

	reg *obs.Registry // optional metrics sink
}

// NewStore returns an empty store.
func NewStore(o Options) *Store {
	o = o.withDefaults()
	return &Store{
		opts:  o,
		cards: make(map[string]*cardStat),
		lat:   make([]float64, o.LatencyWindow),
		cal:   network.NewCalibrator(),
	}
}

// SetMetrics attaches a registry; the store exports
// cgdqp_feedback_{tracked,active_hints,epoch,dropped_total} gauges and
// a cgdqp_feedback_qerror histogram. Call before concurrent use.
func (s *Store) SetMetrics(reg *obs.Registry) {
	if s != nil {
		s.reg = reg
	}
}

// Epoch returns the feedback epoch: it moves when a hint activates,
// when an active hint drifts past HintDrift, or when auto-calibration
// materially changes the byte scale. Plan caches keyed on it invalidate
// exactly when re-optimization could produce a different plan. Nil
// stores are frozen at 0.
func (s *Store) Epoch() uint64 {
	if s == nil {
		return 0
	}
	return s.epoch.Load()
}

// BumpEpoch forces an epoch move (exposed for calibration and tests).
func (s *Store) BumpEpoch() {
	if s == nil {
		return
	}
	e := s.epoch.Add(1)
	if s.reg != nil {
		s.reg.Gauge("cgdqp_feedback_epoch").Set(float64(e))
	}
}

// ObserveOperator records one executed operator: the planner's estimate
// against the observed output rows, keyed by canonical subplan digest.
func (s *Store) ObserveOperator(digest string, est, actual float64) {
	if s == nil || digest == "" {
		return
	}
	q := QError(est, actual)
	bump := false
	s.mu.Lock()
	c := s.cards[digest]
	if c == nil {
		if len(s.cards) >= s.opts.MaxSubplans {
			s.dropped++
			s.mu.Unlock()
			return
		}
		c = &cardStat{actual: actual}
		s.cards[digest] = c
	}
	c.n++
	c.est = est
	c.qerr = q
	if q > c.maxQ {
		c.maxQ = q
	}
	if q > s.maxQ {
		s.maxQ = q
	}
	a := s.opts.EWMAAlpha
	c.actual = (1-a)*c.actual + a*actual
	switch {
	case c.hint == 0:
		if c.n >= int64(s.opts.MinSamples) && q >= s.opts.ActivateQError {
			c.hint = c.actual
			s.active++
			bump = true
		}
	default:
		if drift := QError(c.hint, c.actual); drift >= s.opts.HintDrift {
			c.hint = c.actual
			bump = true
		}
	}
	tracked, active := len(s.cards), s.active
	s.mu.Unlock()

	if bump {
		s.BumpEpoch()
	}
	if s.reg != nil {
		s.reg.Gauge("cgdqp_feedback_tracked").Set(float64(tracked))
		s.reg.Gauge("cgdqp_feedback_active_hints").Set(float64(active))
		s.reg.Histogram("cgdqp_feedback_qerror").Observe(q)
	}
}

// CardHint returns the observed cardinality for a subplan digest when a
// high-confidence actual is active. It implements cost.CardHints.
func (s *Store) CardHint(digest string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	c := s.cards[digest]
	var h float64
	if c != nil {
		h = c.hint
	}
	s.mu.RUnlock()
	if h <= 0 {
		return 0, false
	}
	return h, true
}

// ObserveQuery records one query's end-to-end latency.
func (s *Store) ObserveQuery(seconds float64) {
	if s == nil {
		return
	}
	s.latMu.Lock()
	s.lat[s.latIdx] = seconds
	s.latIdx = (s.latIdx + 1) % len(s.lat)
	s.latCount++
	s.latMu.Unlock()
}

// LatencyQuantile returns the q-quantile (0..1) over the latency window;
// ok is false with no samples.
func (s *Store) LatencyQuantile(q float64) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.latMu.Lock()
	n := int(s.latCount)
	if n > len(s.lat) {
		n = len(s.lat)
	}
	samples := append([]float64(nil), s.lat[:n]...)
	s.latMu.Unlock()
	if len(samples) == 0 {
		return 0, false
	}
	sort.Float64s(samples)
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx], true
}

// Calibrator returns the store's wire calibrator; install it on the
// cluster so every shipment feeds the continuous model.
func (s *Store) Calibrator() *network.Calibrator {
	if s == nil {
		return nil
	}
	return s.cal
}

// ArmCalibration folds the calibrator into the loop: every everyN
// encoding observations (DefaultAutoApplyFrames when <= 0) the observed
// encoding ratio is applied to m's byte scale, and the feedback epoch
// is bumped when the applied scale moved by more than ~5% — so cached
// plans re-price against the calibrated model without per-frame churn.
func (s *Store) ArmCalibration(m *network.CostModel, everyN int) {
	if s == nil {
		return
	}
	if everyN <= 0 {
		everyN = DefaultAutoApplyFrames
	}
	s.lastRatio.Store(math.Float64bits(1))
	s.cal.SetAutoApply(m, everyN, func(ratio float64) {
		last := math.Float64frombits(s.lastRatio.Load())
		if QError(last, ratio) < 1+calibrationDrift {
			return
		}
		s.lastRatio.Store(math.Float64bits(ratio))
		s.BumpEpoch()
		if s.reg != nil {
			s.reg.Gauge("cgdqp_feedback_byte_scale").Set(ratio)
		}
	})
}

// Summary is a point-in-time view of the store.
type Summary struct {
	Tracked     int     // subplan digests tracked
	ActiveHints int     // digests with an active override
	Dropped     int64   // observations dropped at the bound
	Epoch       uint64  // current feedback epoch
	MaxQError   float64 // worst q-error observed
	Queries     int64   // e2e latency samples recorded
}

// Summary snapshots the store.
func (s *Store) Summary() Summary {
	if s == nil {
		return Summary{}
	}
	s.mu.RLock()
	sum := Summary{
		Tracked:     len(s.cards),
		ActiveHints: int(s.active),
		Dropped:     s.dropped,
		MaxQError:   s.maxQ,
	}
	s.mu.RUnlock()
	sum.Epoch = s.epoch.Load()
	s.latMu.Lock()
	sum.Queries = s.latCount
	s.latMu.Unlock()
	return sum
}

// QError is the symmetric cardinality error max(est/act, act/est), the
// standard misestimation measure; inputs are floored at 1 row so empty
// results do not blow up the ratio.
func QError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}
