package feedback

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// QueryRecord is one completed query as the slow-query log sees it.
type QueryRecord struct {
	TS         string     `json:"ts,omitempty"` // RFC3339Nano wall time
	SQLDigest  string     `json:"sql_digest"`
	PlanDigest string     `json:"plan_digest"`
	LatencyMS  float64    `json:"latency_ms"`
	RowsOut    int64      `json:"rows_out"`
	ShipBytes  int64      `json:"ship_bytes"`
	ShipCostMS float64    `json:"ship_cost_ms"`
	Retries    int64      `json:"retries"`
	Cache      string     `json:"cache"` // hit | miss | off
	Engine     string     `json:"engine,omitempty"`
	Coalesced  bool       `json:"coalesced,omitempty"`
	QErrors    []OpQError `json:"qerrors,omitempty"`
}

// Cache dispositions for QueryRecord.Cache.
const (
	CacheHit  = "hit"
	CacheMiss = "miss"
	CacheOff  = "off"
)

// SlowQueryLog emits one JSON line per query whose end-to-end latency
// meets a threshold. A threshold of 0 logs every query. Safe for
// concurrent use; a nil log ignores everything.
type SlowQueryLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	emitted   int64
	// now is swappable for deterministic tests; nil stamps wall time.
	now func() time.Time
}

// NewSlowQueryLog returns a log writing JSON lines to w for queries at
// or above threshold.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return &SlowQueryLog{w: w, threshold: threshold, now: time.Now}
}

// Threshold returns the log's latency threshold.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Maybe emits rec when the query's latency meets the threshold. The
// record's TS and LatencyMS are filled from lat.
func (l *SlowQueryLog) Maybe(lat time.Duration, rec QueryRecord) {
	if l == nil || lat < l.threshold {
		return
	}
	rec.LatencyMS = float64(lat.Nanoseconds()) / 1e6
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.now != nil {
		rec.TS = l.now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	if _, err := l.w.Write(line); err == nil {
		l.emitted++
	}
}

// Count returns the number of lines emitted.
func (l *SlowQueryLog) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.emitted
}
