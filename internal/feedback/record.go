package feedback

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// maxReportedOps bounds the per-query q-error list handed to the slow
// log (worst offenders first).
const maxReportedOps = 8

// OpQError is one operator's estimate-vs-actual outcome, as reported in
// the slow-query log.
type OpQError struct {
	Op     string  `json:"op"`
	Digest string  `json:"digest"` // short hash of the subplan digest
	Est    float64 `json:"est"`
	Actual float64 `json:"actual"`
	QError float64 `json:"qerror"`
}

// RecordExecution walks an executed located plan with its profile,
// feeds every operator's (estimate, actual) into the store under its
// canonical subplan digest, and returns the per-operator q-errors
// sorted worst-first (capped at maxReportedOps) for the slow-query log.
// The store may be nil (slow-log-only mode); the q-errors are still
// computed. Rules that keep the actuals trustworthy:
//
//   - Ship nodes are digest-transparent and not recorded — a shipped
//     stream has its producer's cardinality.
//   - Subtrees under a Limit are skipped: early termination truncates
//     their actuals below the true cardinality.
//   - Re-opened operators (NL-join inner sides) accumulate rows across
//     opens, so the actual is normalized per open.
//   - Binary joins are recorded under both child orders; a join's
//     output cardinality does not depend on which side builds.
func RecordExecution(s *Store, root *plan.Node, prof *obs.PlanProfile) []OpQError {
	if root == nil || prof == nil {
		return nil
	}
	var out []OpQError
	var rec func(n *plan.Node, underLimit bool) string
	rec = func(n *plan.Node, underLimit bool) string {
		if n.Kind == plan.Ship && len(n.Children) == 1 {
			return rec(n.Children[0], underLimit)
		}
		below := underLimit || n.Kind.Canon() == plan.Limit
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = rec(c, below)
		}
		var b strings.Builder
		b.WriteString(n.CanonOpDigest())
		b.WriteByte('(')
		for i, d := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(d)
		}
		b.WriteByte(')')
		digest := b.String()

		if underLimit {
			return digest
		}
		st := prof.Peek(n)
		if st == nil || st.Opens.Load() == 0 {
			return digest
		}
		opens := st.Opens.Load()
		actual := float64(st.Rows.Load()) / float64(opens)
		est := n.Card
		s.ObserveOperator(digest, est, actual)
		if n.Kind.Canon() == plan.Join && len(kids) == 2 {
			swapped := n.CanonOpDigest() + "(" + kids[1] + "," + kids[0] + ")"
			s.ObserveOperator(swapped, est, actual)
		}
		out = append(out, OpQError{
			Op:     n.Kind.Canon().String(),
			Digest: ShortDigest(digest),
			Est:    est,
			Actual: actual,
			QError: QError(est, actual),
		})
		return digest
	}
	rec(root, false)
	sort.SliceStable(out, func(i, j int) bool { return out[i].QError > out[j].QError })
	if len(out) > maxReportedOps {
		out = out[:maxReportedOps]
	}
	return out
}

// SQLDigest returns a short stable digest of a statement's text for log
// correlation.
func SQLDigest(sql string) string {
	h := fnv.New64a()
	h.Write([]byte(sql))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShortDigest compresses a (potentially long) plan or subplan digest
// string into a fixed-width hash for log lines.
func ShortDigest(digest string) string {
	h := fnv.New64a()
	h.Write([]byte(digest))
	return fmt.Sprintf("%016x", h.Sum64())
}
