package feedback

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowQueryLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(&buf, 100*time.Millisecond)
	l.now = func() time.Time { return time.Date(2021, 6, 20, 12, 0, 0, 0, time.UTC) }

	l.Maybe(50*time.Millisecond, QueryRecord{SQLDigest: "fast"})
	if l.Count() != 0 || buf.Len() != 0 {
		t.Fatal("fast query logged below threshold")
	}

	l.Maybe(150*time.Millisecond, QueryRecord{
		SQLDigest:  "slow",
		PlanDigest: "plan",
		RowsOut:    7,
		ShipBytes:  1234,
		Retries:    2,
		Cache:      CacheMiss,
		Engine:     "par",
		QErrors: []OpQError{
			{Op: "Join", Digest: "abc", Est: 10, Actual: 1000, QError: 100},
		},
	})
	if l.Count() != 1 {
		t.Fatalf("emitted = %d, want 1", l.Count())
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var rec QueryRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if rec.SQLDigest != "slow" || rec.PlanDigest != "plan" || rec.RowsOut != 7 ||
		rec.ShipBytes != 1234 || rec.Retries != 2 || rec.Cache != CacheMiss || rec.Engine != "par" {
		t.Fatalf("round-tripped record mismatch: %+v", rec)
	}
	if rec.LatencyMS != 150 {
		t.Fatalf("latency_ms = %v, want 150", rec.LatencyMS)
	}
	if rec.TS != "2021-06-20T12:00:00Z" {
		t.Fatalf("ts = %q", rec.TS)
	}
	if len(rec.QErrors) != 1 || rec.QErrors[0].QError != 100 {
		t.Fatalf("qerrors mismatch: %+v", rec.QErrors)
	}
}

func TestSlowQueryLogZeroThresholdLogsAll(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(&buf, 0)
	l.Maybe(0, QueryRecord{SQLDigest: "a"})
	l.Maybe(time.Nanosecond, QueryRecord{SQLDigest: "b"})
	if l.Count() != 2 {
		t.Fatalf("emitted = %d, want 2", l.Count())
	}
}

func TestSlowQueryLogNilSafe(t *testing.T) {
	var l *SlowQueryLog
	l.Maybe(time.Second, QueryRecord{})
	if l.Count() != 0 || l.Threshold() != 0 {
		t.Fatal("nil log misbehaved")
	}
}

func TestDigestHelpers(t *testing.T) {
	a, b := SQLDigest("SELECT 1"), SQLDigest("SELECT 2")
	if a == b {
		t.Fatal("distinct statements share a SQL digest")
	}
	if len(a) != 16 || len(ShortDigest("x")) != 16 {
		t.Fatal("digests are not fixed-width")
	}
	if SQLDigest("SELECT 1") != a {
		t.Fatal("SQL digest not stable")
	}
}
