package feedback

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

func scanNode(name, loc string, rows int64) *plan.Node {
	t := schema.NewTable(name, "db-1", loc, rows,
		schema.Column{Name: "k", Type: expr.TInt})
	n := plan.NewScan(t, "", -1)
	n.Kind = plan.TableScan
	n.Card = float64(rows)
	return n
}

func mark(prof *obs.PlanProfile, n *plan.Node, rows, opens int64) {
	st := prof.Stats(n)
	st.Rows.Store(rows)
	st.Opens.Store(opens)
}

func TestRecordExecutionFeedsStore(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1})
	scan := scanNode("t", "L1", 100) // estimate 100
	prof := obs.NewPlanProfile()
	mark(prof, scan, 5000, 1) // actual 5000

	qerrs := RecordExecution(s, scan, prof)
	if len(qerrs) != 1 {
		t.Fatalf("qerrs = %d, want 1", len(qerrs))
	}
	if qerrs[0].QError != 50 || qerrs[0].Est != 100 || qerrs[0].Actual != 5000 {
		t.Fatalf("qerror record: %+v", qerrs[0])
	}
	hint, ok := s.CardHint(scan.SubplanDigest())
	if !ok || hint != 5000 {
		t.Fatalf("store hint = (%v, %v), want (5000, true)", hint, ok)
	}
}

func TestRecordExecutionShipTransparent(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1})
	scan := scanNode("t", "L1", 10)
	ship := &plan.Node{Kind: plan.Ship, Children: []*plan.Node{scan},
		Cols: scan.Cols, FromLoc: "L1", Loc: "L2"}
	prof := obs.NewPlanProfile()
	mark(prof, scan, 800, 1)
	mark(prof, ship, 800, 1)

	qerrs := RecordExecution(s, ship, prof)
	// Only the scan is recorded; the Ship has no digest of its own.
	if len(qerrs) != 1 || qerrs[0].Op != "Scan" {
		t.Fatalf("qerrs = %+v, want one Scan entry", qerrs)
	}
	if hint, ok := s.CardHint(scan.SubplanDigest()); !ok || hint != 800 {
		t.Fatalf("hint under ship = (%v, %v)", hint, ok)
	}
}

func TestRecordExecutionSkipsUnderLimit(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1})
	scan := scanNode("t", "L1", 10)
	limit := &plan.Node{Kind: plan.LimitExec, Children: []*plan.Node{scan},
		Cols: scan.Cols, LimitN: 5}
	limit.Card = 5
	prof := obs.NewPlanProfile()
	// Early termination: the scan produced only 5 of its true rows.
	mark(prof, scan, 5, 1)
	mark(prof, limit, 5, 1)

	qerrs := RecordExecution(s, limit, prof)
	// The limit node itself is recorded; the truncated scan is not.
	if len(qerrs) != 1 || qerrs[0].Op != "Limit" {
		t.Fatalf("qerrs = %+v, want one Limit entry", qerrs)
	}
	if _, ok := s.CardHint(scan.SubplanDigest()); ok {
		t.Fatal("truncated actual under Limit was recorded")
	}
}

func TestRecordExecutionNormalizesReopens(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1, ActivateQError: 1.5})
	scan := scanNode("t", "L1", 10)
	prof := obs.NewPlanProfile()
	// NL inner side: opened 4 times, 100 rows per open accumulated.
	mark(prof, scan, 400, 4)

	RecordExecution(s, scan, prof)
	if hint, ok := s.CardHint(scan.SubplanDigest()); !ok || hint != 100 {
		t.Fatalf("per-open actual = (%v, %v), want (100, true)", hint, ok)
	}
}

func TestRecordExecutionJoinCommute(t *testing.T) {
	s := NewStore(Options{EWMAAlpha: 1})
	l := scanNode("a", "L1", 10)
	r := scanNode("b", "L2", 10)
	join := plan.NewJoin(l, r, expr.NewCmp(expr.EQ,
		expr.NewCol("a", "k"), expr.NewCol("b", "k")))
	join.Kind = plan.HashJoin
	join.Card = 10
	prof := obs.NewPlanProfile()
	mark(prof, l, 10, 1)
	mark(prof, r, 10, 1)
	mark(prof, join, 2000, 1)

	RecordExecution(s, join, prof)
	// The executed child order and the commuted one both carry the hint,
	// so the memo finds it whichever join order phase-1 enumerates first.
	straight := join.SubplanDigest()
	commuted := plan.NewJoin(r.Clone(), l.Clone(), join.Pred)
	if _, ok := s.CardHint(straight); !ok {
		t.Fatal("no hint under executed child order")
	}
	if _, ok := s.CardHint(commuted.SubplanDigest()); !ok {
		t.Fatal("no hint under commuted child order")
	}
}

func TestRecordExecutionNeverExecutedAndNil(t *testing.T) {
	s := NewStore(Options{})
	scan := scanNode("t", "L1", 10)
	prof := obs.NewPlanProfile() // no stats: operator never opened
	if qerrs := RecordExecution(s, scan, prof); len(qerrs) != 0 {
		t.Fatalf("never-executed operator reported: %+v", qerrs)
	}
	if RecordExecution(s, scan, nil) != nil {
		t.Fatal("nil profile not ignored")
	}
	if RecordExecution(nil, scan, prof) != nil {
		t.Fatal("nil store with empty profile returned qerrors")
	}
	// Nil store still computes q-errors for slow-log-only mode.
	mark(prof, scan, 500, 1)
	if qerrs := RecordExecution(nil, scan, prof); len(qerrs) != 1 {
		t.Fatalf("slow-log-only mode broken: %+v", qerrs)
	}
}
