package cgdqp_test

import (
	"fmt"

	"cgdqp"
)

// Example shows the minimal compliant-query workflow: define tables in
// two jurisdictions, declare a dataflow policy, load rows and query.
func Example() {
	sys := cgdqp.NewSystem()
	sys.MustDefineTable("patients", "db-eu", "EU", 3,
		cgdqp.Col("id", cgdqp.TInt),
		cgdqp.Col("name", cgdqp.TString))
	sys.MustDefineTable("visits", "db-us", "US", 4,
		cgdqp.Col("patient_id", cgdqp.TInt),
		cgdqp.Col("cost", cgdqp.TFloat))
	// Ids may cross the Atlantic; names may not. Visits stay in the US.
	sys.MustAddPolicy("ship id from patients to US")

	sys.MustLoad("patients", []cgdqp.Row{
		{cgdqp.Int(1), cgdqp.String("ada")},
		{cgdqp.Int(2), cgdqp.String("grace")},
		{cgdqp.Int(3), cgdqp.String("alan")},
	})
	sys.MustLoad("visits", []cgdqp.Row{
		{cgdqp.Int(1), cgdqp.Float(10)},
		{cgdqp.Int(1), cgdqp.Float(20)},
		{cgdqp.Int(2), cgdqp.Float(5)},
		{cgdqp.Int(3), cgdqp.Float(7)},
	})

	res, err := sys.Query(`
		SELECT p.id, SUM(v.cost) AS total
		FROM patients p, visits v
		WHERE p.id = v.patient_id
		GROUP BY p.id
		ORDER BY p.id`)
	if err != nil {
		panic(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("patient %d: %.0f\n", r[0].Int(), r[1].Float())
	}
	// Names must not meet visit data anywhere:
	_, err = sys.Query(`SELECT p.name, v.cost FROM patients p, visits v WHERE p.id = v.patient_id`)
	fmt.Println("name export rejected:", err != nil)
	// Output:
	// patient 1: 30
	// patient 2: 5
	// patient 3: 7
	// name export rejected: true
}

// ExampleSystem_Legal demonstrates the legality gate of Figure 2.
func ExampleSystem_Legal() {
	sys := cgdqp.NewSystem()
	sys.MustDefineTable("t", "db-a", "A", 1, cgdqp.Col("x", cgdqp.TInt), cgdqp.Col("secret", cgdqp.TString))
	sys.MustDefineTable("u", "db-b", "B", 1, cgdqp.Col("x", cgdqp.TInt))
	// Only t's x column may travel (to B); u never leaves B, and t's
	// secret never leaves A.
	sys.MustAddPolicy("ship x from t to B")

	ok, _ := sys.Legal("SELECT t.x, u.x FROM t, u WHERE t.x = u.x")
	fmt.Println("join on x:", ok)
	ok, _ = sys.Legal("SELECT t.secret, u.x FROM t, u WHERE t.x = u.x")
	fmt.Println("export secret:", ok)
	// Output:
	// join on x: true
	// export secret: false
}

// ExampleSystem_EvaluatePolicies runs the paper's policy evaluation
// algorithm 𝒜 on local views of one database.
func ExampleSystem_EvaluatePolicies() {
	sys := cgdqp.NewSystem()
	sys.MustDefineTable("customer", "db-n", "N", 1,
		cgdqp.Col("custkey", cgdqp.TInt),
		cgdqp.Col("name", cgdqp.TString),
		cgdqp.Col("acctbal", cgdqp.TFloat))
	sys.MustDefineTable("remote", "db-e", "E", 1, cgdqp.Col("k", cgdqp.TInt))
	sys.MustAddPolicy("ship custkey, name from customer to E")
	sys.MustAddPolicy("ship acctbal as aggregates sum, avg from customer to * group by name")

	locs, _ := sys.EvaluatePolicies("SELECT c.custkey, c.name FROM customer c")
	fmt.Println("masked view:", locs)
	locs, _ = sys.EvaluatePolicies("SELECT c.acctbal FROM customer c")
	fmt.Println("raw balances:", locs)
	locs, _ = sys.EvaluatePolicies("SELECT c.name, AVG(c.acctbal) AS a FROM customer c GROUP BY c.name")
	fmt.Println("aggregated balances:", locs)
	// Output:
	// masked view: [E N]
	// raw balances: [N]
	// aggregated balances: [E N]
}
