package cgdqp

import (
	"bytes"
	"strings"
	"testing"
)

// TestSystemObservabilityEndToEnd drives one query through a fully
// observed system and checks every promised signal surfaces: lifecycle
// spans, the metric families of the acceptance criteria, and audit
// records carrying the shipping-trait justification.
func TestSystemObservabilityEndToEnd(t *testing.T) {
	sys := demoSystemWith(t, Options{Trace: true, Metrics: true, Audit: true})
	res, err := sys.Query(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShippedBytes == 0 {
		t.Fatal("demo query should ship across borders")
	}

	names := map[string]bool{}
	for _, s := range sys.Tracer().Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"sql.parse_bind", "optimize", "optimize.site_select",
		"execute.sequential", "ship.whole"} {
		if !names[want] {
			t.Fatalf("missing %q span; got %v", want, names)
		}
	}

	var buf bytes.Buffer
	if err := sys.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`cgdqp_queries_total{status="ok"} 1`,
		`cgdqp_executions_total{engine="seq",status="ok"} 1`,
		"cgdqp_ship_rows_total{",
		"cgdqp_ship_bytes_total{",
		"cgdqp_plan_cache_misses 1",
		"cgdqp_policy_eval_calls",
		"cgdqp_optimize_seconds_count 1",
		`cgdqp_execute_seconds_count{engine="seq"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics export missing %q:\n%s", want, text)
		}
	}

	recs := sys.AuditLog().Records()
	if len(recs) == 0 {
		t.Fatal("audit log empty after cross-border query")
	}
	for _, r := range recs {
		if r.From == "" || r.To == "" || r.Rows <= 0 {
			t.Fatalf("malformed audit record: %+v", r)
		}
		if !strings.HasPrefix(r.Justification, "ship-trait ") ||
			!strings.Contains(r.Justification, "permits "+r.To) {
			t.Fatalf("compliant plan should justify by shipping trait: %+v", r)
		}
		if len(r.Relations) == 0 || len(r.Columns) == 0 {
			t.Fatalf("audit record missing provenance: %+v", r)
		}
	}
}

// TestSystemExplainAnalyze: the annotated plan carries per-operator
// actuals and the result still matches a plain Query.
func TestSystemExplainAnalyze(t *testing.T) {
	sys := demoSystem(t) // observability off: profiling must still work
	res, annotated, err := sys.ExplainAnalyze(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(annotated, "actual rows=") {
		t.Fatalf("no actuals in annotated plan:\n%s", annotated)
	}
	if strings.Contains(annotated, "(never executed)") {
		t.Fatalf("all operators should run for this query:\n%s", annotated)
	}
	plain, err := sys.Query(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != len(res.Rows) {
		t.Fatalf("ExplainAnalyze rows %d != Query rows %d", len(res.Rows), len(plain.Rows))
	}
}

// TestSystemAuditReplayDeterministic: two systems configured with the
// same chaos seed must render byte-identical audit logs — the log never
// leaks retry timing or goroutine interleaving.
func TestSystemAuditReplayDeterministic(t *testing.T) {
	run := func() string {
		sys := demoSystemWith(t, Options{
			Audit:    true,
			Parallel: true,
			Faults: NewFaultPlan(99).SetDefault(EdgeFaults{
				DropProb:      0.10,
				TransientProb: 0.10,
			}),
		})
		if _, err := sys.Query(demoQuery); err != nil {
			t.Fatalf("chaos query: %v", err)
		}
		return sys.AuditLog().String()
	}
	first := run()
	if first == "" {
		t.Fatal("audit log empty")
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestPlanCacheStatsDisabled covers both cache configurations of the
// facade: the default cache records hits, and a disabled cache
// (PlanCacheSize < 0) keeps PlanCacheStats safe to call, returning the
// zero value.
func TestPlanCacheStatsDisabled(t *testing.T) {
	cached := demoSystemWith(t, Options{}) // PlanCacheSize 0 → default cache
	for i := 0; i < 2; i++ {
		if _, err := cached.Query(demoQuery); err != nil {
			t.Fatal(err)
		}
	}
	if st := cached.PlanCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("default cache stats = %+v, want 1 hit / 1 miss", st)
	}

	off := demoSystemWith(t, Options{PlanCacheSize: -1})
	for i := 0; i < 2; i++ {
		if _, err := off.Query(demoQuery); err != nil {
			t.Fatal(err)
		}
	}
	if st := off.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("disabled cache should report the zero value, got %+v", st)
	}
}
