package cgdqp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// demoSystem builds the CarCo scenario of the paper's Section 2 through
// the public API.
func demoSystem(t *testing.T) *System { return demoSystemWith(t, Options{}) }

func demoSystemWith(t *testing.T, opts Options) *System {
	t.Helper()
	sys := NewSystemWith(opts)
	sys.MustDefineTable("Customer", "db-n", "NorthAmerica", 40,
		Col("custkey", TInt), Col("name", TString), Col("acctbal", TFloat))
	sys.MustDefineTable("Orders", "db-e", "Europe", 120,
		Col("custkey", TInt), Col("ordkey", TInt), Col("totprice", TFloat))
	sys.MustDefineTable("Supply", "db-a", "Asia", 360,
		Col("ordkey", TInt), Col("quantity", TInt))
	sys.MustAddPolicy("ship custkey, name from Customer to *")
	sys.MustAddPolicy("ship custkey, ordkey from Orders to *")
	sys.MustAddPolicy("ship totprice as aggregates sum from Orders to Asia group by custkey, ordkey")
	sys.MustAddPolicy("ship quantity as aggregates sum from Supply to Europe group by ordkey")

	var cRows, oRows, sRows []Row
	for i := 0; i < 40; i++ {
		cRows = append(cRows, Row{Int(int64(i)), String(fmt.Sprintf("cust-%02d", i)), Float(float64(i))})
	}
	for i := 0; i < 120; i++ {
		oRows = append(oRows, Row{Int(int64(i % 40)), Int(int64(i)), Float(float64(10 + i))})
	}
	for i := 0; i < 360; i++ {
		sRows = append(sRows, Row{Int(int64(i % 120)), Int(int64(1 + i%5))})
	}
	sys.MustLoad("Customer", cRows)
	sys.MustLoad("Orders", oRows)
	sys.MustLoad("Supply", sRows)
	return sys
}

const demoQuery = `
	SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
	FROM Customer C, Orders O, Supply S
	WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
	GROUP BY C.name`

func TestSystemEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Errorf("rows: %d", len(res.Rows))
	}
	if len(res.Columns) != 3 || res.Columns[0] != "name" || res.Columns[1] != "total" {
		t.Errorf("columns: %v", res.Columns)
	}
	if res.ShipCost <= 0 || res.ShippedBytes <= 0 {
		t.Errorf("shipping accounting: %+v", res)
	}
	// The produced plan is compliant.
	if v := sys.CheckCompliance(res.Plan); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	// Verify one aggregate value: customer i owns orders i, i+40, i+80;
	// each order o has supplies o and o+120... quantity dependent; just
	// verify total for customer 0: orders 0, 40, 80 → 10+0, 10+40, 10+80;
	// each order matches 3 supply rows.
	for _, r := range res.Rows {
		if r[0].Str() == "cust-00" {
			want := float64((10 + 50 + 90) * 3)
			if r[1].Float() != want {
				t.Errorf("total for cust-00: %v, want %v", r[1], want)
			}
		}
	}
}

func TestSystemExplainAndLegality(t *testing.T) {
	sys := demoSystem(t)
	p, err := sys.Explain(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "Ship[") {
		t.Errorf("plan should ship data:\n%s", p)
	}
	ok, err := sys.Legal(demoQuery)
	if err != nil || !ok {
		t.Errorf("legal: %v %v", ok, err)
	}
	// Raw acctbal cannot leave North America and Orders cannot reach it.
	ok, err = sys.Legal("SELECT C.acctbal, O.totprice FROM Customer C, Orders O WHERE C.custkey = O.custkey")
	if err != nil || ok {
		t.Errorf("illegal query: ok=%v err=%v", ok, err)
	}
	if _, err := sys.Query("SELECT C.acctbal, O.totprice FROM Customer C, Orders O WHERE C.custkey = O.custkey"); !errors.Is(err, ErrNoCompliantPlan) {
		t.Errorf("query should be rejected, got %v", err)
	}
	// Syntax errors surface as real errors, not legality verdicts.
	if _, err := sys.Legal("SELECT FROM"); err == nil {
		t.Error("syntax error should propagate")
	}
}

func TestSystemEvaluatePolicies(t *testing.T) {
	sys := demoSystem(t)
	locs, err := sys.EvaluatePolicies("SELECT C.custkey, C.name FROM Customer C")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 { // home + everywhere via the policy
		t.Errorf("𝒜 = %v", locs)
	}
	locs, err = sys.EvaluatePolicies("SELECT C.acctbal FROM Customer C")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 1 || locs[0] != "NorthAmerica" {
		t.Errorf("acctbal 𝒜 = %v", locs)
	}
	// Cross-database queries are not local.
	if _, err := sys.EvaluatePolicies("SELECT C.name FROM Customer C, Orders O WHERE C.custkey = O.custkey"); err == nil {
		t.Error("cross-database query should not evaluate")
	}
}

func TestSystemResultLocationOption(t *testing.T) {
	sys := demoSystem(t)
	// Rebuild with a pinned result location.
	sys2 := NewSystemWith(Options{ResultLocation: "Europe"})
	sys2.Schema = sys.Schema
	sys2.Policies = sys.Policies
	p, err := sys2.Explain(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Loc != "Europe" {
		t.Errorf("result location: %s", p.Root.Loc)
	}
}

func TestSystemErrors(t *testing.T) {
	sys := NewSystem()
	if err := sys.AddPolicy("ship a from ghost to *"); err == nil {
		t.Error("policy over unknown table must fail")
	}
	if err := sys.AddPolicy("not a policy"); err == nil {
		t.Error("unparsable policy must fail")
	}
	if err := sys.Load("ghost", nil); err == nil {
		t.Error("loading unknown table must fail")
	}
	if err := sys.SetColumnStats("ghost", "x", 1, Null(), Null()); err == nil {
		t.Error("stats on unknown table must fail")
	}
	sys.MustDefineTable("t", "db", "L", 1, Col("a", TInt))
	if err := sys.DefineTable("t", "db", "L", 1, Col("a", TInt)); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := sys.SetColumnStats("t", "a", 5, Int(0), Int(4)); err != nil {
		t.Errorf("stats: %v", err)
	}
}

func TestFragmentedSystem(t *testing.T) {
	sys := NewSystem()
	if err := sys.DefineFragmentedTable("Sales",
		[]Column{Col("region", TString), Col("amt", TFloat)},
		[]Fragment{
			{DB: "db-w", Location: "West", RowCount: 2},
			{DB: "db-e", Location: "East", RowCount: 2},
		}); err != nil {
		t.Fatal(err)
	}
	sys.MustAddPolicy("ship region, amt from db-w.Sales to East")
	sys.MustAddPolicy("ship region, amt from db-e.Sales to East")
	if err := sys.LoadFragment("Sales", 0, []Row{{String("w"), Float(1)}, {String("w"), Float(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadFragment("Sales", 1, []Row{{String("e"), Float(3)}, {String("e"), Float(4)}}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT SUM(amt) AS total FROM Sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 10 {
		t.Errorf("fragmented sum: %v", res.Rows)
	}
}
