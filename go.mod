module cgdqp

go 1.22
