package cgdqp

import (
	"os"
	"path/filepath"
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// TestPlanCacheParity checks the whole-plan cache against the golden
// snapshots: for every TPC-H evaluation query, a warm cache hit must
// render the byte-identical plan the cold optimization produced (and
// that testdata/plans records), a policy-epoch bump must invalidate the
// entry, and mutating a returned plan must not corrupt the cached copy.
func TestPlanCacheParity(t *testing.T) {
	cat := tpch.NewCatalog(0.01)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCR)
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true, PlanCacheSize: 16})

	for _, name := range tpch.QueryNames() {
		sql := tpch.Queries[name]

		cold, err := opt.OptimizeSQL(sql)
		if err != nil {
			t.Fatalf("%s: cold optimize: %v", name, err)
		}
		if cold.Stats.PlanCacheHit {
			t.Fatalf("%s: first optimization reported a plan-cache hit", name)
		}
		coldPlan := cold.Plan.Format(true)

		warm, err := opt.OptimizeSQL(sql)
		if err != nil {
			t.Fatalf("%s: warm optimize: %v", name, err)
		}
		if !warm.Stats.PlanCacheHit {
			t.Fatalf("%s: second optimization missed the plan cache", name)
		}
		warmPlan := warm.Plan.Format(true)
		if warmPlan != coldPlan {
			t.Errorf("%s: warm plan differs from cold plan:\n--- warm ---\n%s\n--- cold ---\n%s",
				name, warmPlan, coldPlan)
		}
		golden, err := os.ReadFile(filepath.Join("testdata", "plans", name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if warmPlan != string(golden) {
			t.Errorf("%s: warm plan differs from golden snapshot", name)
		}
		if warm.ShipCost != cold.ShipCost || warm.PlanCost != cold.PlanCost {
			t.Errorf("%s: cached costs drifted: ship %v vs %v, plan %v vs %v",
				name, warm.ShipCost, cold.ShipCost, warm.PlanCost, cold.PlanCost)
		}

		// Results are deep clones: scribbling on one must not leak into
		// the cache.
		warm.Plan.Loc = "CORRUPTED"
		warm.Plan.Children = nil
		again, err := opt.OptimizeSQL(sql)
		if err != nil {
			t.Fatalf("%s: re-fetch: %v", name, err)
		}
		if !again.Stats.PlanCacheHit {
			t.Fatalf("%s: re-fetch missed the plan cache", name)
		}
		if got := again.Plan.Format(true); got != coldPlan {
			t.Errorf("%s: cached plan corrupted by caller mutation:\n%s", name, got)
		}
	}

	// A policy change bumps the evaluator epoch; every cached plan keyed
	// on the old epoch must be invisible afterwards.
	opt.Evaluator.ResetCache()
	for _, name := range tpch.QueryNames() {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: post-epoch optimize: %v", name, err)
		}
		if res.Stats.PlanCacheHit {
			t.Errorf("%s: plan-cache hit across a policy-epoch bump", name)
		}
	}
}
