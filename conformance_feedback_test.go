package cgdqp

// Conformance of the feedback loop: enabling telemetry must never
// change what a query returns. Plans may legally change across
// executions (that is the point of cardinality feedback), so rows are
// compared as sorted multisets against a feedback-free reference rather
// than byte-for-byte with shipping statistics. Under chaos, failures
// must still surface as typed *network.ShipError.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/tpch"
)

func sortedRows(rows []Row) []string {
	s := renderRows(rows)
	sort.Strings(s)
	return s
}

// newFeedbackConformSystem is newConformSystem with the full telemetry
// stack on: feedback store, slow-query log (zero threshold, discarded),
// and auto-applied wire calibration.
func newFeedbackConformSystem(t *testing.T, parallel, interp bool) *System {
	t.Helper()
	sys := NewSystemWith(Options{
		Parallel:        parallel,
		NoVectorKernels: interp,
		Feedback:        true,
		SlowQueryLog:    io.Discard,
	})
	sys.Schema = tpch.NewCatalog(0.001)
	for _, tab := range sys.Schema.Tables() {
		sys.MustAddPolicy("ship * from " + tab.Name + " to *")
	}
	if err := tpch.Generate(sys.Schema, sys.Cluster()); err != nil {
		t.Fatal(err)
	}
	sys.EnableAutoCalibration(1)
	return sys
}

// TestConformanceFeedbackParity runs every golden TPC-H query twice per
// engine × expression-path cell with the feedback loop fully armed. The
// second run executes after the first has recorded actuals (and
// possibly bumped the feedback epoch, re-optimizing the plan); both
// must return the reference row multiset. Chaos seeds additionally pin
// the typed-error contract with telemetry on.
func TestConformanceFeedbackParity(t *testing.T) {
	names := tpch.QueryNames()

	// Reference: feedback-free sequential interpreter, fault-free.
	ref := newConformSystem(t, false, true, false)
	goldens := map[string][]string{}
	for _, name := range names {
		out := runConform(t, "reference/"+name, ref, tpch.Queries[name])
		if out.err != nil {
			t.Fatalf("reference %s: %v", name, out.err)
		}
		goldens[name] = sortedRows(out.res.Rows)
	}

	seeds := []int64{0, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	retry := network.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}

	compared, replans := 0, 0
	for _, parallel := range []bool{false, true} {
		for _, interp := range []bool{false, true} {
			sys := newFeedbackConformSystem(t, parallel, interp)
			cl := sys.Cluster()
			for _, seed := range seeds {
				if seed == 0 {
					cl.SetFaults(nil)
				} else {
					cl.SetFaults(NewFaultPlan(seed).SetDefault(EdgeFaults{
						DropProb:      0.08,
						TransientProb: 0.05,
					}))
					cl.SetRetry(retry)
				}
				for _, name := range names {
					label := fmt.Sprintf("par=%v interp=%v seed=%d %s", parallel, interp, seed, name)
					epochBefore := sys.Feedback().Epoch()
					for run := 0; run < 2; run++ {
						out := runConform(t, fmt.Sprintf("%s run=%d", label, run), sys, tpch.Queries[name])
						if out.err != nil {
							var se *network.ShipError
							if !errors.As(out.err, &se) {
								t.Fatalf("%s run=%d: untyped error: %v", label, run, out.err)
							}
							continue
						}
						got := sortedRows(out.res.Rows)
						want := goldens[name]
						if len(got) != len(want) {
							t.Fatalf("%s run=%d: %d rows, want %d", label, run, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s run=%d: row %d differs:\ngot  %s\nwant %s",
									label, run, i, got[i], want[i])
							}
						}
						compared++
					}
					if sys.Feedback().Epoch() != epochBefore {
						replans++
					}
				}
			}
			cl.SetFaults(nil)

			sum := sys.Feedback().Summary()
			if sum.Tracked == 0 || sum.Queries == 0 {
				t.Fatalf("par=%v interp=%v: telemetry recorded nothing: %+v", parallel, interp, sum)
			}
		}
	}
	if compared == 0 {
		t.Error("no run exercised the feedback parity comparison")
	}
	if replans == 0 {
		t.Error("no query ever bumped the feedback epoch; the loop was never stressed")
	}
	t.Logf("feedback parity: %d compared runs, %d epoch-bumping queries", compared, replans)
}
