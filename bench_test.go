package cgdqp

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (Section 7). Each benchmark prints the reproduced
// panel once (so `go test -bench=. -benchmem` doubles as the experiment
// report) and then measures the underlying workload. EXPERIMENTS.md
// records paper-vs-measured shapes.

import (
	"fmt"
	"sync"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/experiments"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

var benchCfg = experiments.Config{SF: 0.01, ExecSF: 0.002, Repetitions: 1, Seed: 42}

// printOnce guards each panel so repeated benchmark iterations do not
// spam the output.
var printOnce sync.Map

func reportOnce(b *testing.B, key, panel string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done {
		fmt.Println(panel)
	}
}

// BenchmarkTable1PolicyEvaluation reproduces the Section 5 / Table 1
// policy-evaluation walk-through and measures evaluator throughput.
func BenchmarkTable1PolicyEvaluation(b *testing.B) {
	reportOnce(b, "table1", experiments.RenderTable1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1Evaluation()
		if rows[0].Result != "{l3}" {
			b.Fatalf("unexpected 𝒜(q1) = %s", rows[0].Result)
		}
	}
}

// BenchmarkFig5aTraditionalCompliance reproduces Figure 5(a): the
// compliance matrix of the traditional optimizer across the six TPC-H
// queries and four expression sets.
func BenchmarkFig5aTraditionalCompliance(b *testing.B) {
	cells, err := experiments.Fig5aEffectiveness(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig5a", experiments.RenderFig5a(cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5aEffectiveness(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5PlanExcerpts reproduces Figures 5(b)–(e): the Q2/Q3 plan
// excerpts, traditional vs compliant.
func BenchmarkFig5PlanExcerpts(b *testing.B) {
	out, err := experiments.Fig5PlanExcerpts(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig5be", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5PlanExcerpts(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aAdhocEffectiveness reproduces Figure 6(a): 400 ad-hoc
// queries split over the four expression sets (100 per set under -bench
// defaults; scale with -benchtime as desired).
func BenchmarkFig6aAdhocEffectiveness(b *testing.B) {
	rows, err := experiments.Fig6aAdhocEffectiveness(benchCfg, 100)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig6a", experiments.RenderFig6a(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6aAdhocEffectiveness(benchCfg, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6bMinimalOverhead reproduces Figure 6(b): optimization
// time under unrestricted policies — the framework's fixed overhead.
func BenchmarkFig6bMinimalOverhead(b *testing.B) {
	rows, err := experiments.Fig6bMinimalOverhead(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig6b", experiments.RenderOptTimes("Figure 6(b): minimal overhead (ship * from t to *)", rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6bMinimalOverhead(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOptTime(b *testing.B, set workload.SetName, figure string) {
	rows, err := experiments.Fig6OptTime(benchCfg, set)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, figure, experiments.RenderOptTimes(
		fmt.Sprintf("Figure %s: optimization time under set %s", figure, set), rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6OptTime(benchCfg, set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6cOptTimeT reproduces Figure 6(c) (set T).
func BenchmarkFig6cOptTimeT(b *testing.B) { benchOptTime(b, workload.SetT, "6(c)") }

// BenchmarkFig6dOptTimeC reproduces Figure 6(d) (set C).
func BenchmarkFig6dOptTimeC(b *testing.B) { benchOptTime(b, workload.SetC, "6(d)") }

// BenchmarkFig6eOptTimeCR reproduces Figure 6(e) (set CR).
func BenchmarkFig6eOptTimeCR(b *testing.B) { benchOptTime(b, workload.SetCR, "6(e)") }

// BenchmarkFig6fOptTimeCRA reproduces Figure 6(f) (set CR+A).
func BenchmarkFig6fOptTimeCRA(b *testing.B) { benchOptTime(b, workload.SetCRA, "6(f)") }

// BenchmarkFig6gQualityC reproduces Figure 6(g): scaled execution cost
// under set C (plans are executed over generated data; SHIP operators
// are priced by the message cost model).
func BenchmarkFig6gQualityC(b *testing.B) {
	rows, err := experiments.Fig6Quality(benchCfg, workload.SetC)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig6g", experiments.RenderQuality("Figure 6(g): scaled execution cost under C", rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Quality(benchCfg, workload.SetC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6hQualityCR reproduces Figure 6(h): scaled execution cost
// under set CR, including the Q2 overhead case (shipping the bigger
// compliant side instead of the restricted Part table).
func BenchmarkFig6hQualityCR(b *testing.B) {
	rows, err := experiments.Fig6Quality(benchCfg, workload.SetCR)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig6h", experiments.RenderQuality("Figure 6(h): scaled execution cost under CR", rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Quality(benchCfg, workload.SetCR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ScalabilityExpressions reproduces Figures 7(a)–(c):
// optimization time and η for Q2/Q3/Q10 under CR+A sets of 12–100
// expressions.
func BenchmarkFig7ScalabilityExpressions(b *testing.B) {
	rows, err := experiments.Fig7Expressions(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig7abc", experiments.RenderFig7(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Expressions(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7deTableLocations reproduces Figures 7(d)/(e): Customer
// and Orders fragmented over 1–5 locations (union rewrite).
func BenchmarkFig7deTableLocations(b *testing.B) {
	rows, err := experiments.Fig7deTableLocations(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig7de", experiments.RenderFig7de(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7deTableLocations(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LocationsPerExpression reproduces Figure 8: the impact of
// the number of `to` locations per policy expression (3–20 over a
// 20-location deployment).
func BenchmarkFig8LocationsPerExpression(b *testing.B) {
	rows, err := experiments.Fig8Locations(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "fig8", experiments.RenderFig8(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Locations(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (DESIGN.md "Design choices") --------------------

func ablationOptimizer(opts optimizer.Options) (*optimizer.Optimizer, string) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	opts.Compliant = true
	// Deliver results at L1 (the customer/orders site): under CR+A only
	// aggregated lineitem data may reach L1, so the Figure 5(e) rewrite
	// is mandatory.
	opts.ResultLocation = "L1"
	return optimizer.New(cat, pc, net, opts), tpch.Queries["Q3"]
}

// carcoAblation builds the Section 2 scenario with the result pinned to
// Asia: delivering there needs a costlier orders-aggregation alternative
// that a single-best memo (MaxAlts=1) prunes away.
func carcoAblation(opts optimizer.Options) (*optimizer.Optimizer, string) {
	cat := schemaCarCo()
	net := network.FiveRegionWAN(cat.Locations())
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship custkey, name, mktseg, region from Customer to *", "pn", "db-n"),
		policy.MustParse("ship custkey, ordkey from Orders to *", "pe1", "db-e"),
		policy.MustParse("ship totprice as aggregates sum from Orders to A group by custkey, ordkey", "pe2", "db-e"),
		policy.MustParse("ship quantity, extprice as aggregates sum from Supply to E group by ordkey", "pa", "db-a"),
	)
	opts.Compliant = true
	opts.ResultLocation = "A"
	q := `SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
	      FROM Customer C, Orders O, Supply S
	      WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
	      GROUP BY C.name`
	return optimizer.New(cat, pc, net, opts), q
}

func schemaCarCo() *schema.Catalog {
	cat := schema.NewCatalog()
	c := schema.NewTable("Customer", "db-n", "N", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktseg", Type: expr.TString},
		schema.Column{Name: "region", Type: expr.TString})
	c.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	o := schema.NewTable("Orders", "db-e", "E", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat})
	o.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	o.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	sp := schema.NewTable("Supply", "db-a", "A", 40000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extprice", Type: expr.TFloat})
	sp.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	cat.MustAddTable(c)
	cat.MustAddTable(o)
	cat.MustAddTable(sp)
	return cat
}

// BenchmarkAblationTraitSubsets compares the default Pareto width
// (MaxAlts=12) against a single-best memo (MaxAlts=1): collapsing the
// trait subsets loses the costlier-but-wider-shipping alternatives that
// deliver the CarCo result in Asia, so the query is (incorrectly)
// rejected.
func BenchmarkAblationTraitSubsets(b *testing.B) {
	for _, alts := range []int{1, 4, 12} {
		b.Run(fmt.Sprintf("maxAlts=%d", alts), func(b *testing.B) {
			opt, q := carcoAblation(optimizer.Options{MaxAlts: alts})
			found := 0
			for i := 0; i < b.N; i++ {
				if _, err := opt.OptimizeSQL(q); err == nil {
					found++
				}
			}
			b.ReportMetric(float64(found)/float64(b.N), "plans/op")
		})
	}
}

// BenchmarkAblationAggPushdown measures the cost and necessity of the
// aggregation-pushdown rule: without it Q3 under CR+A is rejected
// (Section 6.4's completeness discussion).
func BenchmarkAblationAggPushdown(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		b.Run(fmt.Sprintf("disabled=%v", disabled), func(b *testing.B) {
			opt, q := ablationOptimizer(optimizer.Options{DisableAggPushdown: disabled})
			found := 0
			for i := 0; i < b.N; i++ {
				if _, err := opt.OptimizeSQL(q); err == nil {
					found++
				}
			}
			b.ReportMetric(float64(found)/float64(b.N), "plans/op")
		})
	}
}

// BenchmarkAblationSiteSelector compares Algorithm 2's dynamic
// programming against a greedy placement where placement freedom is
// maximal (no compliance constraints narrow the execution traits); the
// metric is the summed estimated communication cost over the six TPC-H
// queries. Greedy placement pays ~25% more on the multi-join queries
// (Q2, Q5, Q9).
func BenchmarkAblationSiteSelector(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetT)
	for _, greedy := range []bool{false, true} {
		name := "algorithm2"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = 0
				opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false, GreedySiteSelection: greedy})
				for _, qn := range tpch.QueryNames() {
					res, err := opt.OptimizeSQL(tpch.Queries[qn])
					if err != nil {
						b.Fatal(err)
					}
					total += optimizer.ShippingCost(res.Plan, net)
				}
			}
			b.ReportMetric(total, "shipms/op")
		})
	}
}

// BenchmarkAblationImplication compares the full range-subsumption
// implication test against the syntactic-equality-only variant. The
// scenario: lineitem rows may reach L1 only when shipdate > 1995-01-01,
// and Q3 (whose predicate shipdate > 1995-03-15 IMPLIES the grant, but
// not syntactically) must deliver its result at L1. The full test finds
// the plan; the syntactic variant soundly-but-incompletely rejects it.
func BenchmarkAblationImplication(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship * from db-5.region to *", "i1", ""),
		policy.MustParse("ship * from db-5.nation to *", "i2", ""),
		policy.MustParse("ship * from db-1.customer to *", "i3", ""),
		policy.MustParse("ship * from db-1.orders to *", "i4", ""),
		policy.MustParse("ship orderkey, extendedprice, discount, shipdate from db-4.lineitem to L1 where shipdate > DATE '1995-01-01'", "i5", ""),
	)
	for _, mode := range []struct {
		name string
		mode expr.ImplicationMode
	}{{"full", expr.ImplicationFull}, {"syntactic", expr.ImplicationSyntactic}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := optimizer.New(cat, pc, net, optimizer.Options{
					Compliant:       true,
					ImplicationMode: mode.mode,
					ResultLocation:  "L1",
				})
				found := 0.0
				if _, err := opt.OptimizeSQL(tpch.Queries["Q3"]); err == nil {
					found = 1
				}
				b.ReportMetric(found, "plans/op")
			}
		})
	}
}

// --- execution engine benchmarks -----------------------------------------

// seqVsParFixture builds a three-site cluster (coordinator N, Customer
// at E, Orders and Supply at A) with generated data and a TPC-H-shaped
// join+aggregation plan whose three SHIP boundaries yield three
// independent leaf fragments, all shipping into N.
func seqVsParFixture(b testing.TB) (*cluster.Cluster, *plan.Node) {
	b.Helper()
	cat := schema.NewCatalog()
	cTab := schema.NewTable("Customer", "db-e", "E", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString})
	cTab.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	oTab := schema.NewTable("Orders", "db-a", "A", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat})
	oTab.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	sTab := schema.NewTable("Supply", "db-a2", "A", 20000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt})
	sTab.SetColStats("ordkey", schema.ColStats{Distinct: 10000})
	cat.MustAddTable(cTab)
	cat.MustAddTable(oTab)
	cat.MustAddTable(sTab)
	// A coordinator-only site N must exist in the cost model; register it
	// through a placeholder table's location.
	nTab := schema.NewTable("Coord", "db-n", "N", 0,
		schema.Column{Name: "x", Type: expr.TInt})
	cat.MustAddTable(nTab)

	// Flat WAN: every inter-site hop costs 100ms start-up plus a small
	// per-byte charge. SetWireDelay(1) turns that accounted cost into
	// simulated wall-clock wire time.
	cl := cluster.New(cat, network.UniformWAN(100, 0.00001))
	cl.SetWireDelay(1)

	var cRows, oRows, sRows []expr.Row
	for i := 0; i < 1000; i++ {
		cRows = append(cRows, expr.Row{
			expr.NewInt(int64(i)), expr.NewString(fmt.Sprintf("cust-%04d", i))})
	}
	for i := 0; i < 10000; i++ {
		oRows = append(oRows, expr.Row{
			expr.NewInt(int64(i % 1000)), expr.NewInt(int64(i)), expr.NewFloat(float64(100 + i%97))})
	}
	for i := 0; i < 20000; i++ {
		sRows = append(sRows, expr.Row{
			expr.NewInt(int64(i % 10000)), expr.NewInt(int64(1 + i%7))})
	}
	for _, load := range []struct {
		t    *schema.Table
		rows []expr.Row
	}{{cTab, cRows}, {oTab, oRows}, {sTab, sRows}} {
		if err := cl.LoadFragment(load.t, 0, load.rows); err != nil {
			b.Fatal(err)
		}
	}

	// Three leaf producers ship into the coordinator: Customer from E,
	// filtered Orders detail from A, and the Supply aggregate from A. N
	// joins and aggregates locally.
	shipC := plan.NewShip(plan.NewScan(cTab, "C", -1), "E", "N")
	oFil := plan.NewFilter(plan.NewScan(oTab, "O", -1),
		expr.NewCmp(expr.GE, expr.NewCol("O", "totprice"), expr.NewConst(expr.NewFloat(100))))
	shipO := plan.NewShip(oFil, "A", "N")
	sAgg := plan.NewAggregate(plan.NewScan(sTab, "S", -1),
		[]*expr.Col{expr.NewCol("S", "ordkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("S", "quantity"), Name: "quantity"}})
	sAgg.Kind = plan.HashAgg
	shipS := plan.NewShip(sAgg, "A", "N")

	join1 := plan.NewJoin(shipO, shipC,
		expr.NewCmp(expr.EQ, expr.NewCol("O", "custkey"), expr.NewCol("C", "custkey")))
	join1.Kind = plan.HashJoin
	join2 := plan.NewJoin(join1, shipS,
		expr.NewCmp(expr.EQ, expr.NewCol("O", "ordkey"), expr.NewCol("S", "ordkey")))
	join2.Kind = plan.HashJoin
	root := plan.NewAggregate(join2,
		[]*expr.Col{expr.NewCol("C", "name")},
		[]plan.NamedAgg{
			{Fn: expr.AggSum, Arg: expr.NewCol("O", "totprice"), Name: "total"},
			{Fn: expr.AggSum, Arg: expr.NewCol("", "quantity"), Name: "qty"},
		})
	root.Kind = plan.HashAgg

	if got := plan.CountLeafFragments(root); got < 2 {
		b.Fatalf("benchmark plan must have >=2 independent leaf fragments, got %d", got)
	}
	return cl, root
}

// BenchmarkExecSeqVsParallel compares the sequential Volcano engine with
// the batch-parallel engine on a three-site join+aggregation plan. The
// cluster simulates WAN wire time (SetWireDelay), so the sequential
// engine pays the three SHIP delays back to back while the parallel
// engine overlaps its three producer fragments — the speedup measures
// communication overlap, not CPU parallelism (the accounted shipping
// stats are identical either way).
func BenchmarkExecSeqVsParallel(b *testing.B) {
	engines := []struct {
		name string
		run  func(*plan.Node, *cluster.Cluster) ([]expr.Row, *executor.RunStats, error)
	}{
		{"sequential", executor.Run},
		{"parallel", executor.RunParallel},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			cl, root := seqVsParFixture(b)
			var rows int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Ledger.Reset()
				out, stats, err := eng.run(root, cl)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 1000 {
					b.Fatalf("result rows: %d, want 1000", len(out))
				}
				rows += stats.ShippedRows
			}
			b.StopTimer()
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// --- per-query optimization micro-benchmarks -----------------------------

// BenchmarkOptimizeTPCH measures per-query compliant optimization time
// under CR+A (the headline optimization-overhead numbers). Each
// iteration builds a fresh optimizer, so this is the cold path: empty
// policy cache, no plan cache.
func BenchmarkOptimizeTPCH(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	for _, qn := range tpch.QueryNames() {
		b.Run(qn, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
				if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeTPCHWarmPolicy shares one optimizer across
// iterations: the sharded policy-evaluator cache is warm, but every
// iteration still explores, implements and places the plan (no plan
// cache). The gap to BenchmarkOptimizeTPCH is what policy memoization
// buys; the gap to .../WarmPlan is what full optimization still costs.
func BenchmarkOptimizeTPCHWarmPolicy(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	for _, qn := range tpch.QueryNames() {
		b.Run(qn, func(b *testing.B) {
			b.ReportAllocs()
			opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
			if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeTPCHWarmPlan measures the whole-plan cache hit path:
// normalize + digest + deep clone of the cached result.
func BenchmarkOptimizeTPCHWarmPlan(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	for _, qn := range tpch.QueryNames() {
		b.Run(qn, func(b *testing.B) {
			b.ReportAllocs()
			opt := optimizer.New(cat, pc, net, optimizer.Options{
				Compliant: true, PlanCacheSize: optimizer.DefaultPlanCacheSize})
			if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := opt.OptimizeSQL(tpch.Queries[qn])
				if err != nil {
					b.Fatal(err)
				}
				if !res.Stats.PlanCacheHit {
					b.Fatal("expected a plan-cache hit")
				}
			}
		})
	}
}

// BenchmarkOptimizeTPCHParallel drives one shared optimizer from
// GOMAXPROCS goroutines round-robining over all queries (plan cache on):
// the concurrent front-end under contention.
func BenchmarkOptimizeTPCHParallel(b *testing.B) {
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)
	opt := optimizer.New(cat, pc, net, optimizer.Options{
		Compliant: true, PlanCacheSize: optimizer.DefaultPlanCacheSize})
	names := tpch.QueryNames()
	for _, qn := range names {
		if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			qn := names[i%len(names)]
			i++
			if _, err := opt.OptimizeSQL(tpch.Queries[qn]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
