package cgdqp

import "testing"

// End-to-end coverage for HAVING and DISTINCT through the public API,
// including compliant optimization and execution across sites.
func TestHavingEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(`
		SELECT C.name, SUM(O.totprice) AS total
		FROM Customer C, Orders O
		WHERE C.custkey = O.custkey
		GROUP BY C.name
		HAVING SUM(O.totprice) > 300`)
	if err != nil {
		t.Fatal(err)
	}
	// Every customer owns 3 orders with totprice 10+i; compute expected
	// qualifying groups.
	want := 0
	for c := 0; c < 40; c++ {
		total := 0
		for i := c; i < 120; i += 40 {
			total += 10 + i
		}
		if total > 300 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("having rows: %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r[1].Float() <= 300 {
			t.Errorf("row violates HAVING: %v", r)
		}
	}
	if v := sys.CheckCompliance(res.Plan); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestDistinctEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	// Orders' custkey has 40 distinct values among 120 rows.
	res, err := sys.Query("SELECT DISTINCT O.custkey FROM Orders O")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Errorf("distinct rows: %d, want 40", len(res.Rows))
	}
	seen := map[int64]bool{}
	for _, r := range res.Rows {
		k := r[0].Int()
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
	}
	// DISTINCT over a cross-border join.
	res2, err := sys.Query(`
		SELECT DISTINCT C.name
		FROM Customer C, Orders O
		WHERE C.custkey = O.custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 40 {
		t.Errorf("distinct join rows: %d", len(res2.Rows))
	}
	if v := sys.CheckCompliance(res2.Plan); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
