// Command expgen generates policy-expression sets and ad-hoc query
// workloads over the TPC-H schema, mirroring the paper's generators
// (Section 7.1). Output is plain text, one expression/query per line.
//
//	expgen -kind policies -set CR+A -n 50
//	expgen -kind queries -n 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

func main() {
	kind := flag.String("kind", "policies", "what to generate: policies or queries")
	set := flag.String("set", "CR+A", "policy template: T, C, CR, CR+A")
	n := flag.Int("n", 50, "number of expressions / queries")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	switch *kind {
	case "policies":
		var name workload.SetName
		switch strings.ToUpper(*set) {
		case "T":
			name = workload.SetT
		case "C":
			name = workload.SetC
		case "CR":
			name = workload.SetCR
		case "CR+A", "CRA":
			name = workload.SetCRA
		default:
			fmt.Fprintf(os.Stderr, "unknown template %q\n", *set)
			os.Exit(2)
		}
		pc := workload.NewPolicyGen(*seed, tpch.Locations()).Generate(name, *n)
		for _, db := range pc.Databases() {
			for _, e := range pc.ForDB(db) {
				fmt.Println(e)
			}
		}
	case "queries":
		for _, q := range workload.NewQueryGen(*seed).Generate(*n) {
			fmt.Println(q + ";")
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
