// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 7). Run it with no arguments to reproduce
// everything, or select panels with -fig:
//
//	experiments -fig 5a          # effectiveness matrix
//	experiments -fig 6g -sf 0.01 # plan quality under set C
//	experiments -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgdqp/internal/experiments"
	"cgdqp/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "panel to regenerate: table1, 5a, 5be, 6a, 6b, 6c, 6d, 6e, 6f, 6g, 6h, 7, 7de, 8, all")
	format := flag.String("format", "text", "output format: text or csv")
	sf := flag.Float64("sf", 0.01, "catalog scale factor for optimization experiments")
	execSF := flag.Float64("exec-sf", 0.002, "scale factor for experiments that execute plans")
	reps := flag.Int("reps", 3, "repetitions per timing measurement")
	queries := flag.Int("adhoc", 100, "ad-hoc queries per expression set for figure 6a")
	seed := flag.Uint64("seed", 42, "workload generator seed")
	flag.Parse()

	cfg := experiments.Config{SF: *sf, ExecSF: *execSF, Repetitions: *reps, Seed: *seed}
	csv := *format == "csv"
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	failed := false
	run := func(keys []string, fn func() (string, error)) {
		selected := all
		for _, k := range keys {
			if want[k] {
				selected = true
			}
		}
		if !selected {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			failed = true
			return
		}
		fmt.Println(out)
	}

	run([]string{"table1"}, func() (string, error) {
		return experiments.RenderTable1(), nil
	})
	run([]string{"5a"}, func() (string, error) {
		cells, err := experiments.Fig5aEffectiveness(cfg)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVFig5a(cells), nil
		}
		return experiments.RenderFig5a(cells), nil
	})
	run([]string{"5be", "5b", "5c", "5d", "5e"}, func() (string, error) {
		return experiments.Fig5PlanExcerpts(cfg)
	})
	run([]string{"6a"}, func() (string, error) {
		rows, err := experiments.Fig6aAdhocEffectiveness(cfg, *queries)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVFig6a(rows), nil
		}
		return experiments.RenderFig6a(rows), nil
	})
	run([]string{"6b"}, func() (string, error) {
		rows, err := experiments.Fig6bMinimalOverhead(cfg)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVOptTimes(rows), nil
		}
		return experiments.RenderOptTimes("Figure 6(b): minimal overhead (ship * from t to *)", rows), nil
	})
	for _, p := range []struct {
		key string
		set workload.SetName
	}{
		{"6c", workload.SetT}, {"6d", workload.SetC},
		{"6e", workload.SetCR}, {"6f", workload.SetCRA},
	} {
		p := p
		run([]string{p.key}, func() (string, error) {
			rows, err := experiments.Fig6OptTime(cfg, p.set)
			if err != nil {
				return "", err
			}
			if csv {
				return experiments.CSVOptTimes(rows), nil
			}
			return experiments.RenderOptTimes(
				fmt.Sprintf("Figure %s: optimization time under set %s", p.key, p.set), rows), nil
		})
	}
	run([]string{"6g"}, func() (string, error) {
		rows, err := experiments.Fig6Quality(cfg, workload.SetC)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVQuality(rows), nil
		}
		return experiments.RenderQuality("Figure 6(g): scaled execution cost under C", rows), nil
	})
	run([]string{"6h"}, func() (string, error) {
		rows, err := experiments.Fig6Quality(cfg, workload.SetCR)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVQuality(rows), nil
		}
		return experiments.RenderQuality("Figure 6(h): scaled execution cost under CR", rows), nil
	})
	run([]string{"7", "7abc"}, func() (string, error) {
		rows, err := experiments.Fig7Expressions(cfg)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVFig7(rows), nil
		}
		return experiments.RenderFig7(rows), nil
	})
	run([]string{"7de"}, func() (string, error) {
		rows, err := experiments.Fig7deTableLocations(cfg)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVFig7de(rows), nil
		}
		return experiments.RenderFig7de(rows), nil
	})
	run([]string{"8"}, func() (string, error) {
		rows, err := experiments.Fig8Locations(cfg)
		if err != nil {
			return "", err
		}
		if csv {
			return experiments.CSVFig8(rows), nil
		}
		return experiments.RenderFig8(rows), nil
	})
	if failed {
		os.Exit(1)
	}
}
