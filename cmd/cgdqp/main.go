// Command cgdqp is an interactive compliant geo-distributed SQL shell
// over the TPC-H deployment of the paper's evaluation: eight tables
// spread over five locations (Table 2) with a selectable policy set.
//
//	cgdqp -set CR -sf 0.001                      # interactive shell
//	cgdqp -set CR+A -q "SELECT ..."              # one-shot query
//	cgdqp -set T -explain -q "SELECT ..."        # plan only
//
// Inside the shell:
//
//	> SELECT c.name, SUM(o.totalprice) AS t FROM customer c, orders o
//	  WHERE c.custkey = o.custkey GROUP BY c.name LIMIT 5;
//	> \explain SELECT ...;
//	> \dot SELECT ...;  -- print the compliant plan as Graphviz
//	> \policies         -- list active policy expressions
//	> \analyze          -- recompute statistics from loaded data
//	> \quit
//
// Serving mode replays a mixed TPC-H workload through the concurrent
// query scheduler (admission control, weighted-fair per-site slots,
// shared-work batching) and reports throughput and latency:
//
//	cgdqp -serve -clients 16 -duration 10s            # closed loop
//	cgdqp -serve -qps 50 -workload Q3,Q5 -queue-depth 32
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/feedback"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/rescache"
	"cgdqp/internal/sched"
	"cgdqp/internal/schema"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// preloaded reports whether a persistent cluster reopened a data
// directory that already holds every fragment of every catalog table —
// in that case the TPC-H load is skipped (reloading would append
// duplicate rows).
func preloaded(cat *schema.Catalog, cl *cluster.Cluster) bool {
	if !cl.Persistent() {
		return false
	}
	for _, t := range cat.Tables() {
		n := len(t.Fragments)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !cl.FragmentLoaded(t, i) {
				return false
			}
		}
	}
	return true
}

// writeOut renders one observability artefact to path ("-" = stdout,
// "" = skip) at process exit.
func writeOut(path, what string, render func(io.Writer) error) {
	if path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := render(w); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
	}
}

func main() {
	setName := flag.String("set", "CR", "policy set: T, C, CR, CR+A, open (unrestricted)")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor for loaded data")
	query := flag.String("q", "", "run one query and exit")
	explainOnly := flag.Bool("explain", false, "print the plan without executing")
	resultLoc := flag.String("at", "", "pin the result location (L1..L5)")
	parallel := flag.Bool("parallel", false, "execute with the batch-parallel engine")
	chaosSeed := flag.Int64("chaos-seed", 0, "inject deterministic WAN faults under this seed (0 = off); the same seed replays the same failures")
	chaosDrop := flag.Float64("chaos-drop", 0.05, "per-batch drop probability under -chaos-seed")
	chaosError := flag.Float64("chaos-error", 0.05, "per-send transient-error probability under -chaos-seed")
	chaosDelay := flag.Float64("chaos-delay", 0.10, "per-send delay probability under -chaos-seed")
	planCache := flag.Int("plan-cache", optimizer.DefaultPlanCacheSize, "optimized-plan LRU cache size (0 = off); repeated queries skip optimization")
	resultCache := flag.Int64("result-cache", 64<<20, "result-set cache budget in bytes (0 = off); repeated queries are served from cached results while their tables and policies are unchanged")
	explainAnalyze := flag.Bool("explain-analyze", false, "execute and print the plan annotated with per-operator actual rows/batches/time")
	metricsOut := flag.String("metrics-out", "", "write Prometheus-text metrics to this file at exit (- for stdout)")
	traceOut := flag.String("trace-out", "", "write query-lifecycle spans as JSON to this file at exit (- for stdout)")
	auditOut := flag.String("audit-out", "", "write the compliance audit log of cross-site shipments to this file at exit (- for stdout)")
	serve := flag.Bool("serve", false, "replay a TPC-H workload through the concurrent query scheduler and report throughput/latency")
	workloadMix := flag.String("workload", "mixed", "serving mode query mix: comma-separated TPC-H names (Q3,Q5,...) or 'mixed' for all")
	qps := flag.Float64("qps", 0, "serving mode target submission rate across all clients (0 = closed loop)")
	clients := flag.Int("clients", 8, "serving mode concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "serving mode run length")
	maxConcurrent := flag.Int("max-concurrent", sched.DefaultMaxConcurrent, "serving mode: queries executing simultaneously")
	queueDepth := flag.Int("queue-depth", sched.DefaultQueueDepth, "serving mode: admission queue bound (overload beyond it is rejected)")
	siteSlots := flag.Int("site-slots", 0, "serving mode: per-site fragment-pipeline slots (0 = 2x max-concurrent)")
	queryTimeout := flag.Duration("query-timeout", 0, "serving mode: per-query deadline from admission (0 = none)")
	feedbackOn := flag.Bool("feedback", false, "record per-operator actuals from every execution and let the optimizer cost with observed cardinalities (continuous wire calibration included)")
	slowLogPath := flag.String("slow-query-log", "", "append one JSON line per slow query to this file (- for stdout)")
	slowThreshold := flag.Duration("slow-query-threshold", 100*time.Millisecond, "latency floor for -slow-query-log (0 logs every query)")
	sloTarget := flag.Duration("slo-target", 0, "serving mode: adaptively tune max-concurrent/queue-depth against this e2e p99 target (0 = static limits)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	dataDir := flag.String("data-dir", "", "persist per-site table data under this directory with the paged storage engine (empty = in-memory); reopening a populated directory recovers from the WAL and skips the TPC-H load")
	bufferPool := flag.Int64("buffer-pool", 0, "persistent-store buffer pool budget in bytes (0 = 64 MiB default); also feeds the optimizer's index access-path costing")
	flag.Parse()

	var obsv *obs.Observer
	if *metricsOut != "" || *traceOut != "" || *auditOut != "" || *explainAnalyze || *obsAddr != "" {
		obsv = &obs.Observer{}
		if *traceOut != "" {
			obsv.Tracer = obs.NewTracer()
		}
		if *metricsOut != "" || *obsAddr != "" {
			obsv.Metrics = obs.NewRegistry()
		}
		if *auditOut != "" {
			obsv.Audit = obs.NewAuditLog()
		}
	}
	if *obsAddr != "" {
		hs, err := obs.ServeHTTP(*obsAddr, obsv.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability listener on http://%s (/metrics, /debug/vars, /debug/pprof)\n", hs.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
		}()
	}
	defer func() {
		writeOut(*metricsOut, "metrics", func(w io.Writer) error { return obsv.Metrics.WritePrometheus(w) })
		writeOut(*traceOut, "trace", func(w io.Writer) error { return obsv.Tracer.WriteJSON(w) })
		writeOut(*auditOut, "audit", func(w io.Writer) error { return obsv.Audit.WriteText(w) })
	}()

	var pc *policy.Catalog
	switch strings.ToUpper(*setName) {
	case "T":
		pc = workload.TPCHSet(workload.SetT)
	case "C":
		pc = workload.TPCHSet(workload.SetC)
	case "CR":
		pc = workload.TPCHSet(workload.SetCR)
	case "CR+A", "CRA":
		pc = workload.TPCHSet(workload.SetCRA)
	case "OPEN":
		pc = workload.UnrestrictedSet()
	default:
		fmt.Fprintf(os.Stderr, "unknown policy set %q\n", *setName)
		os.Exit(2)
	}

	cat := tpch.NewCatalog(*sf)
	net := network.FiveRegionWAN(cat.Locations())
	var cl *cluster.Cluster
	if *dataDir != "" {
		var err error
		cl, err = cluster.NewWithStore(cat, net, &cluster.StoreConfig{
			DataDir:         *dataDir,
			BufferPoolBytes: *bufferPool,
			Fsync:           true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "data-dir: %v\n", err)
			os.Exit(1)
		}
		defer cl.Close()
	} else {
		cl = cluster.New(cat, net)
	}
	if preloaded(cat, cl) {
		fmt.Fprintf(os.Stderr, "reopened persistent TPC-H data in %s (load skipped)\n", *dataDir)
	} else {
		fmt.Fprintf(os.Stderr, "loading TPC-H data at SF %g over L1..L5 ...\n", *sf)
		if err := tpch.Generate(cat, cl); err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
	}
	if *chaosSeed != 0 {
		faults := network.NewFaultPlan(*chaosSeed).SetDefault(network.EdgeFaults{
			DropProb:      *chaosDrop,
			TransientProb: *chaosError,
			DelayProb:     *chaosDelay,
			DelayMS:       50,
		})
		cl.SetFaults(faults)
		fmt.Fprintf(os.Stderr, "chaos: injecting WAN faults (seed %d, drop %.0f%%, error %.0f%%, delay %.0f%%; retry %d attempts)\n",
			*chaosSeed, *chaosDrop*100, *chaosError*100, *chaosDelay*100, cl.Retry().Attempts())
	}
	cl.SetObserver(obsv)
	opt := optimizer.New(cat, pc, net, optimizer.Options{
		Compliant:      true,
		ResultLocation: *resultLoc,
		PlanCacheSize:  *planCache,
		PoolBytes:      *bufferPool,
	})
	opt.SetObserver(obsv)

	var fb *feedback.Store
	if *feedbackOn {
		fb = feedback.NewStore(feedback.Options{})
		if obsv != nil {
			fb.SetMetrics(obsv.Metrics)
		}
		opt.SetFeedback(fb)
		cl.SetCalibrator(fb.Calibrator())
		fb.ArmCalibration(net, 0)
	}
	var slowLog *feedback.SlowQueryLog
	if *slowLogPath != "" {
		w := io.Writer(os.Stdout)
		if *slowLogPath != "-" {
			f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "slow-query-log: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		slowLog = feedback.NewSlowQueryLog(w, *slowThreshold)
	}

	// Result-set cache: repeated queries are served from whole cached
	// results while every consumed table's data epoch is unchanged (the
	// CLI policy set is fixed, so the policy epoch never moves; Recheck
	// still guards against stale provenance defensively).
	var rcache *rescache.Cache
	var rcView rescache.View
	if *resultCache > 0 {
		rcache = rescache.New(*resultCache)
		if obsv != nil {
			rcache.SetMetrics(obsv.Metrics)
		}
		rcView = rescache.View{
			DataEpoch:   cl.DataEpoch,
			PolicyEpoch: func() uint64 { return 0 },
			Recheck:     func(p *plan.Node) bool { return len(opt.Check(p)) == 0 },
		}
	}

	runOne := func(sql string) {
		res, err := opt.OptimizeSQL(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if !*explainAnalyze {
			fmt.Println(res.Plan.Format(true))
		}
		if *explainOnly {
			cacheNote := ""
			if res.Stats.PlanCacheHit {
				cacheNote = " [plan cache hit]"
			} else if pcs := opt.PlanCacheStats(); pcs.Hits+pcs.Misses > 0 {
				cacheNote = fmt.Sprintf(" [plan cache %d/%d hits]", pcs.Hits, pcs.Hits+pcs.Misses)
			}
			fmt.Printf("-- optimization: %v, estimated ship cost: %.2f ms; η=%d, 𝒜 calls=%d (cache hits %d)%s\n",
				res.Stats.TotalTime, res.ShipCost,
				res.Stats.Eta, res.Stats.ACalls, res.Stats.AHits, cacheNote)
			return
		}
		printResult := func(rows []expr.Row, stats executor.RunStats, cached bool) {
			for i, r := range rows {
				if i >= 25 {
					fmt.Printf("... (%d rows total)\n", len(rows))
					break
				}
				parts := make([]string, len(r))
				for j, v := range r {
					parts[j] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			retryNote := ""
			if stats.Retries > 0 {
				retryNote = fmt.Sprintf("; %d send attempt(s) retried", stats.Retries)
			}
			cacheNote := ""
			if cached {
				cacheNote = " [result cache hit]"
			}
			fmt.Printf("-- %d rows; shipped %d bytes across borders (%.2f ms simulated)%s%s\n",
				stats.RowsOut, stats.ShippedBytes, stats.ShipCost, retryNote, cacheNote)
		}
		var fill *rescache.Fill
		if rcache != nil && !*explainAnalyze {
			hitStart := time.Now()
			fill = rescache.Prepare(res.Plan, "", rcView)
			if r, ok := rcache.Get(fill.Key, rcView); ok {
				if sink := obsv.AuditSink(); sink != nil {
					for _, rec := range r.Audit {
						sink.Record(rec)
					}
				}
				if fb != nil || slowLog != nil {
					// Hits replay the filling run's statistics; there is no
					// execution, so no per-operator q-errors.
					lat := time.Since(hitStart)
					fb.ObserveQuery(lat.Seconds())
					engine := "seq"
					if *parallel {
						engine = "par"
					}
					slowLog.Maybe(lat, feedback.QueryRecord{
						SQLDigest:  feedback.SQLDigest(sql),
						PlanDigest: feedback.ShortDigest(res.Plan.Digest()),
						RowsOut:    r.Stats.RowsOut,
						ShipBytes:  r.Stats.ShippedBytes,
						ShipCostMS: r.Stats.ShipCost,
						Retries:    r.Stats.Retries,
						Cache:      feedback.CacheHit,
						Engine:     engine,
					})
				}
				printResult(r.Rows, r.Stats, true)
				return
			}
		}
		qo := obsv
		if *explainAnalyze || fb != nil || slowLog != nil {
			qo = qo.WithProfile(obs.NewPlanProfile())
		}
		var capture *obs.AuditLog
		if fill != nil && obsv.AuditSink() != nil {
			capture = obs.NewAuditLog()
			qo = qo.WithAudit(capture)
		}
		var rows []expr.Row
		var stats *executor.RunStats
		execStart := time.Now()
		if *parallel {
			rows, stats, err = executor.RunParallelObserved(context.Background(), res.Plan, cl, qo)
		} else {
			rows, stats, err = executor.RunObserved(res.Plan, cl, qo)
		}
		execLat := time.Since(execStart)
		if *explainAnalyze {
			fmt.Println(qo.Prof().Format(res.Plan))
		}
		if err == nil && (fb != nil || slowLog != nil) {
			qerrs := feedback.RecordExecution(fb, res.Plan, qo.Prof())
			fb.ObserveQuery(execLat.Seconds())
			engine := "seq"
			if *parallel {
				engine = "par"
			}
			disp := feedback.CacheOff
			if fill != nil {
				disp = feedback.CacheMiss
			}
			slowLog.Maybe(execLat, feedback.QueryRecord{
				SQLDigest:  feedback.SQLDigest(sql),
				PlanDigest: feedback.ShortDigest(res.Plan.Digest()),
				RowsOut:    stats.RowsOut,
				ShipBytes:  stats.ShippedBytes,
				ShipCostMS: stats.ShipCost,
				Retries:    stats.Retries,
				Cache:      disp,
				Engine:     engine,
				QErrors:    qerrs,
			})
		}
		if err != nil {
			var shipErr *network.ShipError
			if errors.As(err, &shipErr) {
				fmt.Fprintf(os.Stderr, "shipping failure: %v\n", shipErr)
			} else {
				fmt.Fprintf(os.Stderr, "execution error: %v\n", err)
			}
			return
		}
		if fill != nil {
			var recs []obs.AuditRecord
			if capture != nil {
				recs = capture.Records()
				sink := obsv.AuditSink()
				for _, rec := range recs {
					sink.Record(rec)
				}
			}
			cols := make([]string, len(res.Plan.Cols))
			for i, c := range res.Plan.Cols {
				cols[i] = c.Name
			}
			rcache.Put(fill, rows, cols, *stats, recs, res.ShipCost)
		}
		printResult(rows, *stats, false)
	}

	if *serve {
		runServe(opt, cl, obsv, serveConfig{
			mix:      *workloadMix,
			qps:      *qps,
			clients:  *clients,
			duration: *duration,
			opts: sched.Options{
				MaxConcurrent: *maxConcurrent, QueueDepth: *queueDepth,
				SiteSlots: *siteSlots, QueryTimeout: *queryTimeout,
				ResultCache: rcache, CacheView: rcView,
				SLOTarget: *sloTarget, Feedback: fb, SlowLog: slowLog,
			},
		})
		return
	}

	if *query != "" {
		runOne(*query)
		return
	}

	fmt.Println("compliant geo-distributed SQL shell — \\policies, \\explain <sql>, \\quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == `\quit` || trimmed == `\q`:
			return
		case trimmed == `\policies`:
			for _, db := range pc.Databases() {
				for _, e := range pc.ForDB(db) {
					fmt.Printf("  [%s] %s\n", e.ID, e)
				}
			}
			prompt()
			continue
		case strings.HasPrefix(trimmed, `\explain `):
			was := *explainOnly
			*explainOnly = true
			runOne(strings.TrimSuffix(strings.TrimPrefix(trimmed, `\explain `), ";"))
			*explainOnly = was
			prompt()
			continue
		case strings.HasPrefix(trimmed, `\dot `):
			sql := strings.TrimSuffix(strings.TrimPrefix(trimmed, `\dot `), ";")
			if res, err := opt.OptimizeSQL(sql); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			} else {
				fmt.Println(res.Plan.Dot())
			}
			prompt()
			continue
		case trimmed == `\analyze`:
			if err := cl.AnalyzeAll(cat); err != nil {
				fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			} else {
				fmt.Println("statistics recomputed from loaded data")
				opt = optimizer.New(cat, pc, net, optimizer.Options{
					Compliant:      true,
					ResultLocation: *resultLoc,
					PlanCacheSize:  *planCache,
					PoolBytes:      *bufferPool,
				})
				opt.SetObserver(obsv)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if sql != "" {
				runOne(sql)
			}
			prompt()
		}
	}
}

// serveConfig parameterizes the serving-mode workload driver.
type serveConfig struct {
	mix      string
	qps      float64
	clients  int
	duration time.Duration
	opts     sched.Options
}

// runServe replays a mixed TPC-H workload through the concurrent query
// scheduler: `clients` goroutines submit queries round-robin from the
// mix — paced at an aggregate `qps` when set, back-to-back otherwise —
// for `duration`, then the admission counters and the completed-query
// latency distribution are reported.
func runServe(opt *optimizer.Optimizer, cl *cluster.Cluster, obsv *obs.Observer, cfg serveConfig) {
	var names []string
	if strings.EqualFold(cfg.mix, "mixed") || cfg.mix == "" {
		names = tpch.QueryNames()
	} else {
		for _, n := range strings.Split(cfg.mix, ",") {
			n = strings.TrimSpace(strings.ToUpper(n))
			if _, ok := tpch.Queries[n]; !ok {
				fmt.Fprintf(os.Stderr, "unknown workload query %q (have %s)\n", n, strings.Join(tpch.QueryNames(), ", "))
				os.Exit(2)
			}
			names = append(names, n)
		}
	}
	if cfg.clients <= 0 {
		cfg.clients = 1
	}

	srv := sched.NewServer(opt, cl, obsv, cfg.opts)
	pace := ""
	if cfg.qps > 0 {
		pace = fmt.Sprintf(" at %.0f qps", cfg.qps)
	}
	fmt.Fprintf(os.Stderr, "serving mix [%s] with %d clients%s for %v (max-concurrent %d, queue-depth %d)\n",
		strings.Join(names, " "), cfg.clients, pace, cfg.duration,
		cfg.opts.MaxConcurrent, cfg.opts.QueueDepth)

	var (
		mu        sync.Mutex
		lats      []time.Duration
		nextQuery atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
	)
	// Open-loop pacing: one shared ticker feeds submission slots so the
	// aggregate rate holds regardless of client count.
	var slots chan struct{}
	deadline := time.Now().Add(cfg.duration)
	stop := make(chan struct{})
	if cfg.qps > 0 {
		slots = make(chan struct{}, cfg.clients)
		go func() {
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.qps))
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					select {
					case slots <- struct{}{}:
					default: // all clients busy: shed the slot
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if slots != nil {
					select {
					case <-slots:
					case <-stop:
						return
					}
				}
				name := names[int(nextQuery.Add(1)-1)%len(names)]
				resp, err := srv.Do(context.Background(), tpch.Queries[name])
				switch {
				case err == nil:
					mu.Lock()
					lats = append(lats, resp.Total)
					mu.Unlock()
				case errors.Is(err, sched.ErrQueueFull):
					rejected.Add(1)
				default:
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				}
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	close(stop)
	srv.Close()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	c := srv.Counters()
	fmt.Printf("completed %d queries in %v (%.1f q/s); rejected %d (queue full), failed %d, cancelled %d, coalesced %d; executed %d, result-cache hits %d (+%d coalesced executions)\n",
		len(lats), elapsed.Round(time.Millisecond), float64(len(lats))/elapsed.Seconds(),
		rejected.Load(), failed.Load(), c.Cancelled, c.Coalesced,
		c.Executed, c.ResultCacheHits, c.ExecCoalesced)
	fmt.Printf("latency p50 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if cfg.opts.SLOTarget > 0 {
		em, eq := srv.Tuning()
		fmt.Printf("adaptive admission: effective max-concurrent %d, queue-depth %d (SLO target %v)\n",
			em, eq, cfg.opts.SLOTarget)
	}
}
