// Command cgdqp is an interactive compliant geo-distributed SQL shell
// over the TPC-H deployment of the paper's evaluation: eight tables
// spread over five locations (Table 2) with a selectable policy set.
//
//	cgdqp -set CR -sf 0.001                      # interactive shell
//	cgdqp -set CR+A -q "SELECT ..."              # one-shot query
//	cgdqp -set T -explain -q "SELECT ..."        # plan only
//
// Inside the shell:
//
//	> SELECT c.name, SUM(o.totalprice) AS t FROM customer c, orders o
//	  WHERE c.custkey = o.custkey GROUP BY c.name LIMIT 5;
//	> \explain SELECT ...;
//	> \dot SELECT ...;  -- print the compliant plan as Graphviz
//	> \policies         -- list active policy expressions
//	> \analyze          -- recompute statistics from loaded data
//	> \quit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// writeOut renders one observability artefact to path ("-" = stdout,
// "" = skip) at process exit.
func writeOut(path, what string, render func(io.Writer) error) {
	if path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := render(w); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
	}
}

func main() {
	setName := flag.String("set", "CR", "policy set: T, C, CR, CR+A, open (unrestricted)")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor for loaded data")
	query := flag.String("q", "", "run one query and exit")
	explainOnly := flag.Bool("explain", false, "print the plan without executing")
	resultLoc := flag.String("at", "", "pin the result location (L1..L5)")
	parallel := flag.Bool("parallel", false, "execute with the batch-parallel engine")
	chaosSeed := flag.Int64("chaos-seed", 0, "inject deterministic WAN faults under this seed (0 = off); the same seed replays the same failures")
	chaosDrop := flag.Float64("chaos-drop", 0.05, "per-batch drop probability under -chaos-seed")
	chaosError := flag.Float64("chaos-error", 0.05, "per-send transient-error probability under -chaos-seed")
	chaosDelay := flag.Float64("chaos-delay", 0.10, "per-send delay probability under -chaos-seed")
	planCache := flag.Int("plan-cache", optimizer.DefaultPlanCacheSize, "optimized-plan LRU cache size (0 = off); repeated queries skip optimization")
	explainAnalyze := flag.Bool("explain-analyze", false, "execute and print the plan annotated with per-operator actual rows/batches/time")
	metricsOut := flag.String("metrics-out", "", "write Prometheus-text metrics to this file at exit (- for stdout)")
	traceOut := flag.String("trace-out", "", "write query-lifecycle spans as JSON to this file at exit (- for stdout)")
	auditOut := flag.String("audit-out", "", "write the compliance audit log of cross-site shipments to this file at exit (- for stdout)")
	flag.Parse()

	var obsv *obs.Observer
	if *metricsOut != "" || *traceOut != "" || *auditOut != "" || *explainAnalyze {
		obsv = &obs.Observer{}
		if *traceOut != "" {
			obsv.Tracer = obs.NewTracer()
		}
		if *metricsOut != "" {
			obsv.Metrics = obs.NewRegistry()
		}
		if *auditOut != "" {
			obsv.Audit = obs.NewAuditLog()
		}
	}
	defer func() {
		writeOut(*metricsOut, "metrics", func(w io.Writer) error { return obsv.Metrics.WritePrometheus(w) })
		writeOut(*traceOut, "trace", func(w io.Writer) error { return obsv.Tracer.WriteJSON(w) })
		writeOut(*auditOut, "audit", func(w io.Writer) error { return obsv.Audit.WriteText(w) })
	}()

	var pc *policy.Catalog
	switch strings.ToUpper(*setName) {
	case "T":
		pc = workload.TPCHSet(workload.SetT)
	case "C":
		pc = workload.TPCHSet(workload.SetC)
	case "CR":
		pc = workload.TPCHSet(workload.SetCR)
	case "CR+A", "CRA":
		pc = workload.TPCHSet(workload.SetCRA)
	case "OPEN":
		pc = workload.UnrestrictedSet()
	default:
		fmt.Fprintf(os.Stderr, "unknown policy set %q\n", *setName)
		os.Exit(2)
	}

	cat := tpch.NewCatalog(*sf)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	fmt.Fprintf(os.Stderr, "loading TPC-H data at SF %g over L1..L5 ...\n", *sf)
	if err := tpch.Generate(cat, cl); err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		os.Exit(1)
	}
	if *chaosSeed != 0 {
		faults := network.NewFaultPlan(*chaosSeed).SetDefault(network.EdgeFaults{
			DropProb:      *chaosDrop,
			TransientProb: *chaosError,
			DelayProb:     *chaosDelay,
			DelayMS:       50,
		})
		cl.SetFaults(faults)
		fmt.Fprintf(os.Stderr, "chaos: injecting WAN faults (seed %d, drop %.0f%%, error %.0f%%, delay %.0f%%; retry %d attempts)\n",
			*chaosSeed, *chaosDrop*100, *chaosError*100, *chaosDelay*100, cl.Retry().Attempts())
	}
	cl.SetObserver(obsv)
	opt := optimizer.New(cat, pc, net, optimizer.Options{
		Compliant:      true,
		ResultLocation: *resultLoc,
		PlanCacheSize:  *planCache,
	})
	opt.SetObserver(obsv)

	runOne := func(sql string) {
		res, err := opt.OptimizeSQL(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if !*explainAnalyze {
			fmt.Println(res.Plan.Format(true))
		}
		if *explainOnly {
			cacheNote := ""
			if res.Stats.PlanCacheHit {
				cacheNote = " [plan cache hit]"
			} else if pcs := opt.PlanCacheStats(); pcs.Hits+pcs.Misses > 0 {
				cacheNote = fmt.Sprintf(" [plan cache %d/%d hits]", pcs.Hits, pcs.Hits+pcs.Misses)
			}
			fmt.Printf("-- optimization: %v, estimated ship cost: %.2f ms; η=%d, 𝒜 calls=%d (cache hits %d)%s\n",
				res.Stats.TotalTime, res.ShipCost,
				res.Stats.Eta, res.Stats.ACalls, res.Stats.AHits, cacheNote)
			return
		}
		qo := obsv
		if *explainAnalyze {
			qo = qo.WithProfile(obs.NewPlanProfile())
		}
		var rows []expr.Row
		var stats *executor.RunStats
		if *parallel {
			rows, stats, err = executor.RunParallelObserved(context.Background(), res.Plan, cl, qo)
		} else {
			rows, stats, err = executor.RunObserved(res.Plan, cl, qo)
		}
		if *explainAnalyze {
			fmt.Println(qo.Prof().Format(res.Plan))
		}
		if err != nil {
			var shipErr *network.ShipError
			if errors.As(err, &shipErr) {
				fmt.Fprintf(os.Stderr, "shipping failure: %v\n", shipErr)
			} else {
				fmt.Fprintf(os.Stderr, "execution error: %v\n", err)
			}
			return
		}
		for i, r := range rows {
			if i >= 25 {
				fmt.Printf("... (%d rows total)\n", len(rows))
				break
			}
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		retryNote := ""
		if stats.Retries > 0 {
			retryNote = fmt.Sprintf("; %d send attempt(s) retried", stats.Retries)
		}
		fmt.Printf("-- %d rows; shipped %d bytes across borders (%.2f ms simulated)%s\n",
			stats.RowsOut, stats.ShippedBytes, stats.ShipCost, retryNote)
	}

	if *query != "" {
		runOne(*query)
		return
	}

	fmt.Println("compliant geo-distributed SQL shell — \\policies, \\explain <sql>, \\quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == `\quit` || trimmed == `\q`:
			return
		case trimmed == `\policies`:
			for _, db := range pc.Databases() {
				for _, e := range pc.ForDB(db) {
					fmt.Printf("  [%s] %s\n", e.ID, e)
				}
			}
			prompt()
			continue
		case strings.HasPrefix(trimmed, `\explain `):
			was := *explainOnly
			*explainOnly = true
			runOne(strings.TrimSuffix(strings.TrimPrefix(trimmed, `\explain `), ";"))
			*explainOnly = was
			prompt()
			continue
		case strings.HasPrefix(trimmed, `\dot `):
			sql := strings.TrimSuffix(strings.TrimPrefix(trimmed, `\dot `), ";")
			if res, err := opt.OptimizeSQL(sql); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			} else {
				fmt.Println(res.Plan.Dot())
			}
			prompt()
			continue
		case trimmed == `\analyze`:
			if err := cl.AnalyzeAll(cat); err != nil {
				fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			} else {
				fmt.Println("statistics recomputed from loaded data")
				opt = optimizer.New(cat, pc, net, optimizer.Options{
					Compliant:      true,
					ResultLocation: *resultLoc,
					PlanCacheSize:  *planCache,
				})
				opt.SetObserver(obsv)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if sql != "" {
				runOne(sql)
			}
			prompt()
		}
	}
}
