package cgdqp

import (
	"errors"
	"testing"
)

// TestDenyPoliciesEndToEnd drives the closed-world negative-expression
// path through the public API.
func TestDenyPoliciesEndToEnd(t *testing.T) {
	sys := NewSystem()
	sys.MustDefineTable("users", "db-eu", "EU", 10,
		Col("id", TInt), Col("name", TString), Col("ssn", TString))
	sys.MustDefineTable("events", "db-us", "US", 30,
		Col("user_id", TInt), Col("kind", TString))
	// Events never leave the US (no expression, conservative default).
	// Closed world for users: everything may move, except ssn anywhere.
	if err := sys.AddDenyPolicies("users", "deny ssn from users to *"); err != nil {
		t.Fatal(err)
	}

	var uRows, eRows []Row
	for i := 0; i < 10; i++ {
		uRows = append(uRows, Row{Int(int64(i)), String("u"), String("secret")})
	}
	for i := 0; i < 30; i++ {
		eRows = append(eRows, Row{Int(int64(i % 10)), String("click")})
	}
	sys.MustLoad("users", uRows)
	sys.MustLoad("events", eRows)

	// Joining on id/name is legal anywhere.
	res, err := sys.Query(`SELECT u.name, COUNT(*) AS n FROM users u, events e
		WHERE u.id = e.user_id GROUP BY u.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Int() != 30 {
		t.Errorf("rows: %v", res.Rows)
	}
	// Exporting ssn with events is rejected: ssn cannot reach the US and
	// events cannot reach the EU.
	_, err = sys.Query(`SELECT u.ssn, e.kind FROM users u, events e WHERE u.id = e.user_id`)
	if !errors.Is(err, ErrNoCompliantPlan) {
		t.Errorf("ssn export should be rejected, got %v", err)
	}
	// ssn stays usable locally.
	res2, err := sys.Query("SELECT u.ssn FROM users u LIMIT 1")
	if err != nil || res2.Plan.Root.Loc != "EU" {
		t.Errorf("local ssn query: %v (loc %v)", err, res2.Plan.Root.Loc)
	}

	// Errors surface.
	if err := sys.AddDenyPolicies("ghost", "deny x from ghost to *"); err == nil {
		t.Error("unknown table must fail")
	}
	if err := sys.AddDenyPolicies("users", "deny nope from users to *"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if err := sys.AddDenyPolicies("users", "deny kind from events to *"); err == nil {
		t.Error("mismatched table must fail")
	}
}
