package cgdqp

// A committable storage-engine report: `make bench` runs this harness
// with -bench-report, which measures the persistent paged store's
// access paths on a one-million-row site — full scan vs B+ tree index
// range lookup, hash join vs index-lookup join — each cold (data
// directory freshly reopened, buffer pool empty beyond the index
// rebuild) and warm (pool resident), and rewrites BENCH_store.json.
// Acceptance floor: the warm index range lookup must beat the warm full
// scan by at least 10x. The buffer pool is sized below the table's page
// footprint so full scans churn it while index paths stay resident —
// the regime the optimizer's pool-aware page costing models.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
	"cgdqp/internal/store"
)

const (
	storeBenchRows  = 1_000_000
	storeBenchOuter = 1024
	storeBenchPool  = 16 << 20 // below the fact table's page footprint
	storeBenchLo    = 500_000
	storeBenchHi    = 501_000 // [lo, hi): 1000 of 1M rows, 0.1% selectivity
)

type storeBenchRow struct {
	// Path is the measured access path: full-scan and index-range answer
	// the same 0.1%-selectivity predicate; hash-join and
	// index-lookup-join compute the same 1024-row equi-join.
	Path string `json:"path"`
	// ColdNS is the first execution after reopening the data directory
	// (pool holds only what the index rebuild touched); WarmNS is the
	// median of the subsequent runs.
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// RowsOut pins the result size so the compared paths provably answer
	// the same question.
	RowsOut int `json:"rows_out"`
}

type storeBenchReport struct {
	Tool        string `json:"tool"`
	GoVersion   string `json:"go_version"`
	RowsPerSite int    `json:"rows_per_site"`
	PoolBytes   int64  `json:"pool_bytes"`
	// ScanVsIndexSpeedup = warm full-scan / warm index-range — the >=10x
	// acceptance floor.
	ScanVsIndexSpeedup float64 `json:"scan_vs_index_speedup"`
	// JoinSpeedup = warm hash-join / warm index-lookup-join (tracked,
	// no floor: it depends on the outer cardinality ratio).
	JoinSpeedup float64         `json:"join_speedup"`
	Pool        store.PoolStats `json:"pool_stats_after"`
	Paths       []storeBenchRow `json:"paths"`
}

// storeBenchCatalog declares the fact table (1M rows, B+ tree on key)
// and the small probe-side outer table, both at one site so the
// measurements are storage-bound, not WAN-bound.
func storeBenchCatalog() (*schema.Catalog, *schema.Table, *schema.Table) {
	cat := schema.NewCatalog()
	fact := schema.NewTable("fact", "db-e", "E", storeBenchRows,
		schema.Column{Name: "key", Type: expr.TInt},
		schema.Column{Name: "val", Type: expr.TFloat},
		schema.Column{Name: "tag", Type: expr.TString})
	fact.Indexes = []string{"key"}
	cat.MustAddTable(fact)
	outer := schema.NewTable("probe", "db-e", "E", storeBenchOuter,
		schema.Column{Name: "okey", Type: expr.TInt},
		schema.Column{Name: "w", Type: expr.TFloat})
	cat.MustAddTable(outer)
	return cat, fact, outer
}

func storeBenchOpen(t *testing.T, dir string) *cluster.Cluster {
	t.Helper()
	cat, _, _ := storeBenchCatalog()
	cl, err := cluster.NewWithStore(cat, network.UniformWAN(100, 0.00001), &cluster.StoreConfig{
		DataDir:         dir,
		BufferPoolBytes: storeBenchPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestStoreBenchReport is skipped unless -bench-report is given (it is a
// measurement pass, not a correctness test).
func TestStoreBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_store.json")
	}
	dir := filepath.Join(t.TempDir(), "store-bench")

	// Load once; every measured path reopens this directory.
	{
		cl := storeBenchOpen(t, dir)
		cat, fact, outer := storeBenchCatalog()
		_ = cat
		rows := make([]expr.Row, 0, storeBenchRows)
		for i := 0; i < storeBenchRows; i++ {
			rows = append(rows, expr.Row{
				expr.NewInt(int64(i)),
				expr.NewFloat(float64(i%9973) / 3),
				expr.NewString(fmt.Sprintf("tag-%07d", i%8192)),
			})
		}
		if err := cl.LoadFragment(fact, 0, rows); err != nil {
			t.Fatal(err)
		}
		oRows := make([]expr.Row, 0, storeBenchOuter)
		for i := 0; i < storeBenchOuter; i++ {
			// Outer keys land inside the fact key space, one match each.
			oRows = append(oRows, expr.Row{
				expr.NewInt(int64(i * (storeBenchRows / storeBenchOuter))),
				expr.NewFloat(float64(i)),
			})
		}
		if err := cl.LoadFragment(outer, 0, oRows); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
	}

	_, fact, outer := storeBenchCatalog()
	lo, hi := expr.NewInt(storeBenchLo), expr.NewInt(storeBenchHi)
	rangePred := func() expr.Expr {
		return expr.NewAnd(
			expr.NewCmp(expr.GE, expr.NewCol("F", "key"), expr.NewConst(lo)),
			expr.NewCmp(expr.LT, expr.NewCol("F", "key"), expr.NewConst(hi)),
		)
	}
	factScan := func() *plan.Node {
		s := plan.NewScan(fact, "F", 0)
		s.Card = storeBenchRows
		return s
	}
	outerScan := func() *plan.Node {
		s := plan.NewScan(outer, "O", 0)
		s.Card = storeBenchOuter
		return s
	}
	joinPred := func() expr.Expr {
		return expr.NewCmp(expr.EQ, expr.NewCol("O", "okey"), expr.NewCol("F", "key"))
	}

	fullScan := plan.NewFilter(factScan(), rangePred())
	indexRange := factScan()
	indexRange.Kind = plan.IndexScan
	indexRange.Pred = rangePred()
	indexRange.IdxCol = "key"
	indexRange.IdxLo, indexRange.IdxHi = &lo, &hi
	indexRange.IdxLoInc, indexRange.IdxHiInc = true, false
	indexRange.Card = storeBenchHi - storeBenchLo

	hashJoin := plan.NewJoin(outerScan(), factScan(), joinPred())
	hashJoin.Kind = plan.HashJoin
	ilj := plan.NewJoin(outerScan(), factScan(), joinPred())
	ilj.Kind = plan.IndexLookupJoin
	ilj.IdxCol = "key"
	ilj.IdxOuter = expr.NewCol("O", "okey")

	report := storeBenchReport{
		Tool:        "go test -run TestStoreBenchReport -bench-report .",
		GoVersion:   runtime.Version(),
		RowsPerSite: storeBenchRows,
		PoolBytes:   storeBenchPool,
	}

	const warmReps = 5
	wantRows := map[string]int{
		"full-scan":         storeBenchHi - storeBenchLo,
		"index-range":       storeBenchHi - storeBenchLo,
		"hash-join":         storeBenchOuter,
		"index-lookup-join": storeBenchOuter,
	}
	warm := map[string]int64{}
	for _, path := range []struct {
		name string
		root *plan.Node
	}{
		{"full-scan", fullScan},
		{"index-range", indexRange},
		{"hash-join", hashJoin},
		{"index-lookup-join", ilj},
	} {
		// Each path starts from a reopened directory: the pool holds only
		// the pages the index rebuild touched, nothing the previous path
		// warmed.
		cl := storeBenchOpen(t, dir)
		if !cl.FragmentLoaded(fact, 0) || !cl.FragmentLoaded(outer, 0) {
			t.Fatalf("%s: reopened store lost its rows", path.name)
		}
		samples := make([]time.Duration, 0, warmReps)
		var cold int64
		for r := 0; r <= warmReps; r++ {
			runtime.GC()
			t0 := time.Now()
			rows, _, err := executor.RunObserved(path.root, cl, nil)
			d := time.Since(t0)
			if err != nil {
				t.Fatalf("%s: %v", path.name, err)
			}
			if len(rows) != wantRows[path.name] {
				t.Fatalf("%s: %d rows out, want %d", path.name, len(rows), wantRows[path.name])
			}
			if r == 0 {
				cold = d.Nanoseconds()
			} else {
				samples = append(samples, d)
			}
		}
		row := storeBenchRow{Path: path.name, ColdNS: cold, WarmNS: medianNS(samples), RowsOut: wantRows[path.name]}
		report.Paths = append(report.Paths, row)
		warm[path.name] = row.WarmNS
		report.Pool = cl.StoreStats()
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: cold %.2fms, warm %.2fms, %d rows", path.name,
			float64(row.ColdNS)/1e6, float64(row.WarmNS)/1e6, row.RowsOut)
	}

	report.ScanVsIndexSpeedup = float64(warm["full-scan"]) / float64(warm["index-range"])
	report.JoinSpeedup = float64(warm["hash-join"]) / float64(warm["index-lookup-join"])
	t.Logf("index range speedup %.1fx over full scan; index-lookup join %.1fx over hash join",
		report.ScanVsIndexSpeedup, report.JoinSpeedup)
	if report.ScanVsIndexSpeedup < 10 {
		t.Errorf("index range lookup is %.1fx faster than the full scan, want >= 10x",
			report.ScanVsIndexSpeedup)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
