// Package cgdqp is a compliant geo-distributed query processing engine:
// a Go implementation of "Compliant Geo-distributed Query Processing"
// (Beedkar, Quiané-Ruiz, Markl; SIGMOD 2021).
//
// The engine executes SQL over data spread across geo-distributed sites
// while guaranteeing that no query execution plan ships data to a
// location its dataflow policies forbid. Data officers declare policies
// with SQL-like policy expressions:
//
//	ship custkey, name from customer to Europe, Asia
//	ship acctbal as aggregates sum, avg from customer to * group by mktsegment
//
// and the compliance-based optimizer (a Volcano-style memo extended with
// execution/shipping traits, annotation rules AR1–AR4 and a two-phase
// site selector) produces plans that provably satisfy them (Theorem 1) —
// or rejects the query when no compliant plan exists.
//
// A minimal session:
//
//	sys := cgdqp.NewSystem()
//	sys.MustDefineTable("customer", "db-eu", "EU", 1000,
//	    cgdqp.Col("custkey", cgdqp.TInt), cgdqp.Col("name", cgdqp.TString))
//	sys.MustAddPolicy("ship custkey, name from customer to *")
//	sys.MustLoad("customer", rows)
//	res, err := sys.Query("SELECT name FROM customer WHERE custkey < 10")
package cgdqp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/feedback"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/rescache"
	"cgdqp/internal/sched"
	"cgdqp/internal/schema"
	"cgdqp/internal/sqlparse"
)

// Value is a scalar value; Row is one tuple.
type (
	Value = expr.Value
	Row   = expr.Row
)

// Value constructors re-exported for data loading.
var (
	Int    = expr.NewInt
	Float  = expr.NewFloat
	String = expr.NewString
	Bool   = expr.NewBool
	Date   = expr.MustDate
	Null   = expr.NullValue
)

// Type is a column type.
type Type = expr.Type

// Column types.
const (
	TInt    = expr.TInt
	TFloat  = expr.TFloat
	TString = expr.TString
	TBool   = expr.TBool
	TDate   = expr.TDate
)

// Column describes a table column.
type Column = schema.Column

// Fragment places part of a horizontally fragmented table.
type Fragment = schema.Fragment

// Col builds a column definition.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// ErrNoCompliantPlan is returned when a query has no compliant plan
// under the registered policies.
var ErrNoCompliantPlan = optimizer.ErrNoCompliantPlan

// Fault-injection types re-exported for chaos configuration: a
// FaultPlan (Options.Faults) makes the simulated WAN misbehave
// deterministically under a seed, and a RetryPolicy (Options.Retry)
// governs how the shipping layer retries. See package network for the
// full semantics.
type (
	FaultPlan   = network.FaultPlan
	EdgeFaults  = network.EdgeFaults
	RetryPolicy = network.RetryPolicy
	ShipError   = network.ShipError
)

// NewFaultPlan returns an empty fault plan under the given seed.
var NewFaultPlan = network.NewFaultPlan

// DefaultRetryPolicy is the retry configuration used when faults are
// installed without an explicit policy.
var DefaultRetryPolicy = network.DefaultRetryPolicy

// Typed shipping failures: a failed execution under faults wraps one of
// these in a *ShipError (match with errors.Is / errors.As).
var (
	ErrPartitioned  = network.ErrPartitioned
	ErrBatchDropped = network.ErrBatchDropped
	ErrTransient    = network.ErrTransient
	ErrShipTimeout  = network.ErrShipTimeout
)

// Options tune the system.
type Options struct {
	// ResultLocation pins where query results must be delivered
	// ("" = wherever is cheapest among legal sites).
	ResultLocation string
	// Network overrides the default five-region WAN profile.
	Network *network.CostModel
	// MaxAlts / MaxExprs bound the optimizer's search (0 = defaults).
	MaxAlts  int
	MaxExprs int
	// Parallel executes plans with the batch-parallel engine: per-site
	// plan fragments run on their own goroutines and exchange batches
	// at SHIP boundaries. Results and shipping statistics are identical
	// to the sequential engine; only wall-clock time differs.
	Parallel bool
	// Faults installs a deterministic fault plan on the simulated WAN:
	// shipments may be dropped, delayed, rejected or partitioned per
	// the plan, and the shipping layer retries under Retry. A query
	// either succeeds with results (and shipping statistics) identical
	// to a fault-free run, or fails with a typed *ShipError.
	Faults *FaultPlan
	// Retry overrides the shipment retry policy (nil with Faults set
	// means DefaultRetryPolicy).
	Retry *RetryPolicy
	// PlanCacheSize bounds the optimizer's whole-plan LRU cache (entries).
	// 0 uses optimizer.DefaultPlanCacheSize; negative disables caching.
	// Schema or policy changes invalidate cached plans automatically.
	PlanCacheSize int
	// Trace records query-lifecycle spans (parse/bind, optimizer phases,
	// fragment pipelines, every shipment attempt with retries) into the
	// tracer returned by System.Tracer().
	Trace bool
	// Metrics collects counters/gauges/histograms (plan-cache and
	// policy-cache stats, per-edge shipping volume, retry and fault
	// counts, optimize/execute latency) into System.Metrics().
	Metrics bool
	// Audit keeps an append-only compliance audit log of every
	// successful cross-site shipment — relations/columns, edge, and the
	// shipping-trait justification — in System.AuditLog(). The rendered
	// log is deterministic: replaying the same run (same data, plan and
	// chaos seed) produces byte-identical text.
	Audit bool
	// NoVectorKernels disables the compiled columnar expression kernels
	// and runs every expression through the row interpreter. Results
	// are identical either way; only speed differs. (The build tag
	// cgdqp_interp flips the default for A/B benchmarking.)
	NoVectorKernels bool
	// WireCompress enables block compression of the serialized batch
	// frames shipped between sites; the ledger, β·bytes costs and
	// shipping metrics then price the compressed bytes.
	WireCompress bool
	// ResultCacheBytes enables the compliance-aware result-set cache,
	// bounded to this many bytes of estimated result payload (LRU).
	// Repeated queries whose consumed tables have not been reloaded and
	// whose result provenance the current policies still permit are
	// served from cached results — rows, RunStats and audit records
	// byte-identical to a fresh run; any load into a consumed table or
	// any policy change invalidates precisely the affected entries (see
	// package rescache). Servers from Serve share the cache and coalesce
	// concurrent identical executions onto one run. 0 disables caching.
	ResultCacheBytes int64
	// Feedback enables the execution-feedback loop: every executed query
	// records per-operator observed-vs-estimated cardinalities (keyed by
	// normalized subplan digest) and e2e latency into System.Feedback();
	// once a subplan's actuals reach activation confidence the optimizer
	// costs with the observed cardinality instead of the stale estimate,
	// and the feedback epoch bump invalidates affected cached plans.
	// Compliance is unaffected: feedback only changes cardinalities, and
	// site selection still filters candidate sites by Definition 1 before
	// comparing costs. Off by default — disabled, planning and costing
	// are byte-identical to previous behavior.
	Feedback bool
	// SlowQueryLog, when set, receives one JSON line per query whose
	// end-to-end latency is at or above SlowQueryThreshold: SQL and plan
	// digests, latency, shipped bytes, retry count, cache disposition and
	// the worst per-operator q-errors. Implies the per-query profiling
	// that Feedback performs (but not cardinality feedback itself).
	SlowQueryLog io.Writer
	// SlowQueryThreshold is the slow-query latency floor (0 logs every
	// query).
	SlowQueryThreshold time.Duration
	// DataDir switches every site onto the persistent storage engine:
	// paged table files, a redo WAL and B+ tree indexes live under
	// DataDir/<site>. Reopening a system over an existing directory
	// recovers the data (see System.Loaded to skip reloading). Empty —
	// the default — keeps the in-memory backend; results, RunStats and
	// audit logs are byte-identical either way.
	DataDir string
	// BufferPoolBytes bounds the shared page cache of the persistent
	// engine (0 = store.DefaultPoolBytes) and, independently of backend,
	// feeds the optimizer's index access-path costing — so a given
	// budget yields the same plans whether or not DataDir is set.
	BufferPoolBytes int64
	// Fsync gates fsyncs on WAL appends and checkpoints (durability vs
	// speed; meaningful only with DataDir).
	Fsync bool
}

// Observability handle types re-exported for embedders.
type (
	Tracer          = obs.Tracer
	MetricsRegistry = obs.Registry
	AuditLog        = obs.AuditLog
	AuditRecord     = obs.AuditRecord
	PlanCacheStats  = optimizer.PlanCacheStats
)

// System is a compliant geo-distributed query processing session: a
// geo-distributed catalog, a policy catalog, a simulated cluster holding
// data, and the compliance-based optimizer.
type System struct {
	Schema   *schema.Catalog
	Policies *policy.Catalog
	Net      *network.CostModel
	opts     Options

	cl  *cluster.Cluster
	opt *optimizer.Optimizer
	// obsv bundles the sinks enabled by Options.Trace/Metrics/Audit
	// (nil when all are off, which keeps execution hooks free).
	obsv *obs.Observer

	// rcache is the result-set cache (nil unless Options.ResultCacheBytes).
	rcache *rescache.Cache
	// fb is the execution-feedback store (nil unless Options.Feedback);
	// slow is the slow-query log (nil unless Options.SlowQueryLog).
	fb   *feedback.Store
	slow *feedback.SlowQueryLog
	// policyEpoch counts policy-catalog changes (grants added or
	// removed); the result cache rechecks provenance whenever it moves.
	policyEpoch atomic.Uint64
	// policySeq issues unique policy IDs; it never decreases, so a
	// removed policy's ID is not reissued.
	policySeq int
}

// NewSystem creates an empty system with default options.
func NewSystem() *System { return NewSystemWith(Options{}) }

// NewSystemWith creates an empty system.
func NewSystemWith(opts Options) *System {
	s := &System{
		Schema:   schema.NewCatalog(),
		Policies: policy.NewCatalog(),
		opts:     opts,
	}
	if opts.Trace || opts.Metrics || opts.Audit {
		s.obsv = &obs.Observer{}
		if opts.Trace {
			s.obsv.Tracer = obs.NewTracer()
		}
		if opts.Metrics {
			s.obsv.Metrics = obs.NewRegistry()
		}
		if opts.Audit {
			s.obsv.Audit = obs.NewAuditLog()
		}
	}
	if opts.ResultCacheBytes > 0 {
		s.rcache = rescache.New(opts.ResultCacheBytes)
		if s.obsv != nil {
			s.rcache.SetMetrics(s.obsv.Metrics)
		}
	}
	if opts.Feedback {
		s.fb = feedback.NewStore(feedback.Options{})
		if s.obsv != nil {
			s.fb.SetMetrics(s.obsv.Metrics)
		}
	}
	if opts.SlowQueryLog != nil {
		s.slow = feedback.NewSlowQueryLog(opts.SlowQueryLog, opts.SlowQueryThreshold)
	}
	return s
}

// Feedback returns the execution-feedback store (nil unless
// Options.Feedback). Use it to inspect tracked subplans, active
// cardinality hints and observed latency quantiles.
func (s *System) Feedback() *feedback.Store { return s.fb }

// Tracer returns the span tracer (nil unless Options.Trace).
func (s *System) Tracer() *Tracer {
	if s.obsv == nil {
		return nil
	}
	return s.obsv.Tracer
}

// Metrics returns the metrics registry (nil unless Options.Metrics).
func (s *System) Metrics() *MetricsRegistry {
	if s.obsv == nil {
		return nil
	}
	return s.obsv.Metrics
}

// AuditLog returns the compliance audit log (nil unless Options.Audit).
func (s *System) AuditLog() *AuditLog {
	if s.obsv == nil {
		return nil
	}
	return s.obsv.Audit
}

// DefineTable registers a single-site table: db names the database at
// the location; rows is the expected cardinality used by the optimizer's
// cost model (statistics can be refined with SetColumnStats).
func (s *System) DefineTable(name, db, location string, rows int64, cols ...Column) error {
	s.invalidate()
	return s.Schema.AddTable(schema.NewTable(name, db, location, rows, cols...))
}

// MustDefineTable is DefineTable panicking on error.
func (s *System) MustDefineTable(name, db, location string, rows int64, cols ...Column) {
	if err := s.DefineTable(name, db, location, rows, cols...); err != nil {
		panic(err)
	}
}

// DefineFragmentedTable registers a horizontally fragmented table: one
// fragment per (db, location, rowcount) triple.
func (s *System) DefineFragmentedTable(name string, cols []Column, fragments []schema.Fragment) error {
	s.invalidate()
	return s.Schema.AddTable(&schema.Table{Name: name, Columns: cols, Fragments: fragments})
}

// DefineIndex declares B+ tree secondary indexes over the named columns
// (int64-class or string key types). Both storage backends maintain
// declared indexes and the optimizer considers IndexScan and
// IndexLookupJoin access paths for them. Indexes are created with the
// storage tables, so declare them before the first load.
func (s *System) DefineIndex(table string, columns ...string) error {
	t, ok := s.Schema.Table(table)
	if !ok {
		return fmt.Errorf("cgdqp: unknown table %q", table)
	}
	if s.cl != nil {
		return fmt.Errorf("cgdqp: DefineIndex(%s) after the cluster was created; declare indexes before loading", table)
	}
	for _, col := range columns {
		if _, ok := t.Column(col); !ok {
			return fmt.Errorf("cgdqp: table %q has no column %q", table, col)
		}
		if !t.Indexed(col) {
			t.Indexes = append(t.Indexes, col)
		}
	}
	s.invalidate()
	return nil
}

// MustDefineIndex is DefineIndex panicking on error.
func (s *System) MustDefineIndex(table string, columns ...string) {
	if err := s.DefineIndex(table, columns...); err != nil {
		panic(err)
	}
}

// SetColumnStats records optimizer statistics for a column.
func (s *System) SetColumnStats(table, column string, distinct int64, min, max Value) error {
	t, ok := s.Schema.Table(table)
	if !ok {
		return fmt.Errorf("cgdqp: unknown table %q", table)
	}
	t.SetColStats(column, schema.ColStats{Distinct: distinct, Min: min, Max: max})
	return nil
}

// AddPolicy registers a policy expression. The owning database is taken
// from the expression's qualified table ("db-1.customer") or, for
// unqualified tables, from the schema catalog.
func (s *System) AddPolicy(expression string) error {
	stmt, err := sqlparse.ParsePolicy(expression)
	if err != nil {
		return err
	}
	db := stmt.DB
	if db == "" {
		t, ok := s.Schema.Table(stmt.Table)
		if !ok {
			return fmt.Errorf("cgdqp: policy references unknown table %q (qualify it as db.table or define the table first)", stmt.Table)
		}
		db = t.DB()
	}
	if n := s.Policies.Len(); s.policySeq < n {
		s.policySeq = n
	}
	e, err := policy.FromStmt(stmt, fmt.Sprintf("p%d", s.policySeq+1), db)
	if err != nil {
		return err
	}
	s.policySeq++
	s.Policies.Add(e)
	s.policiesChanged()
	return nil
}

// MustAddPolicy is AddPolicy panicking on error.
func (s *System) MustAddPolicy(expression string) {
	if err := s.AddPolicy(expression); err != nil {
		panic(err)
	}
}

// AddDenyPolicies registers negative expressions
// (`deny attrs from table to locations`) for one table and compiles them
// into positive grants under the closed-world assumption (Section 4's
// disclosure-model note): every attribute may ship everywhere except
// where a denial blocks it. All denials for a table must be supplied in
// one call, after every location is known (i.e. after all tables are
// defined).
func (s *System) AddDenyPolicies(table string, expressions ...string) error {
	t, ok := s.Schema.Table(table)
	if !ok {
		return fmt.Errorf("cgdqp: unknown table %q", table)
	}
	denials := make([]*policy.Denial, 0, len(expressions))
	for _, src := range expressions {
		d, err := policy.ParseDenial(src, t.DB())
		if err != nil {
			return err
		}
		if !strings.EqualFold(d.Table, t.Name) {
			return fmt.Errorf("cgdqp: denial over %q registered for table %q", d.Table, t.Name)
		}
		denials = append(denials, d)
	}
	grants, err := policy.CompileDenials(t.Name, t.DB(), t.ColumnNames(), denials, s.Schema.Locations(),
		fmt.Sprintf("deny-%s-", strings.ToLower(t.Name)))
	if err != nil {
		return err
	}
	s.Policies.AddAll(grants...)
	s.policiesChanged()
	return nil
}

// RemovePolicy revokes a registered policy expression by ID (the "p1",
// "p2", … IDs AddPolicy assigns in order, or a deny-compiled grant's
// generated ID — see PolicyIDs), reporting whether one was removed.
// Revocation tightens compliance: plans and cached results derived
// while the grant was in force are invalidated, and a query whose only
// compliant plan depended on it fails with ErrNoCompliantPlan
// afterwards.
func (s *System) RemovePolicy(id string) bool {
	ok := s.Policies.Remove(id)
	if ok {
		s.policiesChanged()
	}
	return ok
}

// PolicyIDs returns the IDs of the registered policy expressions,
// sorted (use with RemovePolicy).
func (s *System) PolicyIDs() []string { return s.Policies.IDs() }

// policiesChanged invalidates policy-derived caches after a catalog
// change. The optimizer itself is kept — its evaluator's epoch bump
// flushes the policy memoization and makes every cached plan's key
// stale in O(1) — so servers started by Serve (which hold the
// optimizer) observe the change immediately. The result cache rechecks
// entry provenance against the new catalog on next use.
func (s *System) policiesChanged() {
	s.policyEpoch.Add(1)
	if s.opt != nil {
		s.opt.Evaluator.ResetCache()
	}
}

// PolicyEpoch returns the number of policy-catalog changes so far.
func (s *System) PolicyEpoch() uint64 { return s.policyEpoch.Load() }

// PolicyList returns the registered policy expressions in surface
// syntax, grouped by database.
func (s *System) PolicyList() []string {
	var out []string
	for _, db := range s.Policies.Databases() {
		for _, e := range s.Policies.ForDB(db) {
			out = append(out, e.String())
		}
	}
	return out
}

// Load inserts rows into a table (fragment 0).
func (s *System) Load(table string, rows []Row) error {
	return s.LoadFragment(table, 0, rows)
}

// MustLoad is Load panicking on error.
func (s *System) MustLoad(table string, rows []Row) {
	if err := s.Load(table, rows); err != nil {
		panic(err)
	}
}

// LoadFragment inserts rows into one fragment of a table.
func (s *System) LoadFragment(table string, fragIdx int, rows []Row) error {
	t, ok := s.Schema.Table(table)
	if !ok {
		return fmt.Errorf("cgdqp: unknown table %q", table)
	}
	return s.Cluster().LoadFragment(t, fragIdx, rows)
}

// Analyze recomputes optimizer statistics (distinct counts, min/max,
// fragment row counts) for every table from the loaded data — the
// engine's ANALYZE. Run it after loading so cardinality estimates match
// reality.
func (s *System) Analyze() error {
	s.invalidate()
	return s.Cluster().AnalyzeAll(s.Schema)
}

// Open creates the cluster eagerly (after all tables are defined),
// surfacing persistent-store open errors that Cluster would panic on.
// Optional: every entry point opens the cluster lazily on first use.
func (s *System) Open() error {
	if s.cl != nil {
		return nil
	}
	cl, err := s.newCluster()
	if err != nil {
		return err
	}
	s.cl = cl
	return nil
}

// Close flushes and closes the persistent storage engines (checkpoint
// plus WAL truncation); a no-op for in-memory systems. The system must
// not be used afterwards.
func (s *System) Close() error {
	if s.cl == nil {
		return nil
	}
	return s.cl.Close()
}

// Loaded reports whether every fragment of a table already holds rows —
// true when a persistent system reopened its data directory, letting
// loaders skip re-ingesting.
func (s *System) Loaded(table string) bool {
	t, ok := s.Schema.Table(table)
	if !ok {
		return false
	}
	for i := range t.Fragments {
		if !s.Cluster().FragmentLoaded(t, i) {
			return false
		}
	}
	return len(t.Fragments) > 0
}

func (s *System) newCluster() (*cluster.Cluster, error) {
	var cfg *cluster.StoreConfig
	if s.opts.DataDir != "" {
		cfg = &cluster.StoreConfig{
			DataDir:         s.opts.DataDir,
			BufferPoolBytes: s.opts.BufferPoolBytes,
			Fsync:           s.opts.Fsync,
		}
	}
	return cluster.NewWithStore(s.Schema, s.network(), cfg)
}

// Cluster returns the simulated geo-distributed cluster, creating it on
// first use (after all tables are defined). It panics when the
// persistent store cannot be opened — call Open first to handle that
// error gracefully.
func (s *System) Cluster() *cluster.Cluster {
	if s.cl == nil {
		cl, err := s.newCluster()
		if err != nil {
			panic(fmt.Sprintf("cgdqp: open persistent store: %v", err))
		}
		s.cl = cl
		if s.opts.Faults != nil {
			s.cl.SetFaults(s.opts.Faults)
		}
		if s.opts.Retry != nil {
			s.cl.SetRetry(*s.opts.Retry)
		}
		s.cl.SetObserver(s.obsv)
		if s.fb != nil {
			// Feedback folds wire calibration into the loop: the store's
			// calibrator observes every shipped frame and continuously
			// re-fits the cost model's byte scale, bumping the feedback
			// epoch when the scale drifts enough to matter.
			s.cl.SetCalibrator(s.fb.Calibrator())
			s.fb.ArmCalibration(s.network(), 0)
		}
	}
	return s.cl
}

func (s *System) network() *network.CostModel {
	if s.Net == nil {
		if s.opts.Network != nil {
			s.Net = s.opts.Network
		} else {
			s.Net = network.FiveRegionWAN(s.Schema.Locations())
		}
	}
	return s.Net
}

// invalidate drops the optimizer after schema or statistics changes —
// those can alter locations, descriptors and costs, so the memo,
// evaluator universe and plan cache are rebuilt from scratch. Policy
// changes deliberately do NOT come through here (see policiesChanged):
// nil-ing the optimizer would strand servers holding the old one with a
// stale evaluator, the missed-invalidation gap the epoch regression
// tests pin down.
func (s *System) invalidate() { s.opt = nil }

// resCacheView builds the validity oracles the result cache consults:
// cluster data epochs, the system policy epoch, and a provenance
// recheck that re-validates a cached plan against Definition 1 under
// the current policy catalog.
func (s *System) resCacheView() rescache.View {
	return rescache.View{
		DataEpoch:   s.Cluster().DataEpoch,
		PolicyEpoch: s.policyEpoch.Load,
		Recheck: func(located *plan.Node) bool {
			return len(s.Optimizer().Check(located)) == 0
		},
	}
}

// execFP fingerprints the execution options that change observable
// statistics; engine choice and kernel mode are deliberately excluded
// because both engines and both expression paths produce identical
// rows, RunStats and audit logs (the conformance suite pins this), so
// their executions share cache entries.
func (s *System) execFP() string {
	if s.opts.WireCompress {
		return "wc"
	}
	return ""
}

// ResultCacheStats reports the result cache's effectiveness. Always
// safe to call: with the cache disabled it returns the zero value.
func (s *System) ResultCacheStats() rescache.Stats {
	if s.rcache == nil {
		return rescache.Stats{}
	}
	return s.rcache.Stats()
}

// ResultCache exposes the result cache (nil unless
// Options.ResultCacheBytes), e.g. to share it with a hand-built
// sched.Server or purge it.
func (s *System) ResultCache() *rescache.Cache { return s.rcache }

// Calibrator accumulates wire-encoding and shipment samples during
// execution and back-fits the cost model (re-exported from network).
type Calibrator = network.Calibrator

// EnableCalibration installs (and returns) a calibrator on the cluster:
// every subsequent query feeds it encoding samples (estimated vs. actual
// wire bytes per shipped frame) and per-shipment α+β·bytes cost samples.
// Calling it again returns the same calibrator.
func (s *System) EnableCalibration() *Calibrator {
	cl := s.Cluster()
	if cl.Calibrator() == nil {
		cl.SetCalibrator(network.NewCalibrator())
	}
	return cl.Calibrator()
}

// ApplyCalibration back-fits the optimizer's cost model from the
// samples collected since EnableCalibration: the observed
// wire-bytes-per-estimated-byte ratio becomes the model's byte scale
// (so EstShipCost prices width estimates the way the wire actually
// encodes them), cached plans are invalidated, and the applied ratio is
// returned (1 when no calibrator or no samples).
func (s *System) ApplyCalibration() float64 {
	cal := s.Cluster().Calibrator()
	if cal == nil {
		return 1
	}
	cal.Apply(s.network())
	s.invalidate()
	return s.network().ByteScale()
}

// EnableAutoCalibration is EnableCalibration with continuous
// application: every everyN observed frames (<=0 = a sensible default)
// the calibrator re-fits the cost model's byte scale in place — no
// ApplyCalibration calls needed — and cached plans are invalidated via
// the feedback epoch (or the optimizer's cost epoch when feedback is
// off) whenever the scale moves enough to change costing.
func (s *System) EnableAutoCalibration(everyN int) *Calibrator {
	if everyN <= 0 {
		everyN = feedback.DefaultAutoApplyFrames
	}
	cal := s.EnableCalibration()
	if s.fb != nil && cal == s.fb.Calibrator() {
		s.fb.ArmCalibration(s.network(), everyN)
		return cal
	}
	opt := s.Optimizer()
	cal.SetAutoApply(s.network(), everyN, func(float64) { opt.InvalidatePlans() })
	return cal
}

// Optimizer returns the compliance-based optimizer over the current
// catalogs.
func (s *System) Optimizer() *optimizer.Optimizer {
	if s.opt == nil {
		pcs := s.opts.PlanCacheSize
		switch {
		case pcs == 0:
			pcs = optimizer.DefaultPlanCacheSize
		case pcs < 0:
			pcs = 0
		}
		s.opt = optimizer.New(s.Schema, s.Policies, s.network(), optimizer.Options{
			Compliant:      true,
			ResultLocation: s.opts.ResultLocation,
			MaxAlts:        s.opts.MaxAlts,
			MaxExprs:       s.opts.MaxExprs,
			PlanCacheSize:  pcs,
			PoolBytes:      s.opts.BufferPoolBytes,
		})
		s.opt.SetObserver(s.obsv)
		if s.fb != nil {
			// Installed on every (re)build, so feedback survives the
			// optimizer teardown that schema changes trigger.
			s.opt.SetFeedback(s.fb)
		}
	}
	return s.opt
}

// PlanCacheStats reports the optimizer's plan-cache effectiveness. It
// is always safe to call: with the cache disabled (Options.PlanCacheSize
// < 0) it returns the zero value rather than failing.
func (s *System) PlanCacheStats() optimizer.PlanCacheStats {
	return s.Optimizer().PlanCacheStats()
}

// Plan is a located, compliant query execution plan.
type Plan struct {
	Root *plan.Node
	// Columns are the output column names.
	Columns []string
	// EstShipCost is the optimizer's estimated communication cost.
	EstShipCost float64
	res         *optimizer.Result
}

// String pretty-prints the plan with locations and traits.
func (p *Plan) String() string { return p.Root.Format(true) }

// Dot renders the plan as a Graphviz digraph clustered by site.
func (p *Plan) Dot() string { return p.Root.Dot() }

// JSON renders the plan as indented JSON for external tooling.
func (p *Plan) JSON() (string, error) { return p.Root.JSON() }

// Explain parses, binds and optimizes a query, returning the compliant
// plan without executing it. It returns ErrNoCompliantPlan when the
// query is illegal under the policies.
func (s *System) Explain(sql string) (*Plan, error) {
	res, err := s.Optimizer().OptimizeSQL(sql)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(res.Plan.Cols))
	for i, c := range res.Plan.Cols {
		cols[i] = c.Name
	}
	return &Plan{Root: res.Plan, Columns: cols, EstShipCost: res.ShipCost, res: res}, nil
}

// Result is the outcome of an executed query.
type Result struct {
	Plan    *Plan
	Rows    []Row
	Columns []string
	// ShippedBytes / ShipCost account the cross-border transfers the
	// execution performed (simulated WAN time in milliseconds).
	ShippedBytes int64
	ShipCost     float64
	// Retries counts send attempts the shipping layer had to repeat
	// under an installed fault plan (0 in fault-free runs).
	Retries int64
	// Cached marks a result served from the result cache without
	// executing: rows are a private copy, and the shipping statistics
	// and replayed audit records are those of the execution that filled
	// the entry (byte-identical to a fresh run).
	Cached bool
}

// Query optimizes and executes a SQL query over the loaded data,
// guaranteeing the executed plan is compliant.
func (s *System) Query(sql string) (*Result, error) {
	res, _, err := s.query(context.Background(), sql, s.obsv)
	return res, err
}

// QueryContext is Query under a caller context: cancelling ctx tears
// down the execution (fragment pipelines, in-flight shipment retries)
// and returns the context's error.
func (s *System) QueryContext(ctx context.Context, sql string) (*Result, error) {
	res, _, err := s.query(ctx, sql, s.obsv)
	return res, err
}

// ExplainAnalyze executes the query like Query and additionally returns
// the plan annotated with per-operator actual rows, batches and wall
// time (inclusive of children, in the style of EXPLAIN ANALYZE).
func (s *System) ExplainAnalyze(sql string) (*Result, string, error) {
	o := s.obsv.WithProfile(obs.NewPlanProfile())
	res, prof, err := s.query(context.Background(), sql, o)
	if err != nil {
		return nil, "", err
	}
	return res, prof.Format(res.Plan.Root), nil
}

func (s *System) query(ctx context.Context, sql string, o *obs.Observer) (*Result, *obs.PlanProfile, error) {
	qstart := time.Now()
	p, err := s.Explain(sql)
	if err != nil {
		s.countQuery("error")
		return nil, nil, err
	}
	// The result cache sits between optimize and execute. EXPLAIN
	// ANALYZE runs bypass it: their point is per-operator actuals from a
	// real execution.
	var fill *rescache.Fill
	var view rescache.View
	useCache := s.rcache != nil && o.Prof() == nil
	if useCache {
		view = s.resCacheView()
		fill = rescache.Prepare(p.Root, s.execFP(), view)
		if r, ok := s.rcache.Get(fill.Key, view); ok {
			if sink := o.AuditSink(); sink != nil {
				for _, rec := range r.Audit {
					sink.Record(rec)
				}
			}
			s.countQuery("ok")
			s.noteQuery(time.Since(qstart), sql, p, &r.Stats, feedback.CacheHit, nil)
			return &Result{
				Plan:         p,
				Rows:         r.Rows,
				Columns:      p.Columns,
				ShippedBytes: r.Stats.ShippedBytes,
				ShipCost:     r.Stats.ShipCost,
				Retries:      r.Stats.Retries,
				Cached:       true,
			}, o.Prof(), nil
		}
	}
	runObs := o
	var capture *obs.AuditLog
	if useCache && o.AuditSink() != nil {
		capture = obs.NewAuditLog()
		runObs = o.WithAudit(capture)
	}
	// Telemetry needs per-operator actuals: install a profile when the
	// feedback loop or slow-query log is on and the caller did not bring
	// one (EXPLAIN ANALYZE does). Installed after the cache gate so
	// cache-served queries keep bypassing profiling.
	prof := o.Prof()
	if prof == nil && (s.fb != nil || s.slow != nil) {
		prof = obs.NewPlanProfile()
		runObs = runObs.WithProfile(prof)
	}
	var rows []Row
	var stats *executor.RunStats
	eo := executor.ExecOptions{
		NoKernels: s.opts.NoVectorKernels,
		Wire:      network.WireOptions{Compress: s.opts.WireCompress},
	}
	if s.opts.Parallel {
		rows, stats, err = executor.RunParallelOpts(ctx, p.Root, s.Cluster(), runObs, eo)
	} else {
		rows, stats, err = executor.RunObservedOpts(ctx, p.Root, s.Cluster(), runObs, eo)
	}
	if err != nil {
		s.countQuery("error")
		return nil, nil, err
	}
	if useCache {
		var recs []AuditRecord
		if capture != nil {
			recs = capture.Records()
			sink := o.AuditSink()
			for _, rec := range recs {
				sink.Record(rec)
			}
		}
		s.rcache.Put(fill, rows, p.Columns, *stats, recs, p.EstShipCost)
	}
	s.countQuery("ok")
	var qerrs []feedback.OpQError
	if prof != nil && (s.fb != nil || s.slow != nil) {
		qerrs = feedback.RecordExecution(s.fb, p.Root, prof)
	}
	disp := feedback.CacheOff
	if useCache {
		disp = feedback.CacheMiss
	}
	s.noteQuery(time.Since(qstart), sql, p, stats, disp, qerrs)
	return &Result{
		Plan:         p,
		Rows:         rows,
		Columns:      p.Columns,
		ShippedBytes: stats.ShippedBytes,
		ShipCost:     stats.ShipCost,
		Retries:      stats.Retries,
	}, o.Prof(), nil
}

func (s *System) countQuery(status string) {
	if m := s.obsv.Reg(); m != nil {
		m.Counter("cgdqp_queries_total", "status", status).Inc()
		s.publishStoreStats(m)
	}
}

// publishStoreStats refreshes the cgdqp_store_* gauges from the shared
// buffer pool (no-op unless the persistent engine is running).
func (s *System) publishStoreStats(m *MetricsRegistry) {
	if s.cl == nil || !s.cl.Persistent() {
		return
	}
	st := s.cl.StoreStats()
	m.Gauge("cgdqp_store_pool_hits").Set(float64(st.Hits))
	m.Gauge("cgdqp_store_pool_misses").Set(float64(st.Misses))
	m.Gauge("cgdqp_store_pool_evictions").Set(float64(st.Evictions))
	m.Gauge("cgdqp_store_pool_writebacks").Set(float64(st.Writebacks))
	m.Gauge("cgdqp_store_pool_resident").Set(float64(st.Resident))
}

// noteQuery feeds a successful query's end-to-end outcome to the
// feedback store and the slow-query log (both nil-safe).
func (s *System) noteQuery(lat time.Duration, sql string, p *Plan, stats *executor.RunStats, disp string, qerrs []feedback.OpQError) {
	s.fb.ObserveQuery(lat.Seconds())
	if s.slow == nil {
		return
	}
	engine := "seq"
	if s.opts.Parallel {
		engine = "par"
	}
	s.slow.Maybe(lat, feedback.QueryRecord{
		SQLDigest:  feedback.SQLDigest(sql),
		PlanDigest: feedback.ShortDigest(p.Root.Digest()),
		RowsOut:    stats.RowsOut,
		ShipBytes:  stats.ShippedBytes,
		ShipCostMS: stats.ShipCost,
		Retries:    stats.Retries,
		Cache:      disp,
		Engine:     engine,
		QErrors:    qerrs,
	})
}

// --- concurrent query serving -------------------------------------------

// Query-serving types re-exported from the scheduler subsystem: a
// Server is the concurrent front end (admission control, weighted-fair
// scheduling with per-site execution slots, shared-work batching of
// identical in-flight optimizations) over one System.
type (
	Server        = sched.Server
	ServeOptions  = sched.Options
	ServeRequest  = sched.Request
	ServeResponse = sched.Response
	ServeCounters = sched.Counters
	Ticket        = sched.Ticket
)

// Typed admission rejections from Server.Submit (match with errors.Is).
var (
	ErrQueueFull    = sched.ErrQueueFull
	ErrServerClosed = sched.ErrServerClosed
)

// Serve starts a concurrent query-serving front end over the system:
// queries submitted through the returned Server are admission-controlled
// (bounded queue, typed rejections under overload), scheduled
// weighted-fairly onto bounded per-site execution slots, executed with
// the batch-parallel engine, and identical in-flight optimizations are
// coalesced. The server shares the system's observability sinks (queue
// gauges, admission/rejection counters, latency histograms land in
// System.Metrics()). Close the server before discarding it:
//
//	srv := sys.Serve(cgdqp.ServeOptions{MaxConcurrent: 8})
//	defer srv.Close()
//	resp, err := srv.Do(ctx, "SELECT ...")
func (s *System) Serve(opts ServeOptions) *Server {
	if opts.Exec == nil {
		eo := executor.ExecOptions{
			NoKernels: s.opts.NoVectorKernels,
			Wire:      network.WireOptions{Compress: s.opts.WireCompress},
		}
		opts.Exec = &eo
	}
	if opts.ResultCache == nil && s.rcache != nil {
		opts.ResultCache = s.rcache
		opts.CacheView = s.resCacheView()
		opts.CacheOptsFP = s.execFP()
	}
	if opts.Feedback == nil {
		opts.Feedback = s.fb
	}
	if opts.SlowLog == nil {
		opts.SlowLog = s.slow
	}
	return sched.NewServer(s.Optimizer(), s.Cluster(), s.obsv, opts)
}

// Legal reports whether a query has at least one compliant execution
// plan under the current policies (Figure 2's "legal?" gate).
func (s *System) Legal(sql string) (bool, error) {
	_, err := s.Explain(sql)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNoCompliantPlan) {
		return false, nil
	}
	return false, err
}

// CheckCompliance validates any located plan against Definition 1,
// returning human-readable violations (empty = compliant).
func (s *System) CheckCompliance(p *Plan) []string {
	vs := s.Optimizer().Check(p.Root)
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// EvaluatePolicies runs the policy evaluator 𝒜 on a query over a single
// database: it returns the locations the query's output may legally be
// shipped to. The query must reference tables of one database only.
func (s *System) EvaluatePolicies(sql string) ([]string, error) {
	logical, err := sqlparse.ParseAndBind(sql, s.Schema)
	if err != nil {
		return nil, err
	}
	q, ok := policy.Describe(optimizer.Normalize(logical))
	if !ok {
		return nil, fmt.Errorf("cgdqp: query is not a local query over a single database")
	}
	ev := policy.NewEvaluator(s.Policies, s.Schema.Locations())
	return ev.Evaluate(q).Slice(), nil
}
